//! `gillis` — command-line front end for the reproduction.
//!
//! ```text
//! gillis models
//! gillis info     --model vgg16
//! gillis plan     --model vgg16 --platform lambda [--slo 500] [--out plan.txt]
//! gillis describe --model wrn-34-5 --platform lambda [--plan plan.txt]
//! gillis predict  --model vgg16 --platform lambda [--plan plan.txt]
//! gillis serve    --model vgg16 --platform lambda [--plan plan.txt]
//!                 [--clients 100] [--queries 1000] [--rate 100]
//! ```
//!
//! `GILLIS_OVERLOAD_*` enables admission control; `GILLIS_BATCH_*` switches
//! `serve` to open-loop adaptive multi-SLO batching at `--rate` arrivals/s
//! (with `--clients` prewarmed masters), planning batch sizes and instance
//! memory jointly against the performance model. `GILLIS_PIPELINE_LANES`
//! (with optional `GILLIS_PIPELINE_QUEUE`) switches `serve` to
//! pipeline-parallel streaming across layer groups — each group becomes a
//! stage with its own lane pool and bounded queue, and when `--plan` is
//! omitted the plan is recomputed for the stage-balancing objective;
//! pipelining takes precedence over batching (they do not compose).
//! `GILLIS_CHAOS_*` injects faults, `GILLIS_OUTAGE_*` adds correlated
//! outage episodes on top, `GILLIS_RETRY_BUDGET_*` caps retry/hedge
//! amplification, `GILLIS_BROWNOUT_*` enables the degradation ladder, and
//! `GILLIS_RECOVERY_*` enables stage-level checkpointed recovery (failover
//! replay of orchestrator crashes, resume retries, straggler speculation).
//!
//! Plans are stored in the stable text format of
//! [`gillis::core::ExecutionPlan::to_text`]; when `--plan` is omitted the
//! latency-optimal plan is computed on the fly.

use std::collections::HashMap;
use std::process::ExitCode;

use gillis::serving::{lookup_model, lookup_platform, model_catalog};

use gillis::core::{
    plan_batch_schedule, predict_plan, BatchPolicy, BrownoutPolicy, ChaosConfig, DpPartitioner,
    ExecutionPlan, ForkJoinRuntime, OutageConfig, OverloadPolicy, PipelinePolicy, PlanObjective,
    RecoveryPolicy, RetryBudgetPolicy,
};
use gillis::faas::workload::ClosedLoop;
use gillis::faas::Micros;
use gillis::model::LinearModel;
use gillis::perf::PerfModel;
use gillis::rl::{slo_aware_partition, SloAwareConfig};

/// Parses `--key value` pairs after the subcommand.
fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got '{}'", args[i]))?;
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("--{key} needs a value"))?;
        flags.insert(key.to_string(), value.clone());
        i += 2;
    }
    Ok(flags)
}

fn load_or_plan(
    flags: &HashMap<String, String>,
    model: &LinearModel,
    perf: &PerfModel,
) -> Result<ExecutionPlan, String> {
    match flags.get("plan") {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read plan {path}: {e}"))?;
            let plan = ExecutionPlan::from_text(&text).map_err(|e| e.to_string())?;
            plan.validate(model, perf.platform.model_memory_budget)
                .map_err(|e| format!("plan does not fit {}: {e}", model.name()))?;
            Ok(plan)
        }
        None => DpPartitioner::default()
            .partition(model, perf)
            .map_err(|e| e.to_string()),
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        return Err("usage: gillis <models|info|plan|describe|predict|serve> [--flags]".into());
    };
    if command == "models" {
        println!("{:<16} {:>12} {:>10}", "model", "weights(MB)", "layers");
        for (name, f) in model_catalog() {
            let m = f();
            println!(
                "{:<16} {:>12.0} {:>10}",
                name,
                m.weight_bytes() as f64 / 1e6,
                m.layers().len()
            );
        }
        return Ok(());
    }

    let flags = parse_flags(&args[1..])?;
    let model_name = flags
        .get("model")
        .ok_or_else(|| "--model is required".to_string())?;
    let model = lookup_model(model_name).map_err(|e| e.to_string())?;
    let platform = lookup_platform(
        flags
            .get("platform")
            .map(String::as_str)
            .unwrap_or("lambda"),
    )
    .map_err(|e| e.to_string())?;
    let perf = PerfModel::profiled(&platform, 42);

    match command.as_str() {
        "info" => {
            print!("{}", model.summary());
        }
        "plan" => {
            let plan = match flags.get("slo") {
                Some(slo) => {
                    let t_max_ms: f64 = slo.parse().map_err(|_| format!("bad --slo: {slo}"))?;
                    slo_aware_partition(
                        &model,
                        &perf,
                        &SloAwareConfig {
                            t_max_ms,
                            ..SloAwareConfig::default()
                        },
                    )
                    .map_err(|e| e.to_string())?
                    .plan
                }
                None => DpPartitioner::default()
                    .partition(&model, &perf)
                    .map_err(|e| e.to_string())?,
            };
            let text = plan.to_text();
            match flags.get("out") {
                Some(path) => {
                    std::fs::write(path, &text).map_err(|e| format!("cannot write {path}: {e}"))?;
                    println!("wrote {path} ({} groups)", plan.groups().len());
                }
                None => print!("{text}"),
            }
        }
        "describe" => {
            let plan = load_or_plan(&flags, &model, &perf)?;
            print!("{}", plan.describe(&model).map_err(|e| e.to_string())?);
        }
        "predict" => {
            let plan = load_or_plan(&flags, &model, &perf)?;
            let pred = predict_plan(&model, &plan, &perf).map_err(|e| e.to_string())?;
            println!("latency : {:.1} ms", pred.latency_ms);
            println!("billed  : {} ms/query", pred.billed_ms);
            println!("cost    : ${:.6}/query", pred.usd);
        }
        "serve" => {
            let plan = load_or_plan(&flags, &model, &perf)?;
            let clients = flags
                .get("clients")
                .map(|v| v.parse().map_err(|_| format!("bad --clients: {v}")))
                .transpose()?
                .unwrap_or(100);
            let queries = flags
                .get("queries")
                .map(|v| v.parse().map_err(|_| format!("bad --queries: {v}")))
                .transpose()?
                .unwrap_or(1000);
            // GILLIS_PIPELINE_* env knobs enable pipeline-parallel serving:
            // each layer group becomes a stage with its own lane pool and a
            // bounded inter-stage queue, fed by an open-loop Poisson stream
            // at --rate. Batching does not compose with pipelining, so this
            // branch takes precedence over GILLIS_BATCH_*.
            if let Some(pipeline_policy) = PipelinePolicy::from_env() {
                let rate: f64 = flags
                    .get("rate")
                    .map(|v| v.parse().map_err(|_| format!("bad --rate: {v}")))
                    .transpose()?
                    .unwrap_or(100.0);
                // Without an explicit --plan, replan for the stage-balancing
                // objective: steady-state throughput is set by the slowest
                // stage, not the end-to-end latency.
                let plan = if flags.contains_key("plan") {
                    plan
                } else {
                    DpPartitioner::default()
                        .with_objective(PlanObjective::PipelineBottleneck)
                        .partition(&model, &perf)
                        .map_err(|e| e.to_string())?
                };
                let mut rt =
                    ForkJoinRuntime::new(&model, &plan, platform).map_err(|e| e.to_string())?;
                if let Some(policy) = OverloadPolicy::from_env() {
                    rt = rt.with_overload(policy).map_err(|e| e.to_string())?;
                }
                rt = with_env_resilience(rt)?;
                let report = rt
                    .serve_open_loop_pipelined(&pipeline_policy, rate, queries, clients, 7)
                    .map_err(|e| e.to_string())?;
                println!(
                    "pipeline: {} stages x {} lanes (queue depth {})",
                    plan.groups().len(),
                    pipeline_policy.lanes,
                    pipeline_policy.queue_depth,
                );
                print_serving_report(&report);
                return Ok(());
            }
            // GILLIS_BATCH_* env knobs enable adaptive multi-SLO batching:
            // serving switches to an open-loop Poisson stream at --rate and
            // the batch sizes / instance memory are planned jointly against
            // the performance model.
            if let Some(batch_policy) = BatchPolicy::from_env() {
                let rate: f64 = flags
                    .get("rate")
                    .map(|v| v.parse().map_err(|_| format!("bad --rate: {v}")))
                    .transpose()?
                    .unwrap_or(100.0);
                let schedule = plan_batch_schedule(
                    &model,
                    &plan,
                    &platform,
                    gillis::perf::TransferFormat::F32,
                    &batch_policy,
                    rate,
                )
                .map_err(|e| e.to_string())?;
                let serving_platform = if schedule.memory_bytes == platform.instance_memory_bytes {
                    platform
                } else {
                    platform.with_memory_bytes(schedule.memory_bytes)
                };
                let mut rt = ForkJoinRuntime::new(&model, &plan, serving_platform)
                    .map_err(|e| e.to_string())?;
                if let Some(policy) = OverloadPolicy::from_env() {
                    rt = rt.with_overload(policy).map_err(|e| e.to_string())?;
                }
                rt = with_env_resilience(rt)?;
                let report = rt
                    .serve_open_loop_batched(&batch_policy, &schedule, rate, queries, clients, 7)
                    .map_err(|e| e.to_string())?;
                let windows = schedule
                    .classes
                    .iter()
                    .map(|c| format!("n{}/{:.0}ms", c.batch, c.window_ms))
                    .collect::<Vec<_>>()
                    .join(" ");
                // Only the *schedule* is printed here (it is not part of the
                // report); the batch counters print with every other report
                // block in `print_serving_report`.
                println!(
                    "batch schedule: {} classes [{}] at {} MB",
                    batch_policy.classes.len(),
                    windows,
                    schedule.memory_bytes / 1_000_000,
                );
                print_serving_report(&report);
                return Ok(());
            }
            let mut rt =
                ForkJoinRuntime::new(&model, &plan, platform).map_err(|e| e.to_string())?;
            // GILLIS_OVERLOAD_* env knobs enable overload protection, the
            // same way GILLIS_CHAOS_* enables fault injection elsewhere.
            if let Some(policy) = OverloadPolicy::from_env() {
                rt = rt.with_overload(policy).map_err(|e| e.to_string())?;
            }
            rt = with_env_resilience(rt)?;
            let report = rt
                .serve_workload(
                    ClosedLoop::new(clients, queries, Micros::ZERO).map_err(|e| e.to_string())?,
                    7,
                )
                .map_err(|e| e.to_string())?;
            print_serving_report(&report);
        }
        other => return Err(format!("unknown command '{other}'")),
    }
    Ok(())
}

/// Applies the `GILLIS_CHAOS_*` / `GILLIS_OUTAGE_*` / `GILLIS_RETRY_BUDGET_*`
/// / `GILLIS_BROWNOUT_*` / `GILLIS_RECOVERY_*` env knobs to a serving
/// runtime.
fn with_env_resilience(mut rt: ForkJoinRuntime<'_>) -> Result<ForkJoinRuntime<'_>, String> {
    if let Some(cfg) = ChaosConfig::from_env() {
        rt = rt.with_chaos(cfg).map_err(|e| e.to_string())?;
    }
    if let Some(cfg) = OutageConfig::from_env() {
        rt = rt.with_outage(cfg).map_err(|e| e.to_string())?;
    }
    if let Some(policy) = RetryBudgetPolicy::from_env() {
        rt = rt.with_retry_budget(policy).map_err(|e| e.to_string())?;
    }
    if let Some(policy) = BrownoutPolicy::from_env() {
        rt = rt.with_brownout(policy).map_err(|e| e.to_string())?;
    }
    if let Some(policy) = RecoveryPolicy::from_env() {
        rt = rt.with_recovery(policy).map_err(|e| e.to_string())?;
    }
    Ok(rt)
}

fn print_serving_report(report: &gillis::core::ServingReport) {
    println!(
        "served {} queries: mean {:.1} ms, p50 {:.1} ms, p99 {:.1} ms",
        report.latency.count(),
        report.latency.mean(),
        report.latency.percentile(50.0),
        report.latency.percentile(99.0),
    );
    println!(
        "billed {} ms total (${:.4}); {} cold starts, {} retries",
        report.billing.billed_ms_total(),
        report.billing.usd_total(),
        report.cold_starts,
        report.resilience.retries,
    );
    println!(
        "outcomes: {} ok, {} degraded, {} failed ({} hedges, {} hedge wins, {} timeouts)",
        report.resilience.ok_queries,
        report.resilience.degraded_queries,
        report.resilience.failed_queries,
        report.resilience.hedges,
        report.resilience.hedge_wins,
        report.resilience.timeouts,
    );
    if report.overload.admitted > 0 {
        println!(
            "overload: {} admitted, {} shed, {} deadline-exceeded, \
             {} cancelled attempts, {} breaker opens ({} short circuits)",
            report.overload.admitted,
            report.overload.shed(),
            report.resilience.deadline_exceeded_queries,
            report.overload.cancelled_attempts,
            report.overload.breaker_opens,
            report.overload.breaker_short_circuits,
        );
    }
    if report.resilience.first_attempts > 0 {
        println!(
            "retry amplification: {:.3}x ({} worker invocations / {} first attempts), \
             {} budget-denied retries, {} budget-denied hedges, {} corruptions detected",
            report.retry_amplification(),
            report.resilience.worker_invocations,
            report.resilience.first_attempts,
            report.resilience.budget_denied_retries,
            report.resilience.budget_denied_hedges,
            report.resilience.corruptions_detected,
        );
    }
    let bt = &report.batch;
    if bt.batches > 0 {
        println!(
            "batch: {} batches (mean {:.2}, {} fast-path, {} size-closed, {} window-closed)",
            bt.batches,
            bt.mean_batch(),
            bt.batch_one_fast_path,
            bt.size_closes,
            bt.window_closes,
        );
    }
    let p = &report.pipeline;
    if p.stages > 1 {
        println!(
            "pipeline: {} stages, {} dispatches, {} handoffs, \
             {} backpressure stalls, peak stage queue {}",
            p.stages, p.stage_dispatches, p.handoffs, p.backpressure_stalls, p.peak_stage_queue,
        );
    }
    let r = &report.recovery;
    if r.orchestrator_crashes > 0 || r.checkpoints_stored > 0 {
        println!(
            "recovery: {} checkpoints ({} hits, {} evictions, {} expirations), \
             {} orchestrator crashes -> {} failover replays, {} full restarts, \
             {} stages saved ({:.0} ms recompute avoided)",
            r.checkpoints_stored,
            r.checkpoint_hits,
            r.checkpoint_evictions,
            r.checkpoint_expirations,
            r.orchestrator_crashes,
            r.failover_replays,
            r.full_restarts,
            r.stages_saved,
            r.recompute_avoided_ms,
        );
        println!(
            "recovery: {} resume retries ({} wins), {} skipped at deadline, \
             {} speculations ({} wins, {} cancelled)",
            r.resume_retries,
            r.resume_retry_wins,
            r.resume_skipped_deadline,
            r.speculative_executions,
            r.speculation_wins,
            r.speculation_cancelled,
        );
    }
    let b = &report.brownout;
    if b.arrivals() > 0 {
        println!(
            "brownout: queries at [full {}, no-hedge {}, int8 {}, local {}, shed {}], \
             {} step-downs, {} step-ups, {} probes",
            b.queries_at_level[0],
            b.queries_at_level[1],
            b.queries_at_level[2],
            b.queries_at_level[3],
            b.queries_at_level[4],
            b.step_downs,
            b.step_ups,
            b.probes,
        );
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
