//! # Gillis
//!
//! A reproduction of *"Gillis: Serving Large Neural Networks in Serverless
//! Functions with Automatic Model Partitioning"* (ICDCS 2021).
//!
//! This facade crate re-exports the workspace's public API:
//!
//! - [`tensor`] — dense f32 tensors and layer kernels.
//! - [`model`] — the DNN graph IR, layer merging, and the benchmark model zoo.
//! - [`faas`] — a discrete-event serverless platform simulator (Lambda, GCF,
//!   KNIX profiles) with billing, warm pools, and an S3-like object store.
//! - [`perf`] — the profiling-driven performance model (layer-runtime
//!   regression + exGaussian communication delays with order statistics).
//! - [`core`] — partitioning algorithms (latency-optimal dynamic programming)
//!   and the fork-join serving runtime plus baselines.
//! - [`rl`] — the SLO-aware REINFORCE partitioner/placer agents.
//! - [`bo`] — the Bayesian-optimization and brute-force baselines.
//!
//! # Quickstart
//!
//! ```
//! use gillis::core::{DpPartitioner, PartitionerConfig};
//! use gillis::faas::PlatformProfile;
//! use gillis::model::zoo;
//! use gillis::perf::PerfModel;
//!
//! let model = zoo::vgg11();
//! let platform = PlatformProfile::aws_lambda();
//! let perf = PerfModel::analytic(&platform);
//! let plan = DpPartitioner::new(PartitionerConfig::default())
//!     .partition(&model, &perf)
//!     .expect("partitioning succeeds");
//! assert!(!plan.groups().is_empty());
//! ```

pub mod serving;

pub use gillis_bo as bo;
pub use gillis_core as core;
pub use gillis_faas as faas;
pub use gillis_model as model;
pub use gillis_perf as perf;
pub use gillis_rl as rl;
pub use gillis_tensor as tensor;
