//! High-level serving facade: the workflow of paper Fig 3 in one builder.
//!
//! ```text
//! profile → partition (latency-optimal | SLO-aware | tail-aware) → deploy → serve
//! ```
//!
//! # Examples
//!
//! ```
//! use gillis::serving::{Gillis, Mode};
//! use gillis::faas::PlatformProfile;
//! use gillis::model::zoo;
//!
//! # fn main() -> Result<(), gillis::core::CoreError> {
//! let deployment = Gillis::new(zoo::tiny_vgg())
//!     .platform(PlatformProfile::aws_lambda())
//!     .mode(Mode::LatencyOptimal)
//!     .deploy()?;
//! let latency = deployment.mean_latency_ms(10, 1);
//! assert!(latency > 0.0);
//! # Ok(())
//! # }
//! ```

use std::fmt;
use std::sync::{Arc, Mutex};

use gillis_core::{
    execute_plan_tensors_resilient, plan_batch_schedule, predict_plan, BatchPolicy, BatchSchedule,
    BrownoutPolicy, ChaosConfig, CompiledPlanExec, CoreError, DpPartitioner, ExecutionPlan,
    ForkJoinRuntime, OutageConfig, OverloadPolicy, PartitionerConfig, PipelinePolicy,
    PlanObjective, PlanPrediction, QueryStatus, RecoveryPolicy, ResilienceCounters,
    ResiliencePolicy, RetryBudgetPolicy, ServingReport,
};
use gillis_faas::workload::ClosedLoop;
use gillis_faas::PlatformProfile;
use gillis_model::weights::{ModelWeights, NodeWeights};
use gillis_model::LinearModel;
use gillis_perf::PerfModel;
use gillis_perf::TransferFormat;
use gillis_rl::{slo_aware_partition, SloAwareConfig};
use gillis_tensor::Tensor;

/// A zoo entry: model name and its constructor.
pub type ModelEntry = (&'static str, fn() -> LinearModel);

/// The models available by name — the zoo exposed to the CLI and tests.
pub fn model_catalog() -> Vec<ModelEntry> {
    use gillis_model::zoo;
    vec![
        ("vgg11", zoo::vgg11 as fn() -> LinearModel),
        ("vgg16", zoo::vgg16),
        ("vgg19", zoo::vgg19),
        ("resnet34", zoo::resnet34),
        ("resnet50", zoo::resnet50),
        ("resnet101", zoo::resnet101),
        ("mobilenet", zoo::mobilenet),
        ("wrn-34-3", || zoo::wrn34(3)),
        ("wrn-34-4", || zoo::wrn34(4)),
        ("wrn-34-5", || zoo::wrn34(5)),
        ("wrn-50-3", || zoo::wrn50(3)),
        ("wrn-50-4", || zoo::wrn50(4)),
        ("wrn-50-5", || zoo::wrn50(5)),
        ("rnn-3", || zoo::rnn(3)),
        ("rnn-6", || zoo::rnn(6)),
        ("rnn-9", || zoo::rnn(9)),
        ("rnn-12", || zoo::rnn(12)),
        ("rnn-18", || zoo::rnn(18)),
        ("tiny-vgg", zoo::tiny_vgg),
        ("tiny-resnet", zoo::tiny_resnet),
        ("tiny-inception", zoo::tiny_inception),
        ("tiny-mobilenet", zoo::tiny_mobilenet),
    ]
}

/// Builds a zoo model by its catalog name.
///
/// # Errors
///
/// Returns [`CoreError::InvalidArgument`] for unknown names.
pub fn lookup_model(name: &str) -> Result<LinearModel, CoreError> {
    model_catalog()
        .into_iter()
        .find(|(n, _)| *n == name)
        .map(|(_, f)| f())
        .ok_or_else(|| CoreError::InvalidArgument(format!("unknown model '{name}'")))
}

/// Builds a platform profile by name (`lambda`/`aws`, `gcf`/`google`,
/// `knix`).
///
/// # Errors
///
/// Returns [`CoreError::InvalidArgument`] for unknown names.
pub fn lookup_platform(name: &str) -> Result<PlatformProfile, CoreError> {
    match name {
        "lambda" | "aws" => Ok(PlatformProfile::aws_lambda()),
        "gcf" | "google" => Ok(PlatformProfile::gcf()),
        "knix" => Ok(PlatformProfile::knix()),
        other => Err(CoreError::InvalidArgument(format!(
            "unknown platform '{other}' (lambda | gcf | knix)"
        ))),
    }
}

/// Which partitioning objective to use (paper §IV).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Mode {
    /// Minimize inference latency (§IV-B, dynamic programming).
    LatencyOptimal,
    /// Minimize billed cost subject to a mean-latency SLO (§IV-C,
    /// reinforcement learning).
    SloAware {
        /// Mean-latency threshold in milliseconds.
        t_max_ms: f64,
    },
    /// Minimize billed cost subject to a latency-*quantile* SLO (the §VI
    /// extension), e.g. `quantile: 0.99` for p99.
    TailAware {
        /// Latency quantile the SLO constrains (in `(0, 1)`).
        quantile: f64,
        /// Latency threshold in milliseconds.
        t_max_ms: f64,
    },
}

/// Builder for a Gillis deployment.
#[derive(Debug, Clone)]
pub struct Gillis {
    model: LinearModel,
    platform: PlatformProfile,
    mode: Mode,
    profile_seed: u64,
    episodes: usize,
    chaos: Option<ChaosConfig>,
    policy: ResiliencePolicy,
    overload: Option<OverloadPolicy>,
    batch: Option<BatchPolicy>,
    outage: Option<OutageConfig>,
    retry_budget: Option<RetryBudgetPolicy>,
    brownout: Option<BrownoutPolicy>,
    pipeline: Option<PipelinePolicy>,
    recovery: Option<RecoveryPolicy>,
}

impl Gillis {
    /// Starts a deployment of `model` (defaults: AWS Lambda,
    /// latency-optimal).
    pub fn new(model: LinearModel) -> Self {
        Gillis {
            model,
            platform: PlatformProfile::aws_lambda(),
            mode: Mode::LatencyOptimal,
            profile_seed: 42,
            episodes: 400,
            chaos: None,
            policy: ResiliencePolicy::default(),
            overload: None,
            batch: None,
            outage: None,
            retry_budget: None,
            brownout: None,
            pipeline: None,
            recovery: None,
        }
    }

    /// Sets the target platform.
    pub fn platform(mut self, platform: PlatformProfile) -> Self {
        self.platform = platform;
        self
    }

    /// Sets the partitioning objective.
    pub fn mode(mut self, mode: Mode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the profiling / training seed (deployments are deterministic in
    /// it).
    pub fn seed(mut self, seed: u64) -> Self {
        self.profile_seed = seed;
        self
    }

    /// Sets the RL episode budget for the SLO-aware modes.
    pub fn episodes(mut self, episodes: usize) -> Self {
        self.episodes = episodes;
        self
    }

    /// Injects deterministic faults into serving and inference: worker
    /// invocation failures, mid-compute crashes, stragglers, and transfer
    /// corruption, sampled as a pure function of `(config.seed, fault
    /// site)` — validated at [`Gillis::deploy`].
    pub fn chaos(mut self, config: ChaosConfig) -> Self {
        self.chaos = Some(config);
        self
    }

    /// Sets how the fork-join master responds to worker faults (retries,
    /// backoff, timeouts, hedging, graceful degradation).
    pub fn resilience(mut self, policy: ResiliencePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Enables overload protection for serving: a bounded admission queue
    /// with deadline-derived shedding in open-loop serving, deadline
    /// propagation with cooperative cancellation, and per-worker-lane
    /// circuit breakers. The deployment's [`PlanPrediction`] feeds the
    /// shed-on-predicted-miss decision. Validated at [`Gillis::deploy`].
    pub fn overload(mut self, policy: OverloadPolicy) -> Self {
        self.overload = Some(policy);
        self
    }

    /// Enables adaptive multi-SLO batching for open-loop serving: arrivals
    /// are hashed into the policy's SLO classes, accumulate in
    /// deadline-derived windows, and dispatch as shared fork-join waves.
    /// The batch size and instance memory are chosen jointly against the
    /// performance model at serve time
    /// ([`Deployment::serve_open_loop_batched`]). Validated at
    /// [`Gillis::deploy`].
    pub fn batch(mut self, policy: BatchPolicy) -> Self {
        self.batch = Some(policy);
        self
    }

    /// Enables correlated-outage episodes on top of the chaos injector:
    /// deterministic Markov on/off windows per fault domain (platform,
    /// worker lane, memory tier) that multiply the injected failure rates
    /// by the configured severity while active. Inert without
    /// [`Gillis::chaos`]. Validated at [`Gillis::deploy`].
    pub fn outage(mut self, config: OutageConfig) -> Self {
        self.outage = Some(config);
        self
    }

    /// Enables an adaptive retry budget for serving: a deterministic token
    /// bucket, refilled by successful first attempts, that every retry and
    /// hedge must debit before launching. Validated at [`Gillis::deploy`].
    pub fn retry_budget(mut self, policy: RetryBudgetPolicy) -> Self {
        self.retry_budget = Some(policy);
        self
    }

    /// Enables the brownout degradation ladder for serving: a windowed
    /// first-attempt health score steps service down through full →
    /// no-hedging → int8 wire → local-fallback-only → shed, and back up
    /// only after consecutive clean windows. Validated at
    /// [`Gillis::deploy`].
    pub fn brownout(mut self, policy: BrownoutPolicy) -> Self {
        self.brownout = Some(policy);
        self
    }

    /// Enables pipeline-parallel serving across layer groups: each group
    /// becomes a stage with its own lane pool and a bounded inter-stage
    /// queue ([`Deployment::serve_open_loop_pipelined`]). Under the
    /// latency-optimal mode, the partitioner switches to the
    /// stage-balancing objective
    /// ([`PlanObjective::PipelineBottleneck`]) — minimize the slowest
    /// stage's time rather than the end-to-end sum. Validated at
    /// [`Gillis::deploy`].
    pub fn pipeline(mut self, policy: PipelinePolicy) -> Self {
        self.pipeline = Some(policy);
        self
    }

    /// Enables stage-level checkpointed recovery for serving: stage outputs
    /// are checkpointed at every group boundary, orchestrator crashes
    /// (injected via [`ChaosConfig::orchestrator_crash_rate`]) fail over
    /// and replay from the last checkpoint instead of restarting the query,
    /// failed stages retry from their checkpointed upstream boundary,
    /// straggler stages past `spec_factor` × their predicted p95 race a
    /// speculative duplicate, and retry-budget debits are priced at the
    /// resumed attempt's marginal cost. Validated at [`Gillis::deploy`].
    pub fn recovery(mut self, policy: RecoveryPolicy) -> Self {
        self.recovery = Some(policy);
        self
    }

    /// Runs the full offline workflow: profile the platform, search for a
    /// plan under the chosen objective, and validate it.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Infeasible`] when no plan fits the memory budget
    /// or meets the SLO, and propagates analysis errors.
    pub fn deploy(self) -> Result<Deployment, CoreError> {
        let perf = PerfModel::profiled(&self.platform, self.profile_seed);
        // Pipeline deployments plan for the pipelined objective: the DP
        // balances stage times instead of minimizing their sum, and the RL
        // trainer scores the pipelined p99 against the SLO.
        let pipelined = self.pipeline.is_some();
        let plan = match self.mode {
            Mode::LatencyOptimal => {
                let mut partitioner = DpPartitioner::new(PartitionerConfig::default());
                if pipelined {
                    partitioner = partitioner.with_objective(PlanObjective::PipelineBottleneck);
                }
                partitioner.partition(&self.model, &perf)?
            }
            Mode::SloAware { t_max_ms } => {
                slo_aware_partition(
                    &self.model,
                    &perf,
                    &SloAwareConfig {
                        t_max_ms,
                        episodes: self.episodes,
                        seed: self.profile_seed,
                        pipeline: pipelined,
                        ..SloAwareConfig::default()
                    },
                )?
                .plan
            }
            Mode::TailAware { quantile, t_max_ms } => {
                slo_aware_partition(
                    &self.model,
                    &perf,
                    &SloAwareConfig {
                        t_max_ms,
                        episodes: self.episodes,
                        seed: self.profile_seed,
                        tail_quantile: Some(quantile),
                        pipeline: pipelined,
                        ..SloAwareConfig::default()
                    },
                )?
                .plan
            }
        };
        let prediction = predict_plan(&self.model, &plan, &perf)?;
        // Validate the chaos and overload configs now, at deploy time, not
        // when serving starts.
        if let Some(ref chaos) = self.chaos {
            chaos.build()?;
        }
        if let Some(ref overload) = self.overload {
            overload.validate().map_err(CoreError::from)?;
        }
        if let Some(ref batch) = self.batch {
            batch.validate().map_err(CoreError::from)?;
        }
        if let Some(ref outage) = self.outage {
            outage.build().map_err(CoreError::from)?;
        }
        if let Some(ref budget) = self.retry_budget {
            budget.validate().map_err(CoreError::from)?;
        }
        if let Some(ref brownout) = self.brownout {
            brownout.validate().map_err(CoreError::from)?;
        }
        if let Some(ref pipeline) = self.pipeline {
            pipeline.validate().map_err(CoreError::from)?;
        }
        if let Some(ref recovery) = self.recovery {
            recovery.validate().map_err(CoreError::from)?;
        }
        Ok(Deployment {
            model: self.model,
            platform: self.platform,
            plan,
            prediction,
            chaos: self.chaos,
            policy: self.policy,
            overload: self.overload,
            batch: self.batch,
            outage: self.outage,
            retry_budget: self.retry_budget,
            brownout: self.brownout,
            pipeline: self.pipeline,
            recovery: self.recovery,
            warm: WarmCache::default(),
        })
    }
}

/// Identity of the weight set a compiled plan was built against. Compiled
/// state pre-slices and packs weights, so it is only valid for the exact
/// weight storage it was compiled from; the token pairs the map's address
/// and size with the heap pointer of one inner tensor so a recreated or
/// mutated weight set forces a recompile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct WarmToken {
    map_addr: usize,
    entries: usize,
    probe_addr: usize,
    probe_len: usize,
}

impl WarmToken {
    fn of(model: &LinearModel, weights: &ModelWeights) -> Self {
        let probe = model
            .graph()
            .nodes()
            .iter()
            .find_map(|n| weights.get(n.id).ok())
            .map(|w| {
                let data = match w {
                    NodeWeights::Conv { weight, .. }
                    | NodeWeights::Depthwise { weight, .. }
                    | NodeWeights::Dense { weight, .. } => weight.data(),
                    NodeWeights::Bn(p) => p.gamma.data(),
                    NodeWeights::Lstm(p) => p.w_ih.data(),
                };
                (data.as_ptr() as usize, data.len())
            })
            .unwrap_or((0, 0));
        WarmToken {
            map_addr: weights as *const ModelWeights as usize,
            entries: weights.len(),
            probe_addr: probe.0,
            probe_len: probe.1,
        }
    }
}

/// The deployment's steady-state compiled plan.
#[derive(Default)]
enum WarmSlot {
    /// No query has compiled yet.
    #[default]
    Empty,
    /// The model is outside the compiled subset (branching or recurrent);
    /// remembered so the fallback does not re-attempt compilation per query.
    Unsupported,
    /// Compiled and valid for the weight set identified by the token.
    Ready {
        token: WarmToken,
        exec: Box<CompiledPlanExec>,
    },
}

/// Shared, lazily-populated compiled state. Clones of a [`Deployment`] share
/// the same compilation (it is keyed by weight identity, not by clone).
#[derive(Clone, Default)]
struct WarmCache(Arc<Mutex<WarmSlot>>);

impl WarmCache {
    fn lock(&self) -> std::sync::MutexGuard<'_, WarmSlot> {
        // A poisoning panic can only come from the executor, whose state is
        // fully overwritten by the next run; recover rather than propagate.
        match self.0.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl fmt::Debug for WarmCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let state = match *self.lock() {
            WarmSlot::Empty => "empty",
            WarmSlot::Unsupported => "unsupported",
            WarmSlot::Ready { .. } => "ready",
        };
        f.debug_tuple("WarmCache").field(&state).finish()
    }
}

/// A deployed model: the plan plus everything needed to serve it.
#[derive(Debug, Clone)]
pub struct Deployment {
    model: LinearModel,
    platform: PlatformProfile,
    plan: ExecutionPlan,
    prediction: PlanPrediction,
    chaos: Option<ChaosConfig>,
    policy: ResiliencePolicy,
    overload: Option<OverloadPolicy>,
    batch: Option<BatchPolicy>,
    outage: Option<OutageConfig>,
    retry_budget: Option<RetryBudgetPolicy>,
    brownout: Option<BrownoutPolicy>,
    pipeline: Option<PipelinePolicy>,
    recovery: Option<RecoveryPolicy>,
    /// Lazily-compiled steady-state execution (pre-sliced weights, packed
    /// panels, preallocated buffers); see [`Deployment::infer`].
    warm: WarmCache,
}

impl Deployment {
    /// The chosen execution plan.
    pub fn plan(&self) -> &ExecutionPlan {
        &self.plan
    }

    /// Predicted latency and cost.
    pub fn predicted(&self) -> &PlanPrediction {
        &self.prediction
    }

    /// The served model.
    pub fn model(&self) -> &LinearModel {
        &self.model
    }

    /// Human-readable plan description (Fig 14 style).
    ///
    /// # Errors
    ///
    /// Propagates plan-analysis failures.
    pub fn describe(&self) -> Result<String, CoreError> {
        self.plan.describe(&self.model)
    }

    /// Runs one real inference through the partitioned plan: slices `input`
    /// per group, executes the worker partitions concurrently on the shared
    /// thread pool, and stitches the outputs. The result is bit-identical to
    /// the unpartitioned forward pass — Gillis's no-accuracy-loss property,
    /// now also exercised through the facade.
    ///
    /// The first query against a weight set compiles the plan
    /// ([`gillis_core::CompiledPlanExec`]): weight subsets are pre-sliced,
    /// batch norms folded, conv panels packed, and every intermediate buffer
    /// preallocated. Subsequent queries reuse that state — the steady-state
    /// warm path runs without heap allocation at pool width 1. Chaos-enabled
    /// deployments, branching/recurrent models, and mis-shaped inputs take
    /// the uncompiled resilient path
    /// ([`gillis_core::execute_plan_tensors`]); outputs are bit-identical
    /// either way.
    ///
    /// # Errors
    ///
    /// Propagates executor and plan-validation errors (e.g. an input whose
    /// shape does not match the model).
    pub fn infer(&self, weights: &ModelWeights, input: &Tensor) -> Result<Tensor, CoreError> {
        self.infer_with_report(weights, input).map(|(out, _)| out)
    }

    /// [`Deployment::infer`] plus the resilience accounting of the query:
    /// how many worker executions were retried, and how many shards the
    /// master recomputed locally after exhausting their retry budget. The
    /// tensor is bit-identical to the fault-free result either way.
    ///
    /// # Errors
    ///
    /// Propagates executor and plan-validation errors.
    pub fn infer_with_report(
        &self,
        weights: &ModelWeights,
        input: &Tensor,
    ) -> Result<(Tensor, ResilienceCounters), CoreError> {
        if self.chaos.is_none() {
            if let Some(out) = self.warm_infer(weights, input)? {
                let mut counters = ResilienceCounters::default();
                counters.record_status(QueryStatus::Ok);
                return Ok((out, counters));
            }
        }
        let injector = match &self.chaos {
            Some(cfg) => Some(cfg.build()?),
            None => None,
        };
        execute_plan_tensors_resilient(
            &self.model,
            &self.plan,
            weights,
            input,
            injector.as_ref(),
            &self.policy,
            gillis_pool::gillis_threads(),
        )
    }

    /// The steady-state warm path: compiles the plan on first use (or when
    /// `weights` changes identity), then serves the query from preallocated
    /// state. Returns `Ok(None)` when the query must take the uncompiled
    /// path instead — the model is outside the compiled subset, or the input
    /// shape is wrong (so the fallback can report the proper error).
    fn warm_infer(
        &self,
        weights: &ModelWeights,
        input: &Tensor,
    ) -> Result<Option<Tensor>, CoreError> {
        if input.shape() != self.model.input_shape() {
            return Ok(None);
        }
        let mut slot = self.warm.lock();
        if matches!(*slot, WarmSlot::Unsupported) {
            return Ok(None);
        }
        let token = WarmToken::of(&self.model, weights);
        let stale = match &*slot {
            WarmSlot::Ready { token: t, .. } => *t != token,
            _ => true,
        };
        if stale {
            match CompiledPlanExec::compile(&self.model, &self.plan, weights) {
                Ok(exec) => {
                    *slot = WarmSlot::Ready {
                        token,
                        exec: Box::new(exec),
                    };
                }
                Err(_) => {
                    // Branching or recurrent model: remember, and let every
                    // query take the uncompiled path without re-compiling.
                    *slot = WarmSlot::Unsupported;
                    return Ok(None);
                }
            }
        }
        match &mut *slot {
            WarmSlot::Ready { exec, .. } => exec.run(weights, input).map(Some),
            _ => unreachable!("slot was just compiled"),
        }
    }

    fn runtime(&self) -> Result<ForkJoinRuntime<'_>, CoreError> {
        let mut rt = ForkJoinRuntime::new(&self.model, &self.plan, self.platform.clone())?
            .with_policy(self.policy);
        if let Some(policy) = self.overload {
            // The deployment's own prediction (profiled performance model)
            // drives shed-on-predicted-miss.
            rt = rt.with_overload_predicted(policy, self.prediction.latency_ms)?;
        }
        if let Some(cfg) = self.outage {
            rt = rt.with_outage(cfg)?;
        }
        if let Some(policy) = self.retry_budget {
            rt = rt.with_retry_budget(policy)?;
        }
        if let Some(policy) = self.brownout {
            rt = rt.with_brownout(policy)?;
        }
        if let Some(policy) = self.recovery {
            rt = rt.with_recovery(policy)?;
        }
        match self.chaos {
            Some(cfg) => rt.with_chaos(cfg),
            None => Ok(rt),
        }
    }

    /// Mean warm-query latency over `n` simulated queries.
    pub fn mean_latency_ms(&self, n: usize, seed: u64) -> f64 {
        self.runtime()
            .expect("deployed plan is valid")
            .mean_latency_ms(n, seed)
    }

    /// Serves a closed-loop client workload end to end.
    ///
    /// # Errors
    ///
    /// Propagates fleet and deployment errors.
    pub fn serve(&self, workload: ClosedLoop, seed: u64) -> Result<ServingReport, CoreError> {
        self.runtime()?.serve_workload(workload, seed)
    }

    /// Serves an open-loop Poisson stream (see
    /// [`ForkJoinRuntime::serve_open_loop`]).
    ///
    /// Pools are pre-warmed via `Fleet::prewarm` before the first arrival —
    /// with an [`OverloadPolicy`], to at least the admission concurrency —
    /// so early queries do not pay cold starts that would skew overload
    /// p99s.
    ///
    /// # Errors
    ///
    /// Propagates fleet and deployment errors.
    pub fn serve_open_loop(
        &self,
        rate_per_sec: f64,
        queries: usize,
        prewarm: usize,
        seed: u64,
    ) -> Result<ServingReport, CoreError> {
        self.runtime()?
            .serve_open_loop(rate_per_sec, queries, prewarm, seed)
    }

    /// Serves an open-loop Poisson stream with pipeline parallelism across
    /// layer groups (see [`ForkJoinRuntime::serve_open_loop_pipelined`]):
    /// each group runs as a stage with its own lane pool and bounded
    /// inter-stage queue, so steady-state throughput is bounded by the
    /// slowest stage rather than the end-to-end latency. Requires a
    /// pipeline policy ([`Gillis::pipeline`]). Chaos, overload, retry
    /// budget, and brownout settings compose; batching does not (the
    /// pipelined path serves per-query).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidArgument`] without a pipeline policy;
    /// propagates fleet and deployment errors.
    pub fn serve_open_loop_pipelined(
        &self,
        rate_per_sec: f64,
        queries: usize,
        prewarm: usize,
        seed: u64,
    ) -> Result<ServingReport, CoreError> {
        let policy = self.pipeline.as_ref().ok_or_else(|| {
            CoreError::InvalidArgument(
                "deployment has no pipeline policy; configure one with Gillis::pipeline"
                    .to_string(),
            )
        })?;
        self.runtime()?
            .serve_open_loop_pipelined(policy, rate_per_sec, queries, prewarm, seed)
    }

    /// Jointly configures batch sizes and instance memory for the expected
    /// arrival rate (see [`gillis_core::plan_batch_schedule`]). Requires a
    /// batch policy ([`Gillis::batch`]).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidArgument`] without a batch policy, for a
    /// non-positive rate, or when no candidate memory is feasible.
    pub fn batch_schedule(&self, rate_per_sec: f64) -> Result<BatchSchedule, CoreError> {
        let policy = self.batch.as_ref().ok_or_else(|| {
            CoreError::InvalidArgument(
                "deployment has no batch policy; configure one with Gillis::batch".to_string(),
            )
        })?;
        plan_batch_schedule(
            &self.model,
            &self.plan,
            &self.platform,
            TransferFormat::F32,
            policy,
            rate_per_sec,
        )
    }

    /// Serves an open-loop Poisson stream with adaptive multi-SLO batching
    /// (see [`ForkJoinRuntime::serve_open_loop_batched`]): plans the joint
    /// batch × memory schedule for this rate, rebuilds the fleet on the
    /// chosen memory size when it differs from the deployment platform,
    /// and returns the schedule alongside the report. Chaos and overload
    /// settings compose.
    ///
    /// # Errors
    ///
    /// Propagates schedule, fleet, and deployment errors.
    pub fn serve_open_loop_batched(
        &self,
        rate_per_sec: f64,
        queries: usize,
        prewarm: usize,
        seed: u64,
    ) -> Result<(BatchSchedule, ServingReport), CoreError> {
        let policy = self.batch.as_ref().ok_or_else(|| {
            CoreError::InvalidArgument(
                "deployment has no batch policy; configure one with Gillis::batch".to_string(),
            )
        })?;
        let schedule = self.batch_schedule(rate_per_sec)?;
        let platform = if schedule.memory_bytes == self.platform.instance_memory_bytes {
            self.platform.clone()
        } else {
            self.platform.with_memory_bytes(schedule.memory_bytes)
        };
        let mut rt =
            ForkJoinRuntime::new(&self.model, &self.plan, platform)?.with_policy(self.policy);
        if let Some(ov) = self.overload {
            rt = rt.with_overload_predicted(ov, self.prediction.latency_ms)?;
        }
        if let Some(cfg) = self.outage {
            rt = rt.with_outage(cfg)?;
        }
        if let Some(policy) = self.retry_budget {
            rt = rt.with_retry_budget(policy)?;
        }
        if let Some(policy) = self.brownout {
            rt = rt.with_brownout(policy)?;
        }
        if let Some(policy) = self.recovery {
            rt = rt.with_recovery(policy)?;
        }
        if let Some(cfg) = self.chaos {
            rt = rt.with_chaos(cfg)?;
        }
        let report =
            rt.serve_open_loop_batched(policy, &schedule, rate_per_sec, queries, prewarm, seed)?;
        Ok((schedule, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gillis_faas::Micros;
    use gillis_model::zoo;

    #[test]
    fn latency_optimal_deployment_serves() {
        let d = Gillis::new(zoo::tiny_vgg())
            .platform(PlatformProfile::aws_lambda())
            .mode(Mode::LatencyOptimal)
            .deploy()
            .unwrap();
        assert!(d.predicted().latency_ms > 0.0);
        let report = d
            .serve(ClosedLoop::new(4, 20, Micros::ZERO).unwrap(), 1)
            .unwrap();
        assert_eq!(report.latency.count(), 20);
        assert!(d.describe().unwrap().contains("group"));
    }

    #[test]
    fn slo_aware_deployment_meets_target() {
        let single = Gillis::new(zoo::tiny_vgg()).deploy().unwrap();
        let budget = single.predicted().latency_ms * 3.0;
        let d = Gillis::new(zoo::tiny_vgg())
            .mode(Mode::SloAware { t_max_ms: budget })
            .episodes(100)
            .deploy()
            .unwrap();
        assert!(d.predicted().latency_ms <= budget);
    }

    #[test]
    fn deployment_inference_matches_unpartitioned_forward() {
        use gillis_model::exec::Executor;
        use gillis_model::weights::init_weights;

        let tiny = zoo::tiny_vgg();
        let d = Gillis::new(tiny.clone()).deploy().unwrap();
        let weights = init_weights(tiny.graph(), 9).unwrap();
        let input = Tensor::from_fn(tiny.input_shape().clone(), |i| {
            ((i % 13) as f32 - 6.0) / 6.0
        });
        let partitioned = d.infer(&weights, &input).unwrap();
        let reference = Executor::new(tiny.graph(), &weights)
            .forward(&tiny, &input)
            .unwrap();
        assert!(reference.max_abs_diff(&partitioned).unwrap() < 1e-4);
    }

    #[test]
    fn open_loop_serving_reports() {
        let d = Gillis::new(zoo::tiny_vgg()).deploy().unwrap();
        let report = d.serve_open_loop(50.0, 100, 8, 3).unwrap();
        assert_eq!(report.latency.count(), 100);
        assert!(report.billing.billed_ms_total() > 0);
    }

    #[test]
    fn overload_deployment_prewarms_capacity_and_sheds_only_under_pressure() {
        let concurrency = 4;
        let probe = Gillis::new(zoo::tiny_vgg()).deploy().unwrap();
        let predicted = probe.predicted().latency_ms;
        let d = Gillis::new(zoo::tiny_vgg())
            .overload(OverloadPolicy::for_slo(3.0 * predicted, concurrency))
            .deploy()
            .unwrap();
        // Sub-saturation: pools are pre-warmed to the admission concurrency
        // before the first arrival, so nothing pays a cold start and
        // nothing sheds.
        let saturation_qps = 1000.0 * concurrency as f64 / predicted;
        let calm = d.serve_open_loop(0.4 * saturation_qps, 60, 1, 7).unwrap();
        assert_eq!(calm.cold_starts, 0, "{:?}", calm.overload);
        assert_eq!(calm.overload.admitted, 60);
        assert_eq!(calm.overload.shed(), 0);
        assert_eq!(calm.by_status.count(), calm.latency.count());
        // The same deployment sheds honestly when pushed past capacity.
        let stormy = d.serve_open_loop(3.0 * saturation_qps, 200, 1, 7).unwrap();
        assert!(stormy.overload.shed() > 0);
        assert_eq!(
            stormy.overload.admitted + stormy.overload.shed(),
            200,
            "{:?}",
            stormy.overload
        );
    }

    #[test]
    fn invalid_overload_policy_rejected_at_deploy() {
        let err = Gillis::new(zoo::tiny_vgg())
            .overload(OverloadPolicy {
                max_concurrency: 0,
                ..OverloadPolicy::unprotected(1)
            })
            .deploy()
            .unwrap_err();
        assert!(err.to_string().contains("concurrency"), "{err}");
    }

    #[test]
    fn catalog_names_build_their_models() {
        for (name, _) in model_catalog() {
            let model = lookup_model(name).unwrap();
            assert!(!model.layers().is_empty(), "{name} has no layers");
        }
        assert!(lookup_model("nonexistent").is_err());
        assert!(lookup_platform("lambda").is_ok());
        assert!(lookup_platform("knix").is_ok());
        assert!(lookup_platform("azure").is_err());
    }

    #[test]
    fn chaotic_deployment_serves_and_infers_exactly() {
        use gillis_model::exec::Executor;
        use gillis_model::weights::init_weights;

        let tiny = zoo::tiny_vgg();
        let chaos = ChaosConfig {
            seed: 99,
            invoke_failure_rate: 0.1,
            crash_rate: 0.1,
            straggler_rate: 0.1,
            straggler_slowdown: 5.0,
            corrupt_rate: 0.05,
            orchestrator_crash_rate: 0.0,
        };
        let d = Gillis::new(tiny.clone())
            .chaos(chaos)
            .resilience(ResiliencePolicy::backoff_hedged())
            .deploy()
            .unwrap();

        // Serving under chaos completes every query and reports honestly.
        let report = d
            .serve(ClosedLoop::new(4, 30, Micros::ZERO).unwrap(), 2)
            .unwrap();
        assert_eq!(report.latency.count(), 30);
        assert_eq!(report.resilience.queries(), 30);
        assert_eq!(report.resilience.failed_queries, 0);

        // Inference under chaos is still exactly correct.
        let weights = init_weights(tiny.graph(), 11).unwrap();
        let input = Tensor::from_fn(tiny.input_shape().clone(), |i| {
            ((i % 11) as f32 - 5.0) / 5.0
        });
        let (out, _counters) = d.infer_with_report(&weights, &input).unwrap();
        let reference = Executor::new(tiny.graph(), &weights)
            .forward(&tiny, &input)
            .unwrap();
        assert!(reference.max_abs_diff(&out).unwrap() < 1e-4);

        // An invalid chaos config is rejected at deploy time.
        let bad = Gillis::new(zoo::tiny_vgg())
            .chaos(ChaosConfig {
                invoke_failure_rate: 1.5,
                ..ChaosConfig::default()
            })
            .deploy();
        assert!(bad.is_err());
    }

    #[test]
    fn resilient_deployment_composes_outage_budget_and_brownout() {
        let chaos = ChaosConfig {
            seed: 21,
            invoke_failure_rate: 0.05,
            straggler_rate: 0.02,
            straggler_slowdown: 4.0,
            ..ChaosConfig::default()
        };
        let d = Gillis::new(zoo::tiny_vgg())
            .chaos(chaos)
            .resilience(ResiliencePolicy::backoff_hedged())
            .outage(OutageConfig::severe(8.0, 5))
            .retry_budget(RetryBudgetPolicy::default())
            .brownout(BrownoutPolicy::default())
            .deploy()
            .unwrap();
        let a = d.serve_open_loop(40.0, 150, 4, 9).unwrap();
        let b = d.serve_open_loop(40.0, 150, 4, 9).unwrap();
        assert_eq!(a.brownout.arrivals(), 150);
        assert_eq!(a.resilience.failed_queries, 0);
        assert!(a.retry_amplification() >= 1.0);
        // Deterministic: the same deployment replays bit-identically.
        assert_eq!(a.resilience, b.resilience);
        assert_eq!(a.brownout, b.brownout);
        assert_eq!(a.latency.mean().to_bits(), b.latency.mean().to_bits());

        // Invalid resilience configs are rejected at deploy time.
        assert!(Gillis::new(zoo::tiny_vgg())
            .outage(OutageConfig {
                severity: 0.5,
                ..OutageConfig::severe(8.0, 5)
            })
            .deploy()
            .is_err());
        assert!(Gillis::new(zoo::tiny_vgg())
            .retry_budget(RetryBudgetPolicy {
                max_tokens: 0.0,
                ..RetryBudgetPolicy::default()
            })
            .deploy()
            .is_err());
        assert!(Gillis::new(zoo::tiny_vgg())
            .brownout(BrownoutPolicy {
                window_lanes: 0,
                ..BrownoutPolicy::default()
            })
            .deploy()
            .is_err());
    }

    #[test]
    fn recovered_deployment_replays_crashes_deterministically() {
        let chaos = ChaosConfig {
            seed: 17,
            invoke_failure_rate: 0.03,
            orchestrator_crash_rate: 0.2,
            ..ChaosConfig::default()
        };
        let d = Gillis::new(zoo::tiny_vgg())
            .chaos(chaos)
            .resilience(ResiliencePolicy::backoff())
            .recovery(RecoveryPolicy::default())
            .deploy()
            .unwrap();
        let a = d.serve_open_loop(40.0, 120, 4, 9).unwrap();
        let b = d.serve_open_loop(40.0, 120, 4, 9).unwrap();
        assert!(a.recovery.orchestrator_crashes > 0);
        assert!(a.recovery.checkpoints_stored > 0);
        assert_eq!(a.recovery.full_restarts, 0, "{:?}", a.recovery);
        assert_eq!(a.recovery, b.recovery);
        assert_eq!(a.latency.mean().to_bits(), b.latency.mean().to_bits());
        // Invalid recovery knobs are rejected at deploy time.
        assert!(Gillis::new(zoo::tiny_vgg())
            .recovery(RecoveryPolicy {
                capacity: 0,
                ..RecoveryPolicy::default()
            })
            .deploy()
            .is_err());
    }

    #[test]
    fn warm_path_is_bit_identical_and_tracks_weight_identity() {
        use gillis_model::weights::init_weights;

        let tiny = zoo::tiny_vgg();
        let d = Gillis::new(tiny.clone()).deploy().unwrap();
        let input = Tensor::from_fn(tiny.input_shape().clone(), |i| {
            ((i % 17) as f32 - 8.0) / 8.0
        });

        // Cold query (compiles) and warm queries agree bit-for-bit with the
        // uncompiled path.
        let weights = init_weights(tiny.graph(), 4).unwrap();
        let uncompiled =
            gillis_core::execute_plan_tensors(&tiny, d.plan(), &weights, &input).unwrap();
        for _ in 0..3 {
            let out = d.infer(&weights, &input).unwrap();
            assert_eq!(out.shape(), uncompiled.shape());
            for (a, b) in out.data().iter().zip(uncompiled.data().iter()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        assert!(format!("{:?}", d.warm).contains("ready"));

        // A different weight set forces a recompile and still matches.
        let weights2 = init_weights(tiny.graph(), 5).unwrap();
        let expect2 =
            gillis_core::execute_plan_tensors(&tiny, d.plan(), &weights2, &input).unwrap();
        let out2 = d.infer(&weights2, &input).unwrap();
        assert_eq!(
            out2.data()[0].to_bits(),
            expect2.data()[0].to_bits(),
            "recompiled against new weights"
        );

        // Clones share the compiled state.
        let clone = d.clone();
        assert!(format!("{:?}", clone.warm).contains("ready"));
    }

    #[test]
    fn branching_model_marks_warm_slot_unsupported_and_still_infers() {
        use gillis_model::exec::Executor;
        use gillis_model::weights::init_weights;

        let model = zoo::tiny_resnet();
        let d = Gillis::new(model.clone()).deploy().unwrap();
        let weights = init_weights(model.graph(), 2).unwrap();
        let input = Tensor::from_fn(model.input_shape().clone(), |i| {
            ((i % 7) as f32 - 3.0) / 3.0
        });
        let out = d.infer(&weights, &input).unwrap();
        let reference = Executor::new(model.graph(), &weights)
            .forward(&model, &input)
            .unwrap();
        assert!(reference.max_abs_diff(&out).unwrap() < 1e-4);
        assert!(format!("{:?}", d.warm).contains("unsupported"));
        // Second query goes straight to the fallback without recompiling.
        let again = d.infer(&weights, &input).unwrap();
        assert_eq!(out.data()[0].to_bits(), again.data()[0].to_bits());
    }

    #[test]
    fn chaos_deployment_never_uses_the_warm_path() {
        use gillis_model::weights::init_weights;

        let tiny = zoo::tiny_vgg();
        let d = Gillis::new(tiny.clone())
            .chaos(ChaosConfig {
                seed: 3,
                crash_rate: 0.05,
                ..ChaosConfig::default()
            })
            .deploy()
            .unwrap();
        let weights = init_weights(tiny.graph(), 6).unwrap();
        let input = Tensor::from_fn(tiny.input_shape().clone(), |_| 0.25);
        d.infer(&weights, &input).unwrap();
        // Fault-injection sites only exist on the resilient path, so chaos
        // deployments must not compile a warm plan.
        assert!(format!("{:?}", d.warm).contains("empty"));
    }

    #[test]
    fn batched_deployment_forms_batches_and_repicks_memory() {
        let probe = Gillis::new(zoo::tiny_vgg()).deploy().unwrap();
        let predicted = probe.predicted().latency_ms;
        let base_mb = PlatformProfile::aws_lambda().instance_memory_bytes / 1_000_000;
        let mut policy = BatchPolicy::single(f64::INFINITY, 4);
        policy.max_window_ms = 4.0 * predicted;
        policy.memory_mb = vec![base_mb, 2 * base_mb];
        let d = Gillis::new(zoo::tiny_vgg()).batch(policy).deploy().unwrap();
        let rate = 6_000.0 / predicted;
        let (schedule, report) = d.serve_open_loop_batched(rate, 80, 4, 5).unwrap();
        assert!(schedule.classes[0].batch > 1, "{:?}", schedule.classes[0]);
        assert!(d
            .batch
            .as_ref()
            .unwrap()
            .memory_mb
            .contains(&(schedule.memory_bytes / 1_000_000)));
        assert_eq!(
            report.batch.batched_queries + report.batch.batch_one_fast_path,
            report.overload.admitted
        );
        assert!(report.batch.mean_batch() > 1.0, "{:?}", report.batch);
        // Without a policy the batched entry point is an explicit error.
        let err = probe.serve_open_loop_batched(rate, 10, 1, 5).unwrap_err();
        assert!(err.to_string().contains("batch policy"), "{err}");
    }

    #[test]
    fn pipelined_deployment_streams_stages_and_plans_for_the_bottleneck() {
        use gillis_core::predict_plan_pipelined;
        use gillis_perf::PerfModel;

        let tiny = zoo::tiny_vgg();
        let d = Gillis::new(tiny.clone())
            .pipeline(PipelinePolicy::with_lanes(2))
            .deploy()
            .unwrap();
        // The pipeline deployment plans for the stage-balancing objective:
        // its bottleneck is no worse than the latency-optimal plan's.
        let plain = Gillis::new(tiny.clone()).deploy().unwrap();
        let perf = PerfModel::profiled(&PlatformProfile::aws_lambda(), 42);
        let balanced = predict_plan_pipelined(&tiny, d.plan(), &perf).unwrap();
        let latency_opt = predict_plan_pipelined(&tiny, plain.plan(), &perf).unwrap();
        assert!(balanced.bottleneck_ms <= latency_opt.bottleneck_ms * 1.0001);
        // Serving streams queries through stages deterministically.
        let report = d.serve_open_loop_pipelined(80.0, 100, 2, 3).unwrap();
        if d.plan().groups().len() > 1 {
            assert!(report.pipeline.stage_dispatches > 0);
            assert!(report.pipeline.handoffs > 0);
            assert_eq!(report.latency.count() as u64, report.overload.admitted);
        } else {
            // Single-group plans delegate to the plain fork-join loop, which
            // only counts admissions under an overload policy.
            assert_eq!(report.latency.count(), 100);
        }
        let again = d.serve_open_loop_pipelined(80.0, 100, 2, 3).unwrap();
        assert_eq!(
            report.latency.mean().to_bits(),
            again.latency.mean().to_bits()
        );
        assert_eq!(report.pipeline, again.pipeline);
        // Without a pipeline policy the entry point is an explicit error.
        let err = plain.serve_open_loop_pipelined(80.0, 10, 1, 3).unwrap_err();
        assert!(err.to_string().contains("pipeline policy"), "{err}");
    }

    #[test]
    fn infeasible_slo_errors() {
        let err = Gillis::new(zoo::tiny_vgg())
            .mode(Mode::SloAware { t_max_ms: 0.0001 })
            .episodes(40)
            .deploy();
        assert!(matches!(err, Err(CoreError::Infeasible(_))));
    }
}
