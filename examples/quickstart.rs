//! Quickstart: partition a model for latency-optimal serverless serving.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use gillis::core::{
    predict_plan, DpPartitioner, ExecutionPlan, ForkJoinRuntime, PartitionerConfig,
};
use gillis::faas::PlatformProfile;
use gillis::model::zoo;
use gillis::perf::PerfModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Pick a model and a platform.
    let model = zoo::vgg11();
    let platform = PlatformProfile::aws_lambda();
    println!(
        "model {}: {:.0} MB of weights, {:.1} GFLOPs per query",
        model.name(),
        model.weight_bytes() as f64 / 1e6,
        model.total_flops() as f64 / 1e9
    );

    // 2. Profile the platform and build the performance model (§IV-A).
    let perf = PerfModel::profiled(&platform, 42);

    // 3. Latency-optimal partitioning (§IV-B).
    let plan = DpPartitioner::new(PartitionerConfig::default()).partition(&model, &perf)?;
    println!("\n{}", plan.describe(&model)?);

    // 4. Predict, then measure against the simulated platform.
    let predicted = predict_plan(&model, &plan, &perf)?;
    let runtime = ForkJoinRuntime::new(&model, &plan, platform.clone())?;
    let measured = runtime.mean_latency_ms(100, 7);

    let single = ExecutionPlan::single_function(&model);
    let baseline = ForkJoinRuntime::new(&model, &single, platform)?.mean_latency_ms(100, 7);

    println!("default (single function) : {baseline:.0} ms");
    println!(
        "gillis, predicted          : {:.0} ms",
        predicted.latency_ms
    );
    println!("gillis, measured           : {measured:.0} ms");
    println!("speedup                    : {:.2}x", baseline / measured);
    println!(
        "billed cost per query      : {} ms ({} worker invocations/group max)",
        predicted.billed_ms,
        plan.groups()
            .iter()
            .map(|g| g.worker_count())
            .max()
            .unwrap_or(0)
    );
    Ok(())
}
