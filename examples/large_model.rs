//! Serving a model that cannot fit in any single serverless function:
//! WRN-50-4 (~1.6 GB of weights vs the 1.4 GB Lambda budget).
//!
//! Default serving OOMs; the Pipeline baseline streams weights from storage
//! and is dominated by loading; Gillis partitions the model across functions
//! and serves it an order of magnitude faster (paper Fig 11).
//!
//! ```sh
//! cargo run --release --example large_model
//! ```

use gillis::core::baselines::{default_serving_ms, pipeline_serving};
use gillis::core::{DpPartitioner, ForkJoinRuntime};
use gillis::faas::PlatformProfile;
use gillis::model::zoo;
use gillis::perf::PerfModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = zoo::wrn50(4);
    let platform = PlatformProfile::aws_lambda();
    let perf = PerfModel::profiled(&platform, 17);
    println!(
        "model {}: {:.2} GB of weights vs {:.2} GB function budget",
        model.name(),
        model.weight_bytes() as f64 / 1e9,
        platform.model_memory_budget as f64 / 1e9,
    );

    // Default serving fails with OOM.
    match default_serving_ms(&model, &perf) {
        Err(e) => println!("\ndefault serving: {e}"),
        Ok(ms) => println!("\ndefault serving unexpectedly succeeded: {ms:.0} ms"),
    }

    // Pipeline baseline: stage weights in S3, stream per query.
    let pipe = pipeline_serving(&model, &platform, 9)?;
    println!(
        "pipeline serving: {:.0} ms ({} stages; {:.0} ms loading + {:.0} ms compute)",
        pipe.total_ms, pipe.stages, pipe.load_ms, pipe.compute_ms
    );

    // Gillis: partition across functions.
    let plan = DpPartitioner::default().partition(&model, &perf)?;
    let runtime = ForkJoinRuntime::new(&model, &plan, platform)?;
    let gillis_ms = runtime.mean_latency_ms(100, 2);
    println!(
        "gillis serving  : {gillis_ms:.0} ms ({} groups)",
        plan.groups().len()
    );
    println!("speedup over pipeline: {:.1}x", pipe.total_ms / gillis_ms);
    println!("\n{}", plan.describe(&model)?);
    Ok(())
}
