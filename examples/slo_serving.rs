//! SLO-aware serving: learn a cost-minimal partitioning that meets a
//! mean-latency SLO (§IV-C), and compare it against the Bayesian
//! optimization baseline.
//!
//! ```sh
//! cargo run --release --example slo_serving
//! ```

use gillis::bo::{BayesOpt, BoConfig};
use gillis::core::ForkJoinRuntime;
use gillis::faas::workload::ClosedLoop;
use gillis::faas::{Micros, PlatformProfile};
use gillis::model::zoo;
use gillis::perf::PerfModel;
use gillis::rl::{slo_aware_partition, SloAwareConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = zoo::vgg11();
    let platform = PlatformProfile::aws_lambda();
    let perf = PerfModel::profiled(&platform, 1);
    let t_max_ms = 400.0;
    println!(
        "serving {} under a {t_max_ms} ms mean-latency SLO\n",
        model.name()
    );

    // Gillis SLO-aware: hierarchical REINFORCE against the performance model.
    let sa = slo_aware_partition(
        &model,
        &perf,
        &SloAwareConfig {
            t_max_ms,
            episodes: 300,
            seed: 3,
            ..SloAwareConfig::default()
        },
    )?;
    println!(
        "RL: predicted latency {:.0} ms, billed {} ms/query ({} batches trained)",
        sa.predicted.latency_ms,
        sa.predicted.billed_ms,
        sa.reward_history.len()
    );

    // Bayesian optimization baseline (Cherrypick-style).
    let bo = BayesOpt::new(BoConfig {
        t_max_ms,
        iterations: 40,
        seed: 3,
        ..BoConfig::default()
    })
    .search(&model, &perf)?;
    println!(
        "BO: predicted latency {:.0} ms, billed {} ms/query (meets SLO: {})",
        bo.predicted.latency_ms, bo.predicted.billed_ms, bo.meets_slo
    );

    // Serve the paper's workload with the learned plan: 100 clients x 1000
    // queries against warm pools.
    let runtime = ForkJoinRuntime::new(&model, &sa.plan, platform)?;
    let report = runtime.serve_workload(ClosedLoop::new(100, 1000, Micros::ZERO)?, 5)?;
    println!(
        "\nworkload: mean {:.0} ms (p99 {:.0} ms) over {} queries — SLO {}",
        report.latency.mean(),
        report.latency.percentile(99.0),
        report.latency.count(),
        if report.latency.mean() <= t_max_ms {
            "met"
        } else {
            "MISSED"
        },
    );
    println!(
        "billed {} ms total (~{} ms/query), ${:.4} total",
        report.billing.billed_ms_total(),
        report.billing.billed_ms_total() / 1000,
        report.billing.usd_total()
    );
    Ok(())
}
