//! Partitioning is accuracy-lossless: a partitioned plan computes *exactly*
//! the same output as the unpartitioned model (no compression, no
//! approximation — the paper's core argument for partitioning over
//! compression, §II-C).
//!
//! This example materializes real weights for a small CNN, runs the full
//! forward pass, then executes a Gillis plan with real tensor math — slicing
//! halo rows, computing partitions, stitching outputs — and compares.
//!
//! ```sh
//! cargo run --release --example semantic_equivalence
//! ```

use gillis::core::{
    execute_plan_tensors, ExecutionPlan, PartDim, PartitionOption, Placement, PlannedGroup,
};
use gillis::model::exec::Executor;
use gillis::model::weights::init_weights;
use gillis::model::zoo;
use gillis::tensor::{Shape, Tensor};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = zoo::tiny_vgg();
    let weights = init_weights(model.graph(), 2024)?;
    println!(
        "model {} with materialized weights ({} weighted nodes)",
        model.name(),
        weights.len()
    );

    // A deterministic query tensor.
    let input = Tensor::from_fn(Shape::new(model.input_shape().dims().to_vec()), |i| {
        ((i * 2654435761) % 1000) as f32 / 500.0 - 1.0
    });

    // Reference: unpartitioned forward pass.
    let exec = Executor::new(model.graph(), &weights);
    let reference = exec.forward(&model, &input)?;
    println!("reference logits: {:?}", &reference.data()[..5]);

    // For a model this small the latency-optimal plan is a single group
    // (parallelism never pays — the optimizer is right), so build an
    // aggressive plan by hand to demonstrate partitioned execution: spatial
    // layers split 4-way with halos, the classifier split by output units.
    let mut groups = Vec::new();
    for (i, layer) in model.layers().iter().enumerate() {
        let option = if layer.class.supports_spatial() && layer.out_shape.dims()[1] >= 4 {
            PartitionOption::Split {
                dim: PartDim::Height,
                parts: 4,
            }
        } else if layer.class.channel_splittable() && layer.out_shape.dims()[0] >= 2 {
            PartitionOption::Split {
                dim: PartDim::Channel,
                parts: 2,
            }
        } else {
            PartitionOption::Single
        };
        groups.push(PlannedGroup {
            start: i,
            end: i + 1,
            option,
            placement: if option == PartitionOption::Single {
                Placement::Master
            } else {
                Placement::Workers
            },
        });
    }
    let plan = ExecutionPlan::new(groups);
    plan.validate(&model, u64::MAX)?;
    println!("\n{}", plan.describe(&model)?);
    let partitioned = execute_plan_tensors(&model, &plan, &weights, &input)?;
    println!("partitioned logits: {:?}", &partitioned.data()[..5]);

    let diff = reference.max_abs_diff(&partitioned)?;
    println!("\nmax |difference| = {diff:e}");
    assert!(diff < 1e-4, "partitioned execution diverged");
    println!("partitioned execution is numerically identical — no accuracy loss.");
    Ok(())
}
