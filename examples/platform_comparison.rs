//! The same model served on all three platforms the paper evaluates:
//! AWS Lambda, Google Cloud Functions, and KNIX. Faster function
//! communication (KNIX) lets Gillis parallelize more aggressively (paper
//! §VI: "next-generation serverless platforms enable increasingly faster
//! function communications, making Gillis's parallelization more
//! efficient").
//!
//! ```sh
//! cargo run --release --example platform_comparison
//! ```

use gillis::core::{DpPartitioner, ExecutionPlan, ForkJoinRuntime};
use gillis::faas::PlatformProfile;
use gillis::model::zoo;
use gillis::perf::PerfModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = zoo::vgg16();
    println!("serving {} on three platforms:\n", model.name());
    println!(
        "{:>8} {:>12} {:>12} {:>9} {:>11}",
        "platform", "default(ms)", "gillis(ms)", "speedup", "max fan-out"
    );
    for platform in [
        PlatformProfile::aws_lambda(),
        PlatformProfile::gcf(),
        PlatformProfile::knix(),
    ] {
        let perf = PerfModel::profiled(&platform, 5);
        let plan = DpPartitioner::default().partition(&model, &perf)?;
        let gillis = ForkJoinRuntime::new(&model, &plan, platform.clone())?.mean_latency_ms(100, 3);
        let single = ExecutionPlan::single_function(&model);
        let default =
            ForkJoinRuntime::new(&model, &single, platform.clone())?.mean_latency_ms(100, 3);
        let fanout = plan
            .groups()
            .iter()
            .map(|g| g.option.parts())
            .max()
            .unwrap_or(1);
        println!(
            "{:>8} {:>12.0} {:>12.0} {:>8.2}x {:>11}",
            platform.kind.label(),
            default,
            gillis,
            default / gillis,
            fanout
        );
    }
    println!("\nfaster communication -> more profitable parallelism (paper Figs 7, 10).");
    Ok(())
}
