//! End-to-end integration tests spanning all crates: profile a platform,
//! partition a model, validate the plan, and serve queries.

use gillis::core::baselines::{default_serving_ms, pipeline_serving};
use gillis::core::{predict_plan, CoreError, DpPartitioner, ExecutionPlan, ForkJoinRuntime};
use gillis::faas::PlatformProfile;
use gillis::model::zoo;
use gillis::perf::PerfModel;

#[test]
fn latency_optimal_pipeline_on_vgg11() {
    let platform = PlatformProfile::aws_lambda();
    // Full workflow: profile -> partition -> predict -> simulate.
    let perf = PerfModel::profiled(&platform, 1);
    let model = zoo::vgg11();
    let plan = DpPartitioner::default().partition(&model, &perf).unwrap();
    plan.validate(&model, platform.model_memory_budget).unwrap();

    let predicted = predict_plan(&model, &plan, &perf).unwrap();
    let runtime = ForkJoinRuntime::new(&model, &plan, platform.clone()).unwrap();
    let measured = runtime.mean_latency_ms(100, 2);
    // Fig 15 (bottom): end-to-end prediction error within ~6%.
    let rel = (predicted.latency_ms - measured).abs() / measured;
    assert!(rel < 0.08, "prediction error {:.1}%", rel * 100.0);

    // And the plan beats Default serving (Fig 9).
    let default = default_serving_ms(&model, &perf).unwrap();
    assert!(
        measured < default,
        "gillis {measured:.0} ms vs default {default:.0} ms"
    );
}

#[test]
fn oversized_models_oom_on_default_but_serve_with_gillis() {
    let platform = PlatformProfile::aws_lambda();
    let perf = PerfModel::analytic(&platform);
    for model in [zoo::wrn34(5), zoo::wrn50(4)] {
        assert!(matches!(
            default_serving_ms(&model, &perf),
            Err(CoreError::OutOfMemory { .. })
        ));
        let plan = DpPartitioner::default().partition(&model, &perf).unwrap();
        plan.validate(&model, platform.model_memory_budget).unwrap();
        let runtime = ForkJoinRuntime::new(&model, &plan, platform.clone()).unwrap();
        let latency = runtime.mean_latency_ms(20, 3);
        assert!(latency > 0.0 && latency < 60_000.0);
    }
}

#[test]
fn gillis_beats_pipeline_on_large_models() {
    // Fig 11: roughly an order of magnitude over the S3-staged pipeline.
    let platform = PlatformProfile::aws_lambda();
    let perf = PerfModel::analytic(&platform);
    let model = zoo::wrn50(4);
    let pipeline = pipeline_serving(&model, &platform, 7).unwrap();
    let plan = DpPartitioner::default().partition(&model, &perf).unwrap();
    let gillis = ForkJoinRuntime::new(&model, &plan, platform)
        .unwrap()
        .mean_latency_ms(20, 4);
    let speedup = pipeline.total_ms / gillis;
    assert!(
        speedup > 4.0,
        "speedup {speedup:.1}x (pipeline {:.0} ms, gillis {gillis:.0} ms)",
        pipeline.total_ms
    );
}

#[test]
fn rnn_scales_linearly_past_the_memory_cliff() {
    let platform = PlatformProfile::aws_lambda();
    let perf = PerfModel::analytic(&platform);
    // Default OOMs at 10+ layers...
    assert!(default_serving_ms(&zoo::rnn(12), &perf).is_err());
    // ...Gillis keeps scaling, linearly in depth (Fig 12).
    let mut latencies = Vec::new();
    for layers in [6usize, 12, 18] {
        let model = zoo::rnn(layers);
        let plan = DpPartitioner::default().partition(&model, &perf).unwrap();
        let runtime = ForkJoinRuntime::new(&model, &plan, platform.clone()).unwrap();
        latencies.push(runtime.mean_latency_ms(20, 5));
    }
    let per_layer: Vec<f64> = latencies
        .iter()
        .zip([6.0f64, 12.0, 18.0])
        .map(|(t, l)| t / l)
        .collect();
    let min = per_layer.iter().copied().fold(f64::INFINITY, f64::min);
    let max = per_layer.iter().copied().fold(0.0, f64::max);
    assert!(
        max / min < 1.35,
        "per-layer latency not linear: {per_layer:?}"
    );
}

#[test]
fn knix_speedups_exceed_lambda_speedups() {
    // Fig 10's headline: faster communication -> more profitable
    // parallelism.
    let model = zoo::vgg16();
    let mut speedups = Vec::new();
    for platform in [PlatformProfile::aws_lambda(), PlatformProfile::knix()] {
        let perf = PerfModel::analytic(&platform);
        let plan = DpPartitioner::default().partition(&model, &perf).unwrap();
        let gillis = ForkJoinRuntime::new(&model, &plan, platform.clone())
            .unwrap()
            .mean_latency_ms(30, 6);
        let single = ExecutionPlan::single_function(&model);
        let default = ForkJoinRuntime::new(&model, &single, platform)
            .unwrap()
            .mean_latency_ms(30, 6);
        speedups.push(default / gillis);
    }
    assert!(
        speedups[1] > speedups[0] * 1.3,
        "KNIX {:.2}x vs Lambda {:.2}x",
        speedups[1],
        speedups[0]
    );
}

#[test]
fn billing_granularity_shapes_gcf_costs() {
    // GCF rounds to 100 ms: billed duration is never below the granularity
    // and is coarser than Lambda's for the same plan shape.
    let model = zoo::vgg11();
    let lambda_perf = PerfModel::analytic(&PlatformProfile::aws_lambda());
    let gcf_perf = PerfModel::analytic(&PlatformProfile::gcf());
    let plan = ExecutionPlan::single_function(&model);
    let lambda = predict_plan(&model, &plan, &lambda_perf).unwrap();
    let gcf = predict_plan(&model, &plan, &gcf_perf).unwrap();
    assert_eq!(gcf.billed_ms % 100, 0);
    assert!(gcf.billed_ms as f64 >= gcf.latency_ms);
    assert!(lambda.billed_ms as f64 >= lambda.latency_ms);
    assert!((lambda.billed_ms as f64) < lambda.latency_ms + 1.0 + 1e-9);
}
