//! Property-based tests of the headline invariant: partitioned execution is
//! numerically identical to unpartitioned execution, for arbitrary valid
//! plans over real weights.

use proptest::prelude::*;

use gillis::core::{execute_plan_tensors, ExecutionPlan, PartitionOption, Placement, PlannedGroup};
use gillis::model::exec::Executor;
use gillis::model::weights::init_weights;
use gillis::model::zoo;
use gillis::tensor::Tensor;

/// Builds a random valid plan for `tiny_vgg` from proptest-chosen cut points
/// and option selectors.
fn plan_from_choices(
    model: &gillis::model::LinearModel,
    cuts: &[bool],
    option_picks: &[u8],
) -> ExecutionPlan {
    let n = model.layers().len();
    let mut groups = Vec::new();
    let mut start = 0;
    for end in 1..=n {
        let force_cut =
            end == n || gillis::core::group_options(model, start, end + 1, &[2, 4]).is_empty();
        let cut = force_cut || cuts[end - 1];
        if !cut {
            continue;
        }
        let opts = gillis::core::group_options(model, start, end, &[2, 4]);
        // Height splits are only executable when the extent divides evenly
        // enough; all options from group_options are valid by construction.
        let pick = option_picks[end - 1] as usize % opts.len();
        let option = opts[pick];
        groups.push(PlannedGroup {
            start,
            end,
            option,
            placement: if option == PartitionOption::Single {
                Placement::Master
            } else {
                Placement::Workers
            },
        });
        start = end;
    }
    ExecutionPlan::new(groups)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_plans_preserve_semantics(
        cuts in prop::collection::vec(any::<bool>(), 16),
        picks in prop::collection::vec(any::<u8>(), 16),
        weight_seed in 0u64..1000,
        input_seed in 0u64..1000,
    ) {
        let model = zoo::tiny_vgg();
        let weights = init_weights(model.graph(), weight_seed).unwrap();
        let exec = Executor::new(model.graph(), &weights);
        let input = Tensor::from_fn(model.input_shape().clone(), |i| {
            let x = (i as u64).wrapping_mul(6364136223846793005).wrapping_add(input_seed);
            ((x >> 33) % 2000) as f32 / 1000.0 - 1.0
        });
        let reference = exec.forward(&model, &input).unwrap();

        let plan = plan_from_choices(&model, &cuts, &picks);
        plan.validate(&model, u64::MAX).unwrap();
        let partitioned = execute_plan_tensors(&model, &plan, &weights, &input).unwrap();
        let diff = reference.max_abs_diff(&partitioned).unwrap();
        prop_assert!(diff < 1e-3, "diverged by {diff} on plan {plan:?}");
    }

    #[test]
    fn random_plans_preserve_semantics_on_inception_model(
        cuts in prop::collection::vec(any::<bool>(), 8),
        picks in prop::collection::vec(any::<u8>(), 8),
        weight_seed in 0u64..500,
    ) {
        let model = zoo::tiny_inception();
        let weights = init_weights(model.graph(), weight_seed).unwrap();
        let exec = Executor::new(model.graph(), &weights);
        let input = Tensor::from_fn(model.input_shape().clone(), |i| {
            ((i * 131) % 23) as f32 / 11.5 - 1.0
        });
        let reference = exec.forward(&model, &input).unwrap();
        let plan = plan_from_choices(&model, &cuts, &picks);
        plan.validate(&model, u64::MAX).unwrap();
        let partitioned = execute_plan_tensors(&model, &plan, &weights, &input).unwrap();
        let diff = reference.max_abs_diff(&partitioned).unwrap();
        prop_assert!(diff < 1e-3, "diverged by {diff}");
    }

    #[test]
    fn random_plans_preserve_semantics_on_mobilenet_model(
        cuts in prop::collection::vec(any::<bool>(), 20),
        picks in prop::collection::vec(any::<u8>(), 20),
        weight_seed in 0u64..500,
    ) {
        // Depthwise-separable chains exercise channel partitioning of
        // multi-layer groups (pointwise head + channel-local depthwise).
        let model = zoo::tiny_mobilenet();
        let weights = init_weights(model.graph(), weight_seed).unwrap();
        let exec = Executor::new(model.graph(), &weights);
        let input = Tensor::from_fn(model.input_shape().clone(), |i| {
            ((i * 97) % 29) as f32 / 14.5 - 1.0
        });
        let reference = exec.forward(&model, &input).unwrap();
        let plan = plan_from_choices(&model, &cuts, &picks);
        plan.validate(&model, u64::MAX).unwrap();
        let partitioned = execute_plan_tensors(&model, &plan, &weights, &input).unwrap();
        let diff = reference.max_abs_diff(&partitioned).unwrap();
        prop_assert!(diff < 1e-3, "diverged by {diff} on plan {plan:?}");
    }

    #[test]
    fn random_plans_preserve_semantics_on_residual_model(
        cuts in prop::collection::vec(any::<bool>(), 24),
        picks in prop::collection::vec(any::<u8>(), 24),
        weight_seed in 0u64..500,
    ) {
        let model = zoo::tiny_resnet();
        let weights = init_weights(model.graph(), weight_seed).unwrap();
        let exec = Executor::new(model.graph(), &weights);
        let input = Tensor::from_fn(model.input_shape().clone(), |i| {
            ((i * 31) % 17) as f32 / 8.5 - 1.0
        });
        let reference = exec.forward(&model, &input).unwrap();
        let plan = plan_from_choices(&model, &cuts, &picks);
        plan.validate(&model, u64::MAX).unwrap();
        let partitioned = execute_plan_tensors(&model, &plan, &weights, &input).unwrap();
        let diff = reference.max_abs_diff(&partitioned).unwrap();
        prop_assert!(diff < 5e-3, "diverged by {diff}");
    }
}
