//! Integration tests of the SLO-aware stack: RL partitioner, BO baseline,
//! and brute force agree on feasibility and rank as the paper reports.

use gillis::bo::{brute_force, BayesOpt, BoConfig};
use gillis::core::{predict_plan, ExecutionPlan, ForkJoinRuntime};
use gillis::faas::workload::ClosedLoop;
use gillis::faas::{Micros, PlatformProfile};
use gillis::model::zoo;
use gillis::perf::PerfModel;
use gillis::rl::{slo_aware_partition, SloAwareConfig};

fn lambda_perf() -> (PlatformProfile, PerfModel) {
    let platform = PlatformProfile::aws_lambda();
    let perf = PerfModel::analytic(&platform);
    (platform, perf)
}

#[test]
fn all_three_searchers_meet_a_reachable_slo() {
    let (_platform, perf) = lambda_perf();
    let model = zoo::tiny_vgg();
    let single = predict_plan(&model, &ExecutionPlan::single_function(&model), &perf).unwrap();
    // tiny_vgg computes in well under a millisecond, so parallelization can
    // never beat single-function serving (communication costs ~20 ms); an
    // achievable SLO sits at or above the single-function latency.
    let t_max = single.latency_ms * 1.2;

    let sa = slo_aware_partition(
        &model,
        &perf,
        &SloAwareConfig {
            t_max_ms: t_max,
            episodes: 150,
            seed: 1,
            ..SloAwareConfig::default()
        },
    )
    .unwrap();
    assert!(sa.predicted.latency_ms <= t_max);

    let bo = BayesOpt::new(BoConfig {
        t_max_ms: t_max,
        iterations: 25,
        seed: 1,
        ..BoConfig::default()
    })
    .search(&model, &perf)
    .unwrap();

    let bf = brute_force(&model, &perf, t_max, &[2, 4], 2_000_000).unwrap();
    assert!(!bf.truncated);
    assert!(bf.predicted.latency_ms <= t_max);

    // Brute force is optimal: nothing beats it on cost among SLO-compliant
    // plans.
    assert!(
        bf.predicted.billed_ms <= sa.predicted.billed_ms,
        "bf {} vs sa {}",
        bf.predicted.billed_ms,
        sa.predicted.billed_ms
    );
    if bo.meets_slo {
        assert!(bf.predicted.billed_ms <= bo.predicted.billed_ms);
    }
}

#[test]
fn rl_matches_brute_force_on_tiny_model() {
    // Paper Fig 13a: Gillis(SA) learns the same partitioning strategy as
    // brute force on the smallest model. We require it within 15% on cost.
    let (_platform, perf) = lambda_perf();
    let model = zoo::tiny_vgg();
    let single = predict_plan(&model, &ExecutionPlan::single_function(&model), &perf).unwrap();
    let t_max = single.latency_ms * 1.5;

    let bf = brute_force(&model, &perf, t_max, &[2, 4], 2_000_000).unwrap();
    let sa = (0..3)
        .filter_map(|seed| {
            slo_aware_partition(
                &model,
                &perf,
                &SloAwareConfig {
                    t_max_ms: t_max,
                    episodes: 200,
                    seed,
                    ..SloAwareConfig::default()
                },
            )
            .ok()
        })
        .min_by_key(|r| r.predicted.billed_ms)
        .unwrap();
    let ratio = sa.predicted.billed_ms as f64 / bf.predicted.billed_ms as f64;
    assert!(ratio <= 1.15, "sa/bf cost ratio {ratio:.3}");
}

#[test]
fn learned_plan_meets_slo_when_served_under_load() {
    // Close the loop: the predicted-compliant plan must also meet the SLO
    // when actually served to concurrent clients (warm pools, jitter).
    let (platform, perf) = lambda_perf();
    let model = zoo::vgg11();
    let single = predict_plan(&model, &ExecutionPlan::single_function(&model), &perf).unwrap();
    let t_max = single.latency_ms * 0.8;
    let sa = slo_aware_partition(
        &model,
        &perf,
        &SloAwareConfig {
            t_max_ms: t_max,
            episodes: 200,
            seed: 2,
            ..SloAwareConfig::default()
        },
    )
    .unwrap();
    let runtime = ForkJoinRuntime::new(&model, &sa.plan, platform).unwrap();
    let report = runtime
        .serve_workload(ClosedLoop::new(20, 200, Micros::ZERO).unwrap(), 4)
        .unwrap();
    assert!(
        report.latency.mean() <= t_max * 1.05,
        "measured {:.0} ms vs SLO {t_max:.0} ms",
        report.latency.mean()
    );
    assert_eq!(report.cold_starts, 0, "pre-warming should cover the fleet");
}

#[test]
fn tighter_slos_cost_more() {
    // The latency/cost trade-off must be monotone: tightening the SLO never
    // makes serving cheaper.
    let (_platform, perf) = lambda_perf();
    let model = zoo::vgg11();
    let single = predict_plan(&model, &ExecutionPlan::single_function(&model), &perf).unwrap();
    let mut costs = Vec::new();
    for factor in [0.7, 1.2, 3.0] {
        let sa = slo_aware_partition(
            &model,
            &perf,
            &SloAwareConfig {
                t_max_ms: single.latency_ms * factor,
                episodes: 150,
                seed: 5,
                ..SloAwareConfig::default()
            },
        )
        .unwrap();
        costs.push(sa.predicted.billed_ms);
    }
    assert!(
        costs[0] >= costs[1] && costs[1] >= costs[2],
        "costs not monotone: {costs:?}"
    );
}
