//! Integration tests of the `gillis` CLI binary.

use std::process::Command;

fn gillis(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_gillis"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn models_lists_the_catalog() {
    let out = gillis(&["models"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    for name in ["vgg11", "wrn-50-4", "rnn-9", "tiny-vgg", "mobilenet"] {
        assert!(stdout.contains(name), "missing {name} in:\n{stdout}");
    }
}

#[test]
fn info_prints_layer_summary() {
    let out = gillis(&["info", "--model", "tiny-vgg"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("tiny-vgg"));
    assert!(stdout.contains("conv-like"));
    assert!(stdout.contains("dense"));
}

#[test]
fn plan_predict_serve_roundtrip() {
    let dir = std::env::temp_dir().join(format!("gillis-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let plan_path = dir.join("plan.txt");
    let plan_str = plan_path.to_str().unwrap();

    let out = gillis(&["plan", "--model", "tiny-vgg", "--out", plan_str]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&plan_path).unwrap();
    assert!(text.starts_with("gillis-plan v1"));

    let out = gillis(&["predict", "--model", "tiny-vgg", "--plan", plan_str]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("latency"));
    assert!(stdout.contains("billed"));

    let out = gillis(&[
        "serve",
        "--model",
        "tiny-vgg",
        "--plan",
        plan_str,
        "--clients",
        "4",
        "--queries",
        "20",
    ]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("served 20 queries"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn describe_names_groups() {
    let out = gillis(&["describe", "--model", "tiny-vgg"]);
    assert!(out.status.success());
    assert!(String::from_utf8(out.stdout).unwrap().contains("group"));
}

#[test]
fn errors_are_reported_cleanly() {
    let out = gillis(&["plan", "--model", "not-a-model"]);
    assert!(!out.status.success());
    assert!(String::from_utf8(out.stderr)
        .unwrap()
        .contains("unknown model"));

    let out = gillis(&["frobnicate", "--model", "tiny-vgg"]);
    assert!(!out.status.success());

    let out = gillis(&[]);
    assert!(!out.status.success());
    assert!(String::from_utf8(out.stderr).unwrap().contains("usage"));

    let out = gillis(&["plan", "--model", "tiny-vgg", "--platform", "azure"]);
    assert!(!out.status.success());
    assert!(String::from_utf8(out.stderr)
        .unwrap()
        .contains("unknown platform"));
}
