//! Offline stand-in for the `rand` crate (see `vendor/README.md`).
//!
//! Implements the exact API subset the workspace uses — `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and the `RngExt` sampling methods
//! (`random`, `random_bool`, `random_range`) — on top of a SplitMix64
//! generator. SplitMix64 passes the statistical checks our simulations rely
//! on (moment-matching tests against analytic ExGaussian/exponential
//! distributions) and is fully deterministic per seed, which the
//! reproduction requires anyway.

#![forbid(unsafe_code)]

use core::ops::Range;

/// Trait providing the sampling surface of rand 0.10's `Rng`.
pub trait RngExt {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Sample a value of `T` from the uniform "standard" distribution.
    fn random<T: FromRandom>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }

    /// Uniform sample from `range`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }
}

/// Types constructible from uniform random bits (stand-in for sampling
/// `StandardUniform`).
pub trait FromRandom: Sized {
    fn from_rng<R: RngExt + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! from_random_int {
    ($($t:ty),*) => {$(
        impl FromRandom for $t {
            fn from_rng<R: RngExt + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
from_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl FromRandom for bool {
    fn from_rng<R: RngExt + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl FromRandom for f64 {
    fn from_rng<R: RngExt + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRandom for f32 {
    fn from_rng<R: RngExt + ?Sized>(rng: &mut R) -> Self {
        // 24 uniform mantissa bits -> [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that can produce a uniform sample (stand-in for
/// `rand::distr::uniform::SampleRange`).
pub trait SampleRange<T> {
    fn sample_from<R: RngExt + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngExt + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngExt + ?Sized>(self, rng: &mut R) -> $t {
                let unit: $t = rng.random();
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}
sample_range_float!(f32, f64);

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngExt, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngExt for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Scramble the seed once so small seeds (0, 1, 2...) do not start
            // in neighbouring states.
            let mut rng = StdRng { state: seed };
            let _ = rng.next_u64();
            rng
        }
    }
}

pub use rngs::StdRng;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn range_sampling_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x = rng.random_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&y));
            let z = rng.random_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&z));
        }
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        let frac = hits as f64 / 10_000.0;
        assert!((frac - 0.25).abs() < 0.02, "frac {frac} far from 0.25");
    }
}
