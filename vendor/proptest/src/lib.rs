//! Offline stand-in for `proptest` (see `vendor/README.md`).
//!
//! A deterministic mini property-testing runner implementing the API subset
//! the workspace's property tests use: the `proptest!` macro with `arg in
//! strategy` bindings, `prop_assert!` / `prop_assert_eq!` / `prop_assume!`,
//! range and tuple strategies, `any::<T>()`, `Strategy::prop_map`, and
//! `prop::collection::vec`. Differences from real proptest: no shrinking
//! (failures report the generated case via the assertion message), and a
//! fixed per-test seed derived from the test name so runs are reproducible.

#![forbid(unsafe_code)]

use core::marker::PhantomData;
use core::ops::{Range, RangeInclusive};

/// Number of accepted cases each property test must pass.
pub const CASES: u32 = 64;
/// Attempt cap so heavy `prop_assume!` rejection cannot loop forever.
pub const MAX_ATTEMPTS: u32 = CASES * 32;

/// Per-test configuration; only `cases` is honoured by this shim.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases: cases.max(1) }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: CASES }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; try another case.
    Reject,
    /// An assertion failed; the whole test fails.
    Fail(String),
}

pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic SplitMix64 source for strategy generation.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed derived from the test name (FNV-1a) so every test gets a fixed,
    /// distinct stream.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    pub fn usize_below(&mut self, bound: usize) -> usize {
        if bound == 0 {
            0
        } else {
            (self.next_u64() % bound as u64) as usize
        }
    }
}

/// Value generator. Stand-in for `proptest::strategy::Strategy`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = hi.wrapping_sub(lo) as u64 + 1;
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                self.start + rng.unit_f64() as $t * (self.end - self.start)
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($($S:ident . $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(S0.0);
tuple_strategy!(S0.0, S1.1);
tuple_strategy!(S0.0, S1.1, S2.2);
tuple_strategy!(S0.0, S1.1, S2.2, S3.3);
tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4);
tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5);

/// Types with a canonical "whole domain" strategy, via [`any`].
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self { rng.next_u64() as $t }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64() * 2e3 - 1e3
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.unit_f64() * 2e3 - 1e3) as f32
    }
}

/// Strategy over the whole domain of `T`.
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

pub mod collection {
    use super::{Strategy, TestRng};
    use core::ops::Range;

    /// Length specification for [`vec`]: an exact size or a half-open range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.lo + rng.usize_below(self.size.hi - self.size.lo);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest,
        ProptestConfig, Strategy};
    /// Namespace alias so `prop::collection::vec(...)` resolves.
    pub use crate as prop;
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}` ({} == {})",
            left,
            right,
            stringify!($left),
            stringify!($right)
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left == right, $($fmt)+);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` != `{:?}` ({} != {})",
            left,
            right,
            stringify!($left),
            stringify!($right)
        );
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cases = (($config).cases); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cases = ($crate::CASES); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cases = ($cases:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),* $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut rng = $crate::TestRng::deterministic(stringify!($name));
                let target_cases: u32 = $cases;
                let max_attempts: u32 = target_cases.saturating_mul(32);
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                while accepted < target_cases && attempts < max_attempts {
                    attempts += 1;
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)*
                    let outcome: $crate::TestCaseResult = (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    match outcome {
                        ::core::result::Result::Ok(()) => accepted += 1,
                        ::core::result::Result::Err($crate::TestCaseError::Reject) => {}
                        ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("property `{}` failed on case {}: {}",
                                stringify!($name), attempts, msg);
                        }
                    }
                }
                assert!(
                    accepted > 0,
                    "property `{}`: every generated case was rejected by prop_assume!",
                    stringify!($name)
                );
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3usize..10, y in -4i64..=4, f in 0.25f64..0.75) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-4..=4).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn tuples_and_vec_compose(
            pairs in prop::collection::vec((0u64..100, any::<bool>()), 1..20),
            exact in prop::collection::vec(any::<u8>(), 7),
        ) {
            prop_assert!(!pairs.is_empty() && pairs.len() < 20);
            prop_assert_eq!(exact.len(), 7);
            for (v, _) in &pairs {
                prop_assert!(*v < 100);
            }
        }

        #[test]
        fn prop_map_applies(double in (1usize..50).prop_map(|n| n * 2)) {
            prop_assert_eq!(double % 2, 0);
            prop_assert!(double >= 2 && double < 100);
        }

        #[test]
        fn assume_rejects_without_failing(n in 0usize..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn deterministic_rng_is_stable_per_name() {
        let mut a = crate::TestRng::deterministic("t");
        let mut b = crate::TestRng::deterministic("t");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::deterministic("u");
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
