//! Offline stand-in for `serde_derive`.
//!
//! The workspace builds in air-gapped environments where crates.io is not
//! reachable, so the real serde stack is replaced by a minimal local shim
//! (see `vendor/README.md`). No code in this repository serializes anything
//! yet — the derives exist purely so type definitions can keep their
//! `#[derive(Serialize, Deserialize)]` annotations, ready for the real serde
//! to be swapped back in. These macros therefore expand to nothing.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
