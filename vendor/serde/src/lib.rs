//! Offline stand-in for `serde` (see `vendor/README.md`).
//!
//! Exposes just enough surface for `use serde::{Deserialize, Serialize}` +
//! `#[derive(Serialize, Deserialize)]` to compile: marker traits plus no-op
//! derive macros. Swap the workspace dependency back to the real crate when
//! a registry is reachable; no call sites need to change.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize<'de>`.
pub trait Deserialize {}
