//! Offline stand-in for `criterion` (see `vendor/README.md`).
//!
//! Implements the subset of the criterion API the bench suite uses
//! (`Criterion`, `benchmark_group`, `bench_function`, `Bencher::iter`,
//! `criterion_group!`, `criterion_main!`) as a small wall-clock harness:
//! each benchmark is calibrated to a per-sample time budget, timed over a
//! fixed number of samples, and the median ns/iter is printed. No
//! statistics, plots, or CLI — but the numbers are robust enough to track
//! the perf trajectory in `BENCH_*.json`.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock spent per sample once calibrated.
const SAMPLE_BUDGET: Duration = Duration::from_millis(25);
/// Cap on total time spent in a single benchmark.
const BENCH_BUDGET: Duration = Duration::from_secs(3);

/// One timed measurement: `iters` runs of the routine in `elapsed`.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `routine` `self.iters` times, recording total elapsed time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Result of one benchmark: median ns per iteration over the samples.
#[derive(Clone, Debug)]
pub struct Measurement {
    pub id: String,
    pub ns_per_iter: f64,
    pub samples: usize,
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, f: &mut F) -> Measurement {
    // Calibration pass: one iteration to estimate cost.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter_ns = (b.elapsed.as_nanos().max(1)) as f64 / b.iters as f64;
    let iters_per_sample = (SAMPLE_BUDGET.as_nanos() as f64 / per_iter_ns)
        .clamp(1.0, 1e9)
        .round() as u64;

    let deadline = Instant::now() + BENCH_BUDGET;
    let mut samples: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size.max(1) {
        let mut b = Bencher {
            iters: iters_per_sample,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed.as_nanos() as f64 / b.iters as f64);
        if Instant::now() >= deadline {
            break;
        }
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];
    let m = Measurement {
        id: id.to_string(),
        ns_per_iter: median,
        samples: samples.len(),
    };
    println!(
        "{:<44} time: {:>14.1} ns/iter  ({} samples x {} iters)",
        m.id, m.ns_per_iter, m.samples, iters_per_sample
    );
    m
}

/// Benchmark driver standing in for `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
    /// All measurements taken through this driver, for callers (like the
    /// `bench_report` binary) that want machine-readable results.
    pub measurements: Vec<Measurement>,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 10,
            measurements: Vec::new(),
        }
    }
}

impl Criterion {
    pub fn bench_function<S: Into<String>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        mut f: F,
    ) -> &mut Self {
        let m = run_bench(&id.into(), self.sample_size, &mut f);
        self.measurements.push(m);
        self
    }

    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            criterion: self,
        }
    }
}

/// Named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<S: Into<String>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        mut f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into());
        let m = run_bench(&id, self.sample_size, &mut f);
        self.criterion.measurements.push(m);
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_measurement() {
        let mut c = Criterion::default();
        c.bench_function("noop_sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        assert_eq!(c.measurements.len(), 1);
        assert!(c.measurements[0].ns_per_iter > 0.0);
    }

    #[test]
    fn group_prefixes_ids() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("grp");
            g.sample_size(3);
            g.bench_function("case", |b| b.iter(|| 1 + 1));
            g.finish();
        }
        assert_eq!(c.measurements[0].id, "grp/case");
    }
}
