//! Offline stand-in for `crossbeam` (see `vendor/README.md`).
//!
//! Since Rust 1.63 the standard library's `std::thread::scope` provides the
//! structured-concurrency guarantee crossbeam's scoped threads pioneered
//! (borrowed data may be captured because all spawned threads join before
//! `scope` returns), so this shim simply re-exports it under the crossbeam
//! paths the workspace uses.

#![forbid(unsafe_code)]

pub mod thread {
    pub use std::thread::{scope, Scope, ScopedJoinHandle};
}

pub use thread::scope;

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_can_borrow_stack_data() {
        let data = vec![1u64, 2, 3, 4];
        let mut partial = [0u64; 2];
        let (lo, hi) = partial.split_at_mut(1);
        super::scope(|s| {
            s.spawn(|| lo[0] = data[..2].iter().sum());
            s.spawn(|| hi[0] = data[2..].iter().sum());
        });
        assert_eq!(partial, [3, 7]);
    }
}
