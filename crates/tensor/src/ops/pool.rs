//! Max/average pooling over `CHW` tensors.

use serde::{Deserialize, Serialize};

use super::conv::{conv2d_output_hw, Conv2dParams};
use super::Padding;
use crate::error::TensorError;
use crate::shape::Shape;
use crate::tensor::Tensor;
use crate::Result;

/// Parameters of a 2-D pooling window sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Pool2dParams {
    /// Window height and width.
    pub kernel: (usize, usize),
    /// Vertical and horizontal stride.
    pub stride: (usize, usize),
    /// Per-side padding. Max pooling pads with `-inf`; average pooling pads
    /// with zeros that *do not* count toward the divisor (the common
    /// `count_include_pad = false` convention).
    pub padding: Padding,
}

impl Pool2dParams {
    /// Square window with equal stride and symmetric padding.
    pub fn square(kernel: usize, stride: usize, padding: usize) -> Self {
        Pool2dParams {
            kernel: (kernel, kernel),
            stride: (stride, stride),
            padding: Padding::symmetric(padding),
        }
    }

    fn as_conv(&self) -> Conv2dParams {
        Conv2dParams {
            kernel: self.kernel,
            stride: self.stride,
            padding: self.padding,
        }
    }
}

fn pool2d(input: &Tensor, params: &Pool2dParams, is_max: bool) -> Result<Tensor> {
    let dims = input.shape().dims();
    if dims.len() != 3 {
        return Err(TensorError::InvalidArgument(format!(
            "pool2d input must be CHW, got rank {}",
            dims.len()
        )));
    }
    let (c, in_h, in_w) = (dims[0], dims[1], dims[2]);
    let (out_h, out_w) = conv2d_output_hw((in_h, in_w), &params.as_conv()).ok_or_else(|| {
        TensorError::InvalidArgument(format!(
            "padded input ({in_h}, {in_w}) smaller than pooling window {:?}",
            params.kernel
        ))
    })?;
    let mut out = vec![0.0f32; c * out_h * out_w];
    pool2d_into(
        input.data(),
        c,
        (in_h, in_w),
        (out_h, out_w),
        params,
        is_max,
        &mut out,
    );
    Tensor::from_vec(Shape::new(vec![c, out_h, out_w]), out)
}

/// Pooling hot loop writing into a caller-owned buffer — the
/// compiled-partition hot path. Every output position is written.
///
/// Output positions whose windows lie fully inside the input — all of them
/// when there is no padding — take a tight unchecked path with a fixed
/// divisor; only the border bands pay per-tap bounds checks. Taps are visited
/// in the same (ky, kx) order on both paths, so results are identical to the
/// fully-checked loop.
///
/// # Panics
///
/// Panics if `data` or `out` is inconsistent with the dimensions.
fn pool2d_into(
    data: &[f32],
    c: usize,
    (in_h, in_w): (usize, usize),
    (out_h, out_w): (usize, usize),
    params: &Pool2dParams,
    is_max: bool,
    out: &mut [f32],
) {
    let (kh, kw) = params.kernel;
    let (sh, sw) = params.stride;
    let (pt, pl) = (params.padding.top, params.padding.left);
    let plane = in_h * in_w;
    let out_plane = out_h * out_w;
    assert_eq!(data.len(), c * plane, "input must be CHW");
    assert_eq!(out.len(), c * out_plane, "out must be c*out_h*out_w");

    // Output rows/cols whose windows never touch the padding.
    let oy_lo = pt.div_ceil(sh).min(out_h);
    let oy_hi = if in_h + pt >= kh {
        ((in_h + pt - kh) / sh + 1).clamp(oy_lo, out_h)
    } else {
        oy_lo
    };
    let ox_lo = pl.div_ceil(sw).min(out_w);
    let ox_hi = if in_w + pl >= kw {
        ((in_w + pl - kw) / sw + 1).clamp(ox_lo, out_w)
    } else {
        ox_lo
    };

    for ch in 0..c {
        let base = ch * plane;
        let out_base = ch * out_plane;
        let edge = |oy: usize, ox: usize| -> f32 {
            let iy0 = (oy * sh) as isize - pt as isize;
            let ix0 = (ox * sw) as isize - pl as isize;
            let mut acc = if is_max { f32::NEG_INFINITY } else { 0.0 };
            let mut count = 0usize;
            for ky in 0..kh {
                let iy = iy0 + ky as isize;
                if iy < 0 || iy >= in_h as isize {
                    continue;
                }
                let row = base + iy as usize * in_w;
                for kx in 0..kw {
                    let ix = ix0 + kx as isize;
                    if ix < 0 || ix >= in_w as isize {
                        continue;
                    }
                    let v = data[row + ix as usize];
                    if is_max {
                        acc = acc.max(v);
                    } else {
                        acc += v;
                    }
                    count += 1;
                }
            }
            if is_max {
                acc
            } else if count > 0 {
                acc / count as f32
            } else {
                0.0
            }
        };
        for oy in (0..oy_lo).chain(oy_hi..out_h) {
            for ox in 0..out_w {
                out[out_base + oy * out_w + ox] = edge(oy, ox);
            }
        }
        let window = (kh * kw) as f32;
        for oy in oy_lo..oy_hi {
            for ox in (0..ox_lo).chain(ox_hi..out_w) {
                out[out_base + oy * out_w + ox] = edge(oy, ox);
            }
            let iy0 = oy * sh - pt;
            let out_row = out_base + oy * out_w;
            for ox in ox_lo..ox_hi {
                let ix0 = ox * sw - pl;
                let mut acc = if is_max { f32::NEG_INFINITY } else { 0.0 };
                for ky in 0..kh {
                    let row = base + (iy0 + ky) * in_w + ix0;
                    let win = &data[row..row + kw];
                    if is_max {
                        for &v in win {
                            acc = acc.max(v);
                        }
                    } else {
                        for &v in win {
                            acc += v;
                        }
                    }
                }
                out[out_row + ox] = if is_max { acc } else { acc / window };
            }
        }
    }
}

/// Max pooling over a `CHW` tensor.
///
/// # Errors
///
/// Returns [`TensorError::InvalidArgument`] for non-`CHW` inputs or windows
/// larger than the padded input.
pub fn max_pool2d(input: &Tensor, params: &Pool2dParams) -> Result<Tensor> {
    pool2d(input, params, true)
}

/// Average pooling over a `CHW` tensor (padding excluded from the divisor).
///
/// # Errors
///
/// Returns [`TensorError::InvalidArgument`] for non-`CHW` inputs or windows
/// larger than the padded input.
pub fn avg_pool2d(input: &Tensor, params: &Pool2dParams) -> Result<Tensor> {
    pool2d(input, params, false)
}

/// Max pooling over raw buffers writing into a caller-owned output.
/// Bit-identical to [`max_pool2d`].
///
/// # Panics
///
/// Panics if buffer lengths are inconsistent with the dimensions.
pub fn max_pool2d_into(
    data: &[f32],
    c: usize,
    in_hw: (usize, usize),
    out_hw: (usize, usize),
    params: &Pool2dParams,
    out: &mut [f32],
) {
    pool2d_into(data, c, in_hw, out_hw, params, true, out);
}

/// Average pooling over raw buffers writing into a caller-owned output.
/// Bit-identical to [`avg_pool2d`].
///
/// # Panics
///
/// Panics if buffer lengths are inconsistent with the dimensions.
pub fn avg_pool2d_into(
    data: &[f32],
    c: usize,
    in_hw: (usize, usize),
    out_hw: (usize, usize),
    params: &Pool2dParams,
    out: &mut [f32],
) {
    pool2d_into(data, c, in_hw, out_hw, params, false, out);
}

/// Global average pooling: reduces `CHW` to `[C]`.
///
/// # Errors
///
/// Returns [`TensorError::InvalidArgument`] for non-`CHW` inputs.
pub fn global_avg_pool(input: &Tensor) -> Result<Tensor> {
    let dims = input.shape().dims();
    if dims.len() != 3 {
        return Err(TensorError::InvalidArgument(format!(
            "global_avg_pool input must be CHW, got rank {}",
            dims.len()
        )));
    }
    let (c, h, w) = (dims[0], dims[1], dims[2]);
    let plane = h * w;
    if plane == 0 {
        return Err(TensorError::InvalidArgument(
            "global_avg_pool over empty spatial plane".into(),
        ));
    }
    let mut out = vec![0.0f32; c];
    global_avg_pool_into(input.data(), c, plane, &mut out);
    Tensor::from_vec(Shape::new(vec![c]), out)
}

/// Global average pooling over raw buffers writing into a caller-owned
/// output of length `c`. Bit-identical to [`global_avg_pool`].
///
/// # Panics
///
/// Panics if buffer lengths are inconsistent with the dimensions or the
/// spatial plane is empty.
pub fn global_avg_pool_into(data: &[f32], c: usize, plane: usize, out: &mut [f32]) {
    assert!(plane > 0, "global_avg_pool over empty spatial plane");
    assert_eq!(data.len(), c * plane, "input must be CHW");
    assert_eq!(out.len(), c, "out must be [c]");
    for (ch, o) in out.iter_mut().enumerate() {
        *o = data[ch * plane..(ch + 1) * plane].iter().sum::<f32>() / plane as f32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_pool_2x2() {
        let input = Tensor::from_vec(
            Shape::new(vec![1, 2, 4]),
            vec![1.0, 3.0, 2.0, 4.0, 5.0, 0.0, -1.0, 9.0],
        )
        .unwrap();
        let out = max_pool2d(&input, &Pool2dParams::square(2, 2, 0)).unwrap();
        assert_eq!(out.shape().dims(), &[1, 1, 2]);
        assert_eq!(out.data(), &[5.0, 9.0]);
    }

    #[test]
    fn avg_pool_excludes_padding_from_divisor() {
        let input = Tensor::full(Shape::new(vec![1, 2, 2]), 4.0);
        // 3x3 window with padding 1 over a 2x2 input of all 4s: each window
        // covers exactly the 4 real elements at stride 2 start (0,0).
        let out = avg_pool2d(&input, &Pool2dParams::square(3, 2, 1)).unwrap();
        assert_eq!(out.shape().dims(), &[1, 1, 1]);
        assert_eq!(out.data(), &[4.0]);
    }

    #[test]
    fn global_avg_pool_means_each_channel() {
        let input =
            Tensor::from_vec(Shape::new(vec![2, 1, 2]), vec![1.0, 3.0, 10.0, 20.0]).unwrap();
        let out = global_avg_pool(&input).unwrap();
        assert_eq!(out.shape().dims(), &[2]);
        assert_eq!(out.data(), &[2.0, 15.0]);
    }

    #[test]
    fn pool_spatial_split_equivalence() {
        // Pooling a full input equals pooling halo-extended halves stitched,
        // for a 2x2/2 window (no halo needed at even split points).
        let input = Tensor::from_fn(Shape::new(vec![3, 8, 6]), |i| ((i * 37) % 11) as f32);
        let params = Pool2dParams::square(2, 2, 0);
        let full = max_pool2d(&input, &params).unwrap();
        let top = input.slice(1, 0..4).unwrap();
        let bot = input.slice(1, 4..8).unwrap();
        let stitched = Tensor::concat(
            &[
                max_pool2d(&top, &params).unwrap(),
                max_pool2d(&bot, &params).unwrap(),
            ],
            1,
        )
        .unwrap();
        assert_eq!(full, stitched);
    }

    #[test]
    fn rejects_bad_rank_and_oversize_window() {
        let flat = Tensor::zeros(Shape::new(vec![4]));
        assert!(max_pool2d(&flat, &Pool2dParams::square(2, 2, 0)).is_err());
        assert!(global_avg_pool(&flat).is_err());
        let tiny = Tensor::zeros(Shape::new(vec![1, 2, 2]));
        assert!(avg_pool2d(&tiny, &Pool2dParams::square(5, 1, 0)).is_err());
    }
}
