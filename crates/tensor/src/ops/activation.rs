//! Element-wise activations.
//!
//! Element-wise ops are trivially partitionable along every dimension, which
//! is why Gillis folds them into the preceding weight-intensive layer.

use crate::error::TensorError;
use crate::tensor::Tensor;
use crate::Result;

/// Rectified linear unit, element-wise.
pub fn relu(input: &Tensor) -> Tensor {
    input.map(|x| x.max(0.0))
}

/// Rectified linear unit over raw buffers writing into a caller-owned
/// output — the compiled-partition hot path. Bit-identical to [`relu`].
///
/// # Panics
///
/// Panics if `out.len() != x.len()`.
pub fn relu_into(x: &[f32], out: &mut [f32]) {
    assert_eq!(out.len(), x.len(), "out must match input");
    for (o, &v) in out.iter_mut().zip(x.iter()) {
        *o = v.max(0.0);
    }
}

/// Logistic sigmoid, element-wise.
pub fn sigmoid(input: &Tensor) -> Tensor {
    input.map(|x| 1.0 / (1.0 + (-x).exp()))
}

/// Hyperbolic tangent, element-wise.
pub fn tanh(input: &Tensor) -> Tensor {
    input.map(f32::tanh)
}

/// Numerically stable softmax over a rank-1 tensor.
///
/// # Errors
///
/// Returns [`TensorError::InvalidArgument`] if the input is not rank 1 or is
/// empty.
pub fn softmax(input: &Tensor) -> Result<Tensor> {
    if input.shape().rank() != 1 || input.shape().is_empty() {
        return Err(TensorError::InvalidArgument(
            "softmax expects a non-empty rank-1 tensor".into(),
        ));
    }
    let mut out = vec![0.0f32; input.shape().len()];
    softmax_into(input.data(), &mut out);
    Tensor::from_vec(input.shape().clone(), out)
}

/// Numerically stable softmax over raw buffers writing into a caller-owned
/// output — the compiled-partition hot path. Bit-identical to [`softmax`]:
/// exponentials are written into `out` first, then normalized in place with
/// the same summation order.
///
/// # Panics
///
/// Panics if `x` is empty or `out.len() != x.len()`.
pub fn softmax_into(x: &[f32], out: &mut [f32]) {
    assert!(!x.is_empty(), "softmax over empty input");
    assert_eq!(out.len(), x.len(), "out must match input");
    let max = x.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    for (o, &v) in out.iter_mut().zip(x.iter()) {
        *o = (v - max).exp();
    }
    let sum: f32 = out.iter().sum();
    for o in out.iter_mut() {
        *o /= sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::Shape;

    #[test]
    fn relu_clamps_negatives() {
        let t = Tensor::from_vec(Shape::new(vec![4]), vec![-1.0, 0.0, 2.0, -0.5]).unwrap();
        assert_eq!(relu(&t).data(), &[0.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn sigmoid_at_zero_is_half() {
        let t = Tensor::zeros(Shape::new(vec![2]));
        let s = sigmoid(&t);
        assert!((s.data()[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn tanh_is_odd() {
        let t = Tensor::from_vec(Shape::new(vec![2]), vec![0.7, -0.7]).unwrap();
        let o = tanh(&t);
        assert!((o.data()[0] + o.data()[1]).abs() < 1e-6);
    }

    #[test]
    fn softmax_sums_to_one_and_orders() {
        let t = Tensor::from_vec(Shape::new(vec![3]), vec![1.0, 3.0, 2.0]).unwrap();
        let s = softmax(&t).unwrap();
        let sum: f32 = s.data().iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(s.data()[1] > s.data()[2] && s.data()[2] > s.data()[0]);
    }

    #[test]
    fn softmax_is_stable_for_large_inputs() {
        let t = Tensor::from_vec(Shape::new(vec![2]), vec![1000.0, 1000.0]).unwrap();
        let s = softmax(&t).unwrap();
        assert!((s.data()[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn softmax_rejects_bad_rank() {
        assert!(softmax(&Tensor::zeros(Shape::new(vec![2, 2]))).is_err());
    }
}
