//! Dense (fully connected) layers.

use crate::error::TensorError;
use crate::gemm;
use crate::shape::Shape;
use crate::tensor::Tensor;
use crate::Result;

/// Dense layer: `y = W·x + b` with `W` of shape `[out, in]`, `x` of shape
/// `[in]`, optional `b` of shape `[out]`.
///
/// Output-unit partitioning slices `W` (and `b`) along dimension 0; each
/// worker needs the full input vector, mirroring how Gillis partitions fully
/// connected layers (every output neuron depends on the entire input).
///
/// # Errors
///
/// Returns [`TensorError::InvalidArgument`] for rank mismatches and
/// [`TensorError::ShapeMismatch`] for inconsistent sizes.
pub fn dense(input: &Tensor, weight: &Tensor, bias: Option<&Tensor>) -> Result<Tensor> {
    let x_dims = input.shape().dims();
    let w_dims = weight.shape().dims();
    if x_dims.len() != 1 || w_dims.len() != 2 {
        return Err(TensorError::InvalidArgument(format!(
            "dense expects x rank 1 and W rank 2, got {} and {}",
            x_dims.len(),
            w_dims.len()
        )));
    }
    let (out_n, in_n) = (w_dims[0], w_dims[1]);
    if x_dims[0] != in_n {
        return Err(TensorError::ShapeMismatch {
            expected: Shape::new(vec![in_n]),
            actual: input.shape().clone(),
        });
    }
    if let Some(b) = bias {
        if b.shape().dims() != [out_n] {
            return Err(TensorError::ShapeMismatch {
                expected: Shape::new(vec![out_n]),
                actual: b.shape().clone(),
            });
        }
    }
    // Bias pre-initializes the output, then one multi-lane gemv.
    let mut out = vec![0.0f32; out_n];
    dense_into(
        weight.data(),
        input.data(),
        bias.map(|b| b.data()),
        &mut out,
    );
    Tensor::from_vec(Shape::new(vec![out_n]), out)
}

/// Dense layer over raw buffers writing into a caller-owned output — the
/// compiled-partition hot path. `w` is `[out, in]` row-major, `x` is `[in]`,
/// `bias` (if present) is `[out]`. Bit-identical to [`dense`].
///
/// # Panics
///
/// Panics if buffer lengths are inconsistent.
pub fn dense_into(w: &[f32], x: &[f32], bias: Option<&[f32]>, out: &mut [f32]) {
    let out_n = out.len();
    let in_n = x.len();
    assert_eq!(w.len(), out_n * in_n, "weight must be [out, in]");
    match bias {
        Some(b) => {
            assert_eq!(b.len(), out_n, "bias must be [out]");
            out.copy_from_slice(b);
        }
        None => out.fill(0.0),
    }
    gemm::gemv(out_n, in_n, w, x, out);
}

/// Batched dense layer over raw buffers: `batch` input vectors laid out
/// contiguously in `xs` (`batch × in`), outputs written contiguously into
/// `outs` (`batch × out`). All batch items share one traversal of the weight
/// matrix: each row of `W` is streamed once and dotted against every input
/// ([`gemm::gemv_multi`]), instead of `batch` full passes over `W`.
///
/// Per-output rounding is bit-identical to calling [`dense_into`] once per
/// item for any thread count: the accumulator for `(row, item)` is seeded
/// with the same bias value and receives exactly one `row_dot` over the same
/// operands in both paths. `batch == 1` delegates to [`dense_into`] directly
/// (no widened scratch is touched). The widened accumulator lives in
/// per-thread scratch, so warmed threads allocate nothing for batches up to
/// the largest size seen.
///
/// # Panics
///
/// Panics if buffer lengths are inconsistent with `batch`.
pub fn dense_multi_into(
    w: &[f32],
    xs: &[f32],
    bias: Option<&[f32]>,
    outs: &mut [f32],
    batch: usize,
) {
    if batch == 0 {
        return;
    }
    assert_eq!(outs.len() % batch, 0, "outs must be batch × out");
    assert_eq!(xs.len() % batch, 0, "xs must be batch × in");
    let out_n = outs.len() / batch;
    let in_n = xs.len() / batch;
    assert_eq!(w.len(), out_n * in_n, "weight must be [out, in]");
    if batch == 1 {
        dense_into(w, xs, bias, outs);
        return;
    }
    // Widened accumulator, row-major `out_n × batch`, seeded with the bias
    // exactly like the sequential path seeds each item's output.
    let mut acc = crate::scratch::take(crate::scratch::Site::BatchGemv);
    acc.clear();
    acc.resize(out_n * batch, 0.0);
    if let Some(b) = bias {
        assert_eq!(b.len(), out_n, "bias must be [out]");
        for (row, &bv) in acc.chunks_exact_mut(batch).zip(b.iter()) {
            row.fill(bv);
        }
    }
    gemm::gemv_multi(out_n, in_n, w, xs, &mut acc, batch);
    for (i, out) in outs.chunks_exact_mut(out_n).enumerate() {
        for (r, o) in out.iter_mut().enumerate() {
            *o = acc[r * batch + i];
        }
    }
    crate::scratch::put(crate::scratch::Site::BatchGemv, acc);
}

/// Reference row-wise dot product the gemv path is validated against.
#[cfg(test)]
pub(crate) fn dense_naive(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
) -> Result<Tensor> {
    let w_dims = weight.shape().dims();
    let (out_n, in_n) = (w_dims[0], w_dims[1]);
    let x = input.data();
    let w = weight.data();
    let mut out = Vec::with_capacity(out_n);
    for o in 0..out_n {
        let row = &w[o * in_n..(o + 1) * in_n];
        let mut acc = bias.map(|b| b.data()[o]).unwrap_or(0.0);
        for (wi, xi) in row.iter().zip(x.iter()) {
            acc += wi * xi;
        }
        out.push(acc);
    }
    Tensor::from_vec(Shape::new(vec![out_n]), out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn t(shape: Vec<usize>, data: Vec<f32>) -> Tensor {
        Tensor::from_vec(Shape::new(shape), data).unwrap()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn gemv_path_matches_naive_reference(
            (out_n, in_n) in (1usize..12, 1usize..80),
            seed in 0u32..1000,
        ) {
            let pseudo = |i: usize, s: u32| {
                ((i as u32 ^ s).wrapping_mul(2654435761) % 2001) as f32 * 1e-3 - 1.0
            };
            let x = Tensor::from_fn(Shape::new(vec![in_n]), |i| pseudo(i, seed));
            let w = Tensor::from_fn(Shape::new(vec![out_n, in_n]), |i| pseudo(i, seed ^ 0xabc));
            let b = Tensor::from_fn(Shape::new(vec![out_n]), |i| pseudo(i, seed ^ 0x5));
            let fast = dense(&x, &w, Some(&b)).unwrap();
            let naive = dense_naive(&x, &w, Some(&b)).unwrap();
            // The multi-lane dot reassociates the sum, so allow f32 rounding.
            prop_assert!(fast.max_abs_diff(&naive).unwrap() < 1e-4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn batched_dense_bit_identical_to_sequential(
            (out_n, in_n) in (1usize..20, 1usize..70),
            batch_sel in 0usize..3,
            seed in 0u32..1000,
        ) {
            let batch = [2usize, 3, 8][batch_sel];
            let pseudo = |i: usize, s: u32| {
                ((i as u32 ^ s).wrapping_mul(2654435761) % 2001) as f32 * 1e-3 - 1.0
            };
            let w: Vec<f32> = (0..out_n * in_n).map(|i| pseudo(i, seed)).collect();
            let b: Vec<f32> = (0..out_n).map(|i| pseudo(i, seed ^ 0x5)).collect();
            let xs: Vec<f32> = (0..batch * in_n).map(|i| pseudo(i, seed ^ 0x91)).collect();
            let mut seq = vec![0.0f32; batch * out_n];
            for (x, out) in xs.chunks(in_n).zip(seq.chunks_mut(out_n)) {
                dense_into(&w, x, Some(&b), out);
            }
            let mut batched = vec![0.0f32; batch * out_n];
            dense_multi_into(&w, &xs, Some(&b), &mut batched, batch);
            for (s, m) in seq.iter().zip(batched.iter()) {
                prop_assert_eq!(s.to_bits(), m.to_bits());
            }
        }
    }

    #[test]
    fn batch_one_multi_matches_dense_into_exactly() {
        let w: Vec<f32> = (0..6 * 5).map(|i| (i as f32 * 0.7).sin()).collect();
        let b: Vec<f32> = (0..6).map(|i| i as f32 * 0.25).collect();
        let x: Vec<f32> = (0..5).map(|i| (i as f32).cos()).collect();
        let mut seq = vec![0.0f32; 6];
        dense_into(&w, &x, Some(&b), &mut seq);
        let mut one = vec![0.0f32; 6];
        dense_multi_into(&w, &x, Some(&b), &mut one, 1);
        assert_eq!(seq, one);
    }

    #[test]
    fn known_matvec() {
        let x = t(vec![3], vec![1.0, 2.0, 3.0]);
        let w = t(vec![2, 3], vec![1.0, 0.0, 0.0, 0.0, 1.0, 1.0]);
        let b = t(vec![2], vec![10.0, -10.0]);
        let y = dense(&x, &w, Some(&b)).unwrap();
        assert_eq!(y.data(), &[11.0, -5.0]);
    }

    #[test]
    fn output_unit_partition_equivalence() {
        let x = Tensor::from_fn(Shape::new(vec![8]), |i| (i as f32).sqrt());
        let w = Tensor::from_fn(Shape::new(vec![6, 8]), |i| (i as f32 * 0.3).sin());
        let b = Tensor::from_fn(Shape::new(vec![6]), |i| i as f32);
        let full = dense(&x, &w, Some(&b)).unwrap();
        let parts: Vec<Tensor> = (0..3)
            .map(|p| {
                let wp = w.slice(0, p * 2..(p + 1) * 2).unwrap();
                let bp = b.slice(0, p * 2..(p + 1) * 2).unwrap();
                dense(&x, &wp, Some(&bp)).unwrap()
            })
            .collect();
        let stitched = Tensor::concat(&parts, 0).unwrap();
        assert!(full.max_abs_diff(&stitched).unwrap() < 1e-6);
    }

    #[test]
    fn rejects_mismatched_sizes() {
        let x = Tensor::zeros(Shape::new(vec![4]));
        let w = Tensor::zeros(Shape::new(vec![2, 5]));
        assert!(dense(&x, &w, None).is_err());
        let w2 = Tensor::zeros(Shape::new(vec![2, 4]));
        let bad_bias = Tensor::zeros(Shape::new(vec![3]));
        assert!(dense(&x, &w2, Some(&bad_bias)).is_err());
        let mat_in = Tensor::zeros(Shape::new(vec![2, 2]));
        assert!(dense(&mat_in, &w2, None).is_err());
    }
}
