//! Layer compute kernels.
//!
//! All kernels operate on single-query (batch-free) tensors: convolutional
//! layers use `CHW` layout, dense layers use rank-1 vectors. Convolution and
//! pooling accept *asymmetric* padding via [`Padding`], which is what lets a
//! fork-join worker run on a halo-extended spatial slice and pad only the
//! sides that coincide with the true tensor border.

mod activation;
mod conv;
mod dense;
mod depthwise;
mod norm;
mod pool;
mod rnn;

pub use activation::{relu, relu_into, sigmoid, softmax, softmax_into, tanh};
pub use conv::{
    conv2d, conv2d_output_hw, conv2d_packed_batched_into, conv2d_packed_into,
    conv2d_quantized_into, Conv2dParams,
};
pub use dense::{dense, dense_into, dense_multi_into};
pub use depthwise::{depthwise_conv2d, depthwise_conv2d_batched_into, depthwise_conv2d_into};
pub use norm::{batch_norm, batch_norm_fold, batch_norm_folded_into, BatchNormParams};
pub use pool::{
    avg_pool2d, avg_pool2d_into, global_avg_pool, global_avg_pool_into, max_pool2d,
    max_pool2d_into, Pool2dParams,
};
pub use rnn::{lstm_cell, lstm_cell_multi, lstm_sequence, LstmParams, LstmState};

use serde::{Deserialize, Serialize};

/// Per-side spatial padding for convolution and pooling.
///
/// Symmetric padding `p` is `Padding::symmetric(p)`. Asymmetric padding lets a
/// spatial partition pad only its outer border: an interior partition that has
/// been halo-extended uses zero padding on its interior edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Padding {
    /// Rows added above the input.
    pub top: usize,
    /// Rows added below the input.
    pub bottom: usize,
    /// Columns added left of the input.
    pub left: usize,
    /// Columns added right of the input.
    pub right: usize,
}

impl Padding {
    /// Equal padding on all four sides.
    pub fn symmetric(p: usize) -> Self {
        Padding {
            top: p,
            bottom: p,
            left: p,
            right: p,
        }
    }

    /// No padding.
    pub fn none() -> Self {
        Padding::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_padding_sets_all_sides() {
        let p = Padding::symmetric(2);
        assert_eq!((p.top, p.bottom, p.left, p.right), (2, 2, 2, 2));
        assert_eq!(Padding::none(), Padding::default());
    }
}
