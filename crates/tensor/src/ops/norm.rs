//! Inference-time batch normalization.

use crate::error::TensorError;
use crate::shape::Shape;
use crate::tensor::Tensor;
use crate::Result;

/// Frozen batch-norm statistics and affine parameters, one value per channel.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchNormParams {
    /// Learned scale `gamma`, shape `[C]`.
    pub gamma: Tensor,
    /// Learned shift `beta`, shape `[C]`.
    pub beta: Tensor,
    /// Running mean, shape `[C]`.
    pub mean: Tensor,
    /// Running variance, shape `[C]`.
    pub var: Tensor,
    /// Numerical-stability epsilon.
    pub eps: f32,
}

impl BatchNormParams {
    /// Identity normalization for `channels` channels (`gamma = 1`,
    /// everything else zero) — useful in tests.
    pub fn identity(channels: usize) -> Self {
        BatchNormParams {
            gamma: Tensor::full(Shape::new(vec![channels]), 1.0),
            beta: Tensor::zeros(Shape::new(vec![channels])),
            mean: Tensor::zeros(Shape::new(vec![channels])),
            var: Tensor::full(Shape::new(vec![channels]), 1.0),
            eps: 1e-5,
        }
    }
}

/// Applies inference-time batch normalization to a `CHW` tensor:
/// `y = gamma * (x - mean) / sqrt(var + eps) + beta`, per channel.
///
/// Batch norm is element-wise along the spatial dimensions, so it is freely
/// partitionable along height/width — which is why Gillis merges it into the
/// preceding convolution.
///
/// # Errors
///
/// Returns [`TensorError::InvalidArgument`] for non-`CHW` input and
/// [`TensorError::ShapeMismatch`] if parameter lengths differ from the
/// channel count.
pub fn batch_norm(input: &Tensor, params: &BatchNormParams) -> Result<Tensor> {
    let dims = input.shape().dims();
    if dims.len() != 3 {
        return Err(TensorError::InvalidArgument(format!(
            "batch_norm input must be CHW, got rank {}",
            dims.len()
        )));
    }
    let (c, h, w) = (dims[0], dims[1], dims[2]);
    for (name, t) in [
        ("gamma", &params.gamma),
        ("beta", &params.beta),
        ("mean", &params.mean),
        ("var", &params.var),
    ] {
        if t.shape().dims() != [c] {
            let _ = name;
            return Err(TensorError::ShapeMismatch {
                expected: Shape::new(vec![c]),
                actual: t.shape().clone(),
            });
        }
    }
    let mut out = Vec::new();
    batch_norm_into(input.data(), c, h * w, params, &mut out);
    Tensor::from_vec(input.shape().clone(), out)
}

/// Batch-norm hot loop writing into a caller-reusable buffer (`out` is
/// cleared and resized, keeping its allocation across calls).
///
/// The per-channel affine is folded into two constants up front —
/// `y = x·scale + shift` with `scale = gamma/√(var+eps)` and
/// `shift = beta − mean·scale` — so the inner loop is a single fused
/// scale-and-add over the contiguous channel plane.
fn batch_norm_into(
    x: &[f32],
    c: usize,
    plane: usize,
    params: &BatchNormParams,
    out: &mut Vec<f32>,
) {
    out.clear();
    out.resize(c * plane, 0.0);
    let (scale, shift) = batch_norm_fold(params);
    batch_norm_folded_into(x, plane, &scale, &shift, out);
}

/// Folds frozen batch-norm parameters into per-channel `(scale, shift)`
/// constants: `y = x·scale + shift` with `scale = gamma/√(var+eps)` and
/// `shift = beta − mean·scale`.
///
/// Uses exactly the same expressions (and operation order) as
/// [`batch_norm`], so applying the folded form via
/// [`batch_norm_folded_into`] is bit-identical to the unfolded path.
pub fn batch_norm_fold(params: &BatchNormParams) -> (Vec<f32>, Vec<f32>) {
    let c = params.gamma.shape().len();
    let mut scale = Vec::with_capacity(c);
    let mut shift = Vec::with_capacity(c);
    for ch in 0..c {
        let g = params.gamma.data()[ch];
        let b = params.beta.data()[ch];
        let m = params.mean.data()[ch];
        let inv_std = 1.0 / (params.var.data()[ch] + params.eps).sqrt();
        let s = g * inv_std;
        scale.push(s);
        shift.push(b - m * s);
    }
    (scale, shift)
}

/// Applies pre-folded batch norm (`y = x·scale + shift` per channel) over
/// raw buffers, writing into a caller-owned output — the compiled-partition
/// hot path. Bit-identical to [`batch_norm`] when `(scale, shift)` come from
/// [`batch_norm_fold`].
///
/// # Panics
///
/// Panics if buffer lengths are inconsistent.
pub fn batch_norm_folded_into(
    x: &[f32],
    plane: usize,
    scale: &[f32],
    shift: &[f32],
    out: &mut [f32],
) {
    let c = scale.len();
    assert_eq!(shift.len(), c, "scale/shift length mismatch");
    assert_eq!(x.len(), c * plane, "input must be CHW");
    assert_eq!(out.len(), c * plane, "out must match input");
    for ch in 0..c {
        let (scale, shift) = (scale[ch], shift[ch]);
        let src = &x[ch * plane..(ch + 1) * plane];
        let dst = &mut out[ch * plane..(ch + 1) * plane];
        for (o, &v) in dst.iter_mut().zip(src.iter()) {
            *o = v * scale + shift;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_params_are_nearly_identity() {
        let input = Tensor::from_fn(Shape::new(vec![2, 2, 2]), |i| i as f32);
        let out = batch_norm(&input, &BatchNormParams::identity(2)).unwrap();
        assert!(input.max_abs_diff(&out).unwrap() < 1e-4);
    }

    #[test]
    fn normalizes_against_running_stats() {
        let input = Tensor::full(Shape::new(vec![1, 1, 2]), 5.0);
        let params = BatchNormParams {
            gamma: Tensor::full(Shape::new(vec![1]), 2.0),
            beta: Tensor::full(Shape::new(vec![1]), 1.0),
            mean: Tensor::full(Shape::new(vec![1]), 3.0),
            var: Tensor::full(Shape::new(vec![1]), 4.0),
            eps: 0.0,
        };
        // y = 2 * (5 - 3) / 2 + 1 = 3
        let out = batch_norm(&input, &params).unwrap();
        assert_eq!(out.data(), &[3.0, 3.0]);
    }

    #[test]
    fn spatial_partition_equivalence() {
        let input = Tensor::from_fn(Shape::new(vec![3, 4, 4]), |i| (i as f32).cos());
        let params = BatchNormParams {
            gamma: Tensor::from_fn(Shape::new(vec![3]), |i| i as f32 + 0.5),
            beta: Tensor::from_fn(Shape::new(vec![3]), |i| -(i as f32)),
            mean: Tensor::from_fn(Shape::new(vec![3]), |i| i as f32 * 0.1),
            var: Tensor::from_fn(Shape::new(vec![3]), |i| 1.0 + i as f32),
            eps: 1e-5,
        };
        let full = batch_norm(&input, &params).unwrap();
        let top = batch_norm(&input.slice(1, 0..2).unwrap(), &params).unwrap();
        let bot = batch_norm(&input.slice(1, 2..4).unwrap(), &params).unwrap();
        let stitched = Tensor::concat(&[top, bot], 1).unwrap();
        assert!(full.max_abs_diff(&stitched).unwrap() < 1e-6);
    }

    #[test]
    fn rejects_wrong_param_lengths() {
        let input = Tensor::zeros(Shape::new(vec![3, 2, 2]));
        assert!(batch_norm(&input, &BatchNormParams::identity(2)).is_err());
    }
}
