//! Inference-time batch normalization.

use crate::error::TensorError;
use crate::shape::Shape;
use crate::tensor::Tensor;
use crate::Result;

/// Frozen batch-norm statistics and affine parameters, one value per channel.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchNormParams {
    /// Learned scale `gamma`, shape `[C]`.
    pub gamma: Tensor,
    /// Learned shift `beta`, shape `[C]`.
    pub beta: Tensor,
    /// Running mean, shape `[C]`.
    pub mean: Tensor,
    /// Running variance, shape `[C]`.
    pub var: Tensor,
    /// Numerical-stability epsilon.
    pub eps: f32,
}

impl BatchNormParams {
    /// Identity normalization for `channels` channels (`gamma = 1`,
    /// everything else zero) — useful in tests.
    pub fn identity(channels: usize) -> Self {
        BatchNormParams {
            gamma: Tensor::full(Shape::new(vec![channels]), 1.0),
            beta: Tensor::zeros(Shape::new(vec![channels])),
            mean: Tensor::zeros(Shape::new(vec![channels])),
            var: Tensor::full(Shape::new(vec![channels]), 1.0),
            eps: 1e-5,
        }
    }
}

/// Applies inference-time batch normalization to a `CHW` tensor:
/// `y = gamma * (x - mean) / sqrt(var + eps) + beta`, per channel.
///
/// Batch norm is element-wise along the spatial dimensions, so it is freely
/// partitionable along height/width — which is why Gillis merges it into the
/// preceding convolution.
///
/// # Errors
///
/// Returns [`TensorError::InvalidArgument`] for non-`CHW` input and
/// [`TensorError::ShapeMismatch`] if parameter lengths differ from the
/// channel count.
pub fn batch_norm(input: &Tensor, params: &BatchNormParams) -> Result<Tensor> {
    let dims = input.shape().dims();
    if dims.len() != 3 {
        return Err(TensorError::InvalidArgument(format!(
            "batch_norm input must be CHW, got rank {}",
            dims.len()
        )));
    }
    let (c, h, w) = (dims[0], dims[1], dims[2]);
    for (name, t) in [
        ("gamma", &params.gamma),
        ("beta", &params.beta),
        ("mean", &params.mean),
        ("var", &params.var),
    ] {
        if t.shape().dims() != [c] {
            let _ = name;
            return Err(TensorError::ShapeMismatch {
                expected: Shape::new(vec![c]),
                actual: t.shape().clone(),
            });
        }
    }
    let mut out = Vec::new();
    batch_norm_into(input.data(), c, h * w, params, &mut out);
    Tensor::from_vec(input.shape().clone(), out)
}

/// Batch-norm hot loop writing into a caller-reusable buffer (`out` is
/// cleared and resized, keeping its allocation across calls).
///
/// The per-channel affine is folded into two constants up front —
/// `y = x·scale + shift` with `scale = gamma/√(var+eps)` and
/// `shift = beta − mean·scale` — so the inner loop is a single fused
/// scale-and-add over the contiguous channel plane.
fn batch_norm_into(
    x: &[f32],
    c: usize,
    plane: usize,
    params: &BatchNormParams,
    out: &mut Vec<f32>,
) {
    out.clear();
    out.resize(c * plane, 0.0);
    for ch in 0..c {
        let g = params.gamma.data()[ch];
        let b = params.beta.data()[ch];
        let m = params.mean.data()[ch];
        let inv_std = 1.0 / (params.var.data()[ch] + params.eps).sqrt();
        let scale = g * inv_std;
        let shift = b - m * scale;
        let src = &x[ch * plane..(ch + 1) * plane];
        let dst = &mut out[ch * plane..(ch + 1) * plane];
        for (o, &v) in dst.iter_mut().zip(src.iter()) {
            *o = v * scale + shift;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_params_are_nearly_identity() {
        let input = Tensor::from_fn(Shape::new(vec![2, 2, 2]), |i| i as f32);
        let out = batch_norm(&input, &BatchNormParams::identity(2)).unwrap();
        assert!(input.max_abs_diff(&out).unwrap() < 1e-4);
    }

    #[test]
    fn normalizes_against_running_stats() {
        let input = Tensor::full(Shape::new(vec![1, 1, 2]), 5.0);
        let params = BatchNormParams {
            gamma: Tensor::full(Shape::new(vec![1]), 2.0),
            beta: Tensor::full(Shape::new(vec![1]), 1.0),
            mean: Tensor::full(Shape::new(vec![1]), 3.0),
            var: Tensor::full(Shape::new(vec![1]), 4.0),
            eps: 0.0,
        };
        // y = 2 * (5 - 3) / 2 + 1 = 3
        let out = batch_norm(&input, &params).unwrap();
        assert_eq!(out.data(), &[3.0, 3.0]);
    }

    #[test]
    fn spatial_partition_equivalence() {
        let input = Tensor::from_fn(Shape::new(vec![3, 4, 4]), |i| (i as f32).cos());
        let params = BatchNormParams {
            gamma: Tensor::from_fn(Shape::new(vec![3]), |i| i as f32 + 0.5),
            beta: Tensor::from_fn(Shape::new(vec![3]), |i| -(i as f32)),
            mean: Tensor::from_fn(Shape::new(vec![3]), |i| i as f32 * 0.1),
            var: Tensor::from_fn(Shape::new(vec![3]), |i| 1.0 + i as f32),
            eps: 1e-5,
        };
        let full = batch_norm(&input, &params).unwrap();
        let top = batch_norm(&input.slice(1, 0..2).unwrap(), &params).unwrap();
        let bot = batch_norm(&input.slice(1, 2..4).unwrap(), &params).unwrap();
        let stitched = Tensor::concat(&[top, bot], 1).unwrap();
        assert!(full.max_abs_diff(&stitched).unwrap() < 1e-6);
    }

    #[test]
    fn rejects_wrong_param_lengths() {
        let input = Tensor::zeros(Shape::new(vec![3, 2, 2]));
        assert!(batch_norm(&input, &BatchNormParams::identity(2)).is_err());
    }
}
