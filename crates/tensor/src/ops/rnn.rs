//! LSTM cell and sequence execution.
//!
//! The paper's RNN models are stacks of LSTM layers with a 2K hidden size.
//! LSTM layers cannot be spatially parallelized (each step depends on the
//! previous step's hidden state), so Gillis only *places* whole RNN layers
//! across functions — this module provides the real kernel used to validate
//! that layer-wise placement preserves the output.

use serde::{Deserialize, Serialize};

use super::activation::{sigmoid, tanh};
use crate::error::TensorError;
use crate::scratch;
use crate::shape::Shape;
use crate::tensor::Tensor;
use crate::Result;

/// LSTM weights. Gate order in the stacked matrices is `[i, f, g, o]`
/// (input, forget, cell candidate, output).
#[derive(Debug, Clone, PartialEq)]
pub struct LstmParams {
    /// Input-to-hidden weights, shape `[4 * hidden, input]`.
    pub w_ih: Tensor,
    /// Hidden-to-hidden weights, shape `[4 * hidden, hidden]`.
    pub w_hh: Tensor,
    /// Bias, shape `[4 * hidden]`.
    pub bias: Tensor,
}

impl LstmParams {
    /// The hidden size implied by the weight shapes.
    pub fn hidden_size(&self) -> usize {
        self.w_hh.shape().dims()[1]
    }

    /// The input size implied by the weight shapes.
    pub fn input_size(&self) -> usize {
        self.w_ih.shape().dims()[1]
    }

    fn validate(&self) -> Result<()> {
        let h = self.hidden_size();
        let i = self.input_size();
        if self.w_ih.shape().dims() != [4 * h, i] {
            return Err(TensorError::ShapeMismatch {
                expected: Shape::new(vec![4 * h, i]),
                actual: self.w_ih.shape().clone(),
            });
        }
        if self.w_hh.shape().dims() != [4 * h, h] {
            return Err(TensorError::ShapeMismatch {
                expected: Shape::new(vec![4 * h, h]),
                actual: self.w_hh.shape().clone(),
            });
        }
        if self.bias.shape().dims() != [4 * h] {
            return Err(TensorError::ShapeMismatch {
                expected: Shape::new(vec![4 * h]),
                actual: self.bias.shape().clone(),
            });
        }
        Ok(())
    }
}

/// Hidden and cell state of an LSTM layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LstmState {
    /// Hidden state `h`, shape `[hidden]`.
    pub h: Tensor,
    /// Cell state `c`, shape `[hidden]`.
    pub c: Tensor,
}

impl LstmState {
    /// Zero-initialized state for a layer of the given hidden size.
    pub fn zeros(hidden: usize) -> Self {
        LstmState {
            h: Tensor::zeros(Shape::new(vec![hidden])),
            c: Tensor::zeros(Shape::new(vec![hidden])),
        }
    }
}

#[cfg(test)]
fn matvec(w: &Tensor, x: &Tensor) -> Vec<f32> {
    let (rows, cols) = (w.shape().dims()[0], w.shape().dims()[1]);
    let mut out = vec![0.0f32; rows];
    crate::gemm::gemv(rows, cols, w.data(), x.data(), &mut out);
    out
}

/// Reference serial dot product the gemv-backed [`matvec`] is validated
/// against.
#[cfg(test)]
fn matvec_naive(w: &Tensor, x: &Tensor) -> Vec<f32> {
    let (rows, cols) = (w.shape().dims()[0], w.shape().dims()[1]);
    let wd = w.data();
    let xd = x.data();
    (0..rows)
        .map(|r| {
            wd[r * cols..(r + 1) * cols]
                .iter()
                .zip(xd.iter())
                .map(|(a, b)| a * b)
                .sum()
        })
        .collect()
}

/// One LSTM step: consumes input `x` of shape `[input]` and the previous
/// state, returns the next state (whose `h` is the step output).
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if weights, input, or state sizes
/// are inconsistent.
pub fn lstm_cell(x: &Tensor, state: &LstmState, params: &LstmParams) -> Result<LstmState> {
    params.validate()?;
    let hidden = params.hidden_size();
    if x.shape().dims() != [params.input_size()] {
        return Err(TensorError::ShapeMismatch {
            expected: Shape::new(vec![params.input_size()]),
            actual: x.shape().clone(),
        });
    }
    if state.h.shape().dims() != [hidden] || state.c.shape().dims() != [hidden] {
        return Err(TensorError::ShapeMismatch {
            expected: Shape::new(vec![hidden]),
            actual: state.h.shape().clone(),
        });
    }
    // Gate pre-activations live in per-thread scratch: after the first step
    // of a sequence, later steps run these temporaries allocation-free.
    let mut gi = scratch::take(scratch::Site::LstmGateInput);
    gi.clear();
    gi.resize(4 * hidden, 0.0);
    crate::gemm::gemv(
        4 * hidden,
        params.input_size(),
        params.w_ih.data(),
        x.data(),
        &mut gi,
    );
    let mut gh = scratch::take(scratch::Site::LstmGateHidden);
    gh.clear();
    gh.resize(4 * hidden, 0.0);
    crate::gemm::gemv(
        4 * hidden,
        hidden,
        params.w_hh.data(),
        state.h.data(),
        &mut gh,
    );
    let b = params.bias.data();
    let mut pre = scratch::take(scratch::Site::LstmPre);
    pre.clear();
    pre.extend(
        gi.iter()
            .zip(gh.iter())
            .zip(b.iter())
            .map(|((a, c), d)| a + c + d),
    );

    let next = lstm_apply_gates(&pre, hidden, state);
    scratch::put(scratch::Site::LstmGateInput, gi);
    scratch::put(scratch::Site::LstmGateHidden, gh);
    scratch::put(scratch::Site::LstmPre, pre);
    next
}

/// Applies the four LSTM gates to combined pre-activations `pre`
/// (`[4 * hidden]`, gate order `[i, f, g, o]`) and the previous state. Shared
/// by the per-query and batched cells so both take the exact same float ops.
fn lstm_apply_gates(pre: &[f32], hidden: usize, state: &LstmState) -> Result<LstmState> {
    let gate = |idx: usize| -> Tensor {
        Tensor::from_vec(
            Shape::new(vec![hidden]),
            pre[idx * hidden..(idx + 1) * hidden].to_vec(),
        )
        .expect("gate slice has correct length")
    };
    let i = sigmoid(&gate(0));
    let f = sigmoid(&gate(1));
    let g = tanh(&gate(2));
    let o = sigmoid(&gate(3));
    let mut c_next = Vec::with_capacity(hidden);
    for k in 0..hidden {
        c_next.push(f.data()[k] * state.c.data()[k] + i.data()[k] * g.data()[k]);
    }
    let c_next = Tensor::from_vec(Shape::new(vec![hidden]), c_next)?;
    let h_next: Vec<f32> = c_next
        .data()
        .iter()
        .zip(o.data().iter())
        .map(|(c, o)| c.tanh() * o)
        .collect();
    Ok(LstmState {
        h: Tensor::from_vec(Shape::new(vec![hidden]), h_next)?,
        c: c_next,
    })
}

/// One LSTM step for a batch of independent streams: item `q` consumes
/// `xs[q]` and `states[q]` and yields the `q`-th returned state.
///
/// Both gate matmuls stream each weight row once and dot it against every
/// item ([`crate::gemm::gemv_multi`]), so the batch shares one traversal of
/// `w_ih`/`w_hh` instead of `n` full passes. Per-item outputs are
/// bit-identical to calling [`lstm_cell`] once per item for any thread
/// count: each `(gate row, item)` pre-activation is the same `row_dot` over
/// the same operands, and the gate nonlinearities run per item through the
/// exact per-query code. A single-item batch delegates to [`lstm_cell`].
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if any input or state disagrees
/// with the weight shapes, or [`TensorError::InvalidArgument`] if `xs` and
/// `states` have different lengths.
pub fn lstm_cell_multi(
    xs: &[Tensor],
    states: &[LstmState],
    params: &LstmParams,
) -> Result<Vec<LstmState>> {
    if xs.len() != states.len() {
        return Err(TensorError::InvalidArgument(format!(
            "lstm_cell_multi got {} inputs for {} states",
            xs.len(),
            states.len()
        )));
    }
    let n = xs.len();
    if n == 0 {
        return Ok(Vec::new());
    }
    if n == 1 {
        return Ok(vec![lstm_cell(&xs[0], &states[0], params)?]);
    }
    params.validate()?;
    let hidden = params.hidden_size();
    let input = params.input_size();
    for (x, state) in xs.iter().zip(states.iter()) {
        if x.shape().dims() != [input] {
            return Err(TensorError::ShapeMismatch {
                expected: Shape::new(vec![input]),
                actual: x.shape().clone(),
            });
        }
        if state.h.shape().dims() != [hidden] || state.c.shape().dims() != [hidden] {
            return Err(TensorError::ShapeMismatch {
                expected: Shape::new(vec![hidden]),
                actual: state.h.shape().clone(),
            });
        }
    }
    // Pack inputs and hidden states contiguously so gemv_multi can stride
    // them; all temporaries live in per-thread scratch.
    let mut xs_flat = scratch::take(scratch::Site::BatchCol);
    xs_flat.clear();
    for x in xs {
        xs_flat.extend_from_slice(x.data());
    }
    let mut hs_flat = scratch::take(scratch::Site::BatchOut);
    hs_flat.clear();
    for state in states {
        hs_flat.extend_from_slice(state.h.data());
    }
    let mut gi = scratch::take(scratch::Site::LstmGateInput);
    gi.clear();
    gi.resize(4 * hidden * n, 0.0);
    crate::gemm::gemv_multi(4 * hidden, input, params.w_ih.data(), &xs_flat, &mut gi, n);
    let mut gh = scratch::take(scratch::Site::LstmGateHidden);
    gh.clear();
    gh.resize(4 * hidden * n, 0.0);
    crate::gemm::gemv_multi(4 * hidden, hidden, params.w_hh.data(), &hs_flat, &mut gh, n);
    let b = params.bias.data();
    let mut pre = scratch::take(scratch::Site::LstmPre);
    let mut next = Vec::with_capacity(n);
    for (q, state) in states.iter().enumerate() {
        pre.clear();
        pre.extend((0..4 * hidden).map(|r| {
            let (a, c, d) = (gi[r * n + q], gh[r * n + q], b[r]);
            a + c + d
        }));
        next.push(lstm_apply_gates(&pre, hidden, state)?);
    }
    scratch::put(scratch::Site::LstmPre, pre);
    scratch::put(scratch::Site::LstmGateInput, gi);
    scratch::put(scratch::Site::LstmGateHidden, gh);
    scratch::put(scratch::Site::BatchCol, xs_flat);
    scratch::put(scratch::Site::BatchOut, hs_flat);
    Ok(next)
}

/// Runs an LSTM layer over a sequence of inputs, returning the per-step
/// hidden outputs and the final state.
///
/// # Errors
///
/// Propagates any shape error from [`lstm_cell`].
pub fn lstm_sequence(inputs: &[Tensor], params: &LstmParams) -> Result<(Vec<Tensor>, LstmState)> {
    let mut state = LstmState::zeros(params.hidden_size());
    let mut outputs = Vec::with_capacity(inputs.len());
    for x in inputs {
        state = lstm_cell(x, &state, params)?;
        outputs.push(state.h.clone());
    }
    Ok((outputs, state))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn gate_matvec_matches_naive_reference(
            (rows, cols) in (1usize..16, 1usize..64),
            seed in 0u32..1000,
        ) {
            let pseudo = |i: usize, s: u32| {
                ((i as u32 ^ s).wrapping_mul(2654435761) % 2001) as f32 * 1e-3 - 1.0
            };
            let w = Tensor::from_fn(Shape::new(vec![rows, cols]), |i| pseudo(i, seed));
            let x = Tensor::from_fn(Shape::new(vec![cols]), |i| pseudo(i, seed ^ 0x9));
            let fast = matvec(&w, &x);
            let naive = matvec_naive(&w, &x);
            for (a, b) in fast.iter().zip(naive.iter()) {
                prop_assert!((a - b).abs() < 1e-4, "{} vs {}", a, b);
            }
        }
    }

    fn small_params(input: usize, hidden: usize, scale: f32) -> LstmParams {
        LstmParams {
            w_ih: Tensor::from_fn(Shape::new(vec![4 * hidden, input]), |i| {
                ((i % 5) as f32 - 2.0) * scale
            }),
            w_hh: Tensor::from_fn(Shape::new(vec![4 * hidden, hidden]), |i| {
                ((i % 3) as f32 - 1.0) * scale
            }),
            bias: Tensor::from_fn(Shape::new(vec![4 * hidden]), |i| (i % 2) as f32 * scale),
        }
    }

    #[test]
    fn zero_weights_keep_state_near_zero() {
        let params = small_params(3, 2, 0.0);
        let x = Tensor::full(Shape::new(vec![3]), 1.0);
        let next = lstm_cell(&x, &LstmState::zeros(2), &params).unwrap();
        // With all-zero pre-activations: i = f = o = 0.5, g = 0,
        // c' = 0.5*0 + 0.5*0 = 0, h' = tanh(0)*0.5 = 0.
        assert!(next.h.data().iter().all(|&v| v.abs() < 1e-6));
        assert!(next.c.data().iter().all(|&v| v.abs() < 1e-6));
    }

    #[test]
    fn forget_gate_saturated_carries_cell_state() {
        let hidden = 1;
        // Large positive forget bias, zero elsewhere: c' ~= c.
        let mut bias = vec![0.0; 4];
        bias[1] = 100.0; // forget gate
        bias[0] = -100.0; // input gate closed
        let params = LstmParams {
            w_ih: Tensor::zeros(Shape::new(vec![4, 1])),
            w_hh: Tensor::zeros(Shape::new(vec![4, 1])),
            bias: Tensor::from_vec(Shape::new(vec![4]), bias).unwrap(),
        };
        let state = LstmState {
            h: Tensor::zeros(Shape::new(vec![hidden])),
            c: Tensor::full(Shape::new(vec![hidden]), 0.8),
        };
        let x = Tensor::zeros(Shape::new(vec![1]));
        let next = lstm_cell(&x, &state, &params).unwrap();
        assert!((next.c.data()[0] - 0.8).abs() < 1e-4);
    }

    #[test]
    fn sequence_output_len_matches_input_len() {
        let params = small_params(4, 3, 0.1);
        let inputs: Vec<Tensor> = (0..5)
            .map(|t| Tensor::from_fn(Shape::new(vec![4]), |i| (t * 4 + i) as f32 * 0.1))
            .collect();
        let (outs, last) = lstm_sequence(&inputs, &params).unwrap();
        assert_eq!(outs.len(), 5);
        assert_eq!(outs.last().unwrap(), &last.h);
        // Hidden values stay bounded by tanh.
        assert!(last.h.data().iter().all(|&v| v.abs() <= 1.0));
    }

    #[test]
    fn stacked_layers_compose_like_single_pipeline() {
        // Running layer A then layer B step-by-step equals feeding A's
        // full output sequence into B — the property that justifies placing
        // whole layers on different functions.
        let pa = small_params(3, 3, 0.2);
        let pb = small_params(3, 2, 0.3);
        let inputs: Vec<Tensor> = (0..4)
            .map(|t| Tensor::from_fn(Shape::new(vec![3]), |i| ((t + i) as f32).sin()))
            .collect();
        let (outs_a, _) = lstm_sequence(&inputs, &pa).unwrap();
        let (outs_b, _) = lstm_sequence(&outs_a, &pb).unwrap();

        // Interleaved execution.
        let mut sa = LstmState::zeros(3);
        let mut sb = LstmState::zeros(2);
        let mut interleaved = Vec::new();
        for x in &inputs {
            sa = lstm_cell(x, &sa, &pa).unwrap();
            sb = lstm_cell(&sa.h, &sb, &pb).unwrap();
            interleaved.push(sb.h.clone());
        }
        for (a, b) in outs_b.iter().zip(interleaved.iter()) {
            assert!(a.max_abs_diff(b).unwrap() < 1e-6);
        }
    }

    #[test]
    fn batched_cell_bit_identical_to_sequential() {
        let params = small_params(5, 4, 0.13);
        for n in [1usize, 2, 3, 8] {
            let xs: Vec<Tensor> = (0..n)
                .map(|q| Tensor::from_fn(Shape::new(vec![5]), |i| ((q * 5 + i) as f32 * 0.3).sin()))
                .collect();
            let states: Vec<LstmState> = (0..n)
                .map(|q| LstmState {
                    h: Tensor::from_fn(Shape::new(vec![4]), |i| ((q + i) as f32 * 0.2).cos()),
                    c: Tensor::from_fn(Shape::new(vec![4]), |i| (q as f32 - i as f32) * 0.1),
                })
                .collect();
            let seq: Vec<LstmState> = xs
                .iter()
                .zip(states.iter())
                .map(|(x, s)| lstm_cell(x, s, &params).unwrap())
                .collect();
            let multi = lstm_cell_multi(&xs, &states, &params).unwrap();
            for (a, b) in seq.iter().zip(multi.iter()) {
                for (x, y) in a.h.data().iter().zip(b.h.data().iter()) {
                    assert_eq!(x.to_bits(), y.to_bits());
                }
                for (x, y) in a.c.data().iter().zip(b.c.data().iter()) {
                    assert_eq!(x.to_bits(), y.to_bits());
                }
            }
        }
    }

    #[test]
    fn rejects_inconsistent_shapes() {
        let params = small_params(3, 2, 0.1);
        let bad_x = Tensor::zeros(Shape::new(vec![5]));
        assert!(lstm_cell(&bad_x, &LstmState::zeros(2), &params).is_err());
        let x = Tensor::zeros(Shape::new(vec![3]));
        assert!(lstm_cell(&x, &LstmState::zeros(4), &params).is_err());
    }
}
