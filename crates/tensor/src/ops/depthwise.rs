//! Depthwise 2-D convolution: one filter per channel.
//!
//! Depthwise convolutions (MobileNet-style) are *channel-local*: output
//! channel `c` depends only on input channel `c`. For Gillis this is the
//! best of both worlds — a depthwise layer chains through both spatial
//! partitions (it is convolution-like) and channel partitions (it is
//! channel-local), so it never breaks a group.

use super::conv::conv2d_output_hw;
use super::Conv2dParams;
use crate::error::TensorError;
use crate::gemm;
use crate::scratch;
use crate::shape::Shape;
use crate::tensor::Tensor;
use crate::Result;

/// Depthwise convolution: `input` is `CHW`, `weight` is `[c, kh, kw]` (one
/// filter per channel), `bias` is `[c]` (optional).
///
/// # Errors
///
/// Returns [`TensorError::InvalidArgument`] for inconsistent shapes or a
/// kernel larger than the padded input, and [`TensorError::ShapeMismatch`]
/// for a bias of the wrong length.
pub fn depthwise_conv2d(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    params: &Conv2dParams,
) -> Result<Tensor> {
    let in_dims = input.shape().dims();
    let w_dims = weight.shape().dims();
    if in_dims.len() != 3 {
        return Err(TensorError::InvalidArgument(format!(
            "depthwise input must be CHW, got rank {}",
            in_dims.len()
        )));
    }
    if w_dims.len() != 3 {
        return Err(TensorError::InvalidArgument(format!(
            "depthwise weight must be [c, kh, kw], got rank {}",
            w_dims.len()
        )));
    }
    let (c, in_h, in_w) = (in_dims[0], in_dims[1], in_dims[2]);
    if w_dims[0] != c {
        return Err(TensorError::InvalidArgument(format!(
            "depthwise weight has {} filters for {c} channels",
            w_dims[0]
        )));
    }
    if (w_dims[1], w_dims[2]) != params.kernel {
        return Err(TensorError::InvalidArgument(format!(
            "weight kernel ({}, {}) != declared kernel {:?}",
            w_dims[1], w_dims[2], params.kernel
        )));
    }
    if let Some(b) = bias {
        if b.shape().dims() != [c] {
            return Err(TensorError::ShapeMismatch {
                expected: Shape::new(vec![c]),
                actual: b.shape().clone(),
            });
        }
    }
    let (out_h, out_w) = conv2d_output_hw((in_h, in_w), params).ok_or_else(|| {
        TensorError::InvalidArgument(format!(
            "padded input ({in_h}, {in_w}) smaller than kernel {:?}",
            params.kernel
        ))
    })?;
    let mut out = vec![0.0f32; c * out_h * out_w];
    depthwise_conv2d_into(
        input.data(),
        c,
        in_h,
        in_w,
        weight.data(),
        bias.map(|b| b.data()),
        params,
        (out_h, out_w),
        &mut out,
    );
    Tensor::from_vec(Shape::new(vec![c, out_h, out_w]), out)
}

/// Depthwise convolution over raw buffers writing into a caller-owned
/// output — the compiled-partition hot path (shapes are validated once at
/// compile time, so the per-query call just computes). Bit-identical to
/// [`depthwise_conv2d`] for any thread count.
///
/// Each channel is an independent 1×(kh·kw) by (kh·kw)×(out_h·out_w)
/// GEMM over that channel's im2col matrix; channels are split across
/// worker threads (each channel computed entirely by one thread, so
/// results are thread-count independent). The per-channel column matrix
/// lives in per-thread scratch, so warmed threads allocate nothing here.
///
/// # Panics
///
/// Panics if buffer lengths are inconsistent with the dimensions.
#[allow(clippy::too_many_arguments)]
pub fn depthwise_conv2d_into(
    x: &[f32],
    c: usize,
    in_h: usize,
    in_w: usize,
    w: &[f32],
    bias: Option<&[f32]>,
    params: &Conv2dParams,
    (out_h, out_w): (usize, usize),
    out: &mut [f32],
) {
    let (kh, kw) = params.kernel;
    let in_plane = in_h * in_w;
    let k_plane = kh * kw;
    let n_dim = out_h * out_w;
    assert_eq!(x.len(), c * in_plane, "input must be CHW");
    assert_eq!(w.len(), c * k_plane, "weight must be [c, kh, kw]");
    assert_eq!(out.len(), c * n_dim, "out must be c*out_h*out_w");
    match bias {
        Some(b) => {
            assert_eq!(b.len(), c, "bias must be [c]");
            for (row, &bv) in out.chunks_mut(n_dim).zip(b.iter()) {
                row.fill(bv);
            }
        }
        None => out.fill(0.0),
    }
    let channel_block = |ch0: usize, out_block: &mut [f32]| {
        let mut col = scratch::take(scratch::Site::DepthwiseCol);
        for (off, out_ch) in out_block.chunks_mut(n_dim).enumerate() {
            let ch = ch0 + off;
            gemm::im2col(
                &x[ch * in_plane..(ch + 1) * in_plane],
                1,
                in_h,
                in_w,
                params.kernel,
                params.stride,
                params.padding.top,
                params.padding.left,
                (out_h, out_w),
                &mut col,
            );
            gemm::gemm_with_threads(
                1,
                n_dim,
                k_plane,
                &w[ch * k_plane..(ch + 1) * k_plane],
                &col,
                out_ch,
                1,
            );
        }
        scratch::put(scratch::Site::DepthwiseCol, col);
    };
    // Small-work threshold: below ~GEMM_PAR_MIN_MNK multiply-adds for the
    // whole layer, pool dispatch costs more than the split saves.
    let total_macs = c
        .saturating_mul(n_dim)
        .saturating_mul(k_plane)
        .saturating_mul(2);
    let threads = if total_macs < gemm::GEMM_PAR_MIN_MNK {
        1
    } else {
        gemm::gillis_threads().clamp(1, c)
    };
    if threads == 1 {
        channel_block(0, out);
    } else {
        let per = c.div_ceil(threads);
        let channel_block = &channel_block;
        let tasks: Vec<gillis_pool::Task> = out
            .chunks_mut(per * n_dim)
            .enumerate()
            .map(|(b_idx, out_block)| -> gillis_pool::Task {
                Box::new(move || channel_block(b_idx * per, out_block))
            })
            .collect();
        gillis_pool::Pool::global().join_all(tasks);
    }
}

/// Batched depthwise convolution: `batch` CHW inputs laid out contiguously
/// in `xs`, outputs written contiguously into `outs`.
///
/// Depthwise layers are memory-bound 1-row GEMMs, so there is no packing to
/// amortize across the batch; the win here is that all items reuse the same
/// warmed per-thread column scratch instead of re-warming per dispatch. Each
/// item runs the exact per-query kernel, so outputs are trivially
/// bit-identical to sequential execution for any thread count.
///
/// # Panics
///
/// Panics if buffer lengths are inconsistent with `batch`.
#[allow(clippy::too_many_arguments)]
pub fn depthwise_conv2d_batched_into(
    xs: &[f32],
    batch: usize,
    c: usize,
    in_h: usize,
    in_w: usize,
    w: &[f32],
    bias: Option<&[f32]>,
    params: &Conv2dParams,
    (out_h, out_w): (usize, usize),
    outs: &mut [f32],
) {
    let in_len = c * in_h * in_w;
    let out_len = c * out_h * out_w;
    assert_eq!(xs.len(), batch * in_len, "inputs must be batch × CHW");
    assert_eq!(outs.len(), batch * out_len, "outputs must be batch × CHW");
    for (x, out) in xs.chunks_exact(in_len).zip(outs.chunks_exact_mut(out_len)) {
        depthwise_conv2d_into(x, c, in_h, in_w, w, bias, params, (out_h, out_w), out);
    }
}

/// Reference per-channel loop the GEMM path is validated against.
#[cfg(test)]
pub(crate) fn depthwise_conv2d_naive(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    params: &Conv2dParams,
) -> Result<Tensor> {
    let in_dims = input.shape().dims();
    let (c, in_h, in_w) = (in_dims[0], in_dims[1], in_dims[2]);
    let (out_h, out_w) = conv2d_output_hw((in_h, in_w), params).unwrap();
    let (kh, kw) = params.kernel;
    let (sh, sw) = params.stride;
    let pt = params.padding.top as isize;
    let pl = params.padding.left as isize;
    let in_plane = in_h * in_w;
    let k_plane = kh * kw;
    let x = input.data();
    let w = weight.data();

    let mut out = vec![0.0f32; c * out_h * out_w];
    for ch in 0..c {
        let in_base = ch * in_plane;
        let w_base = ch * k_plane;
        let b = bias.map(|b| b.data()[ch]).unwrap_or(0.0);
        for oy in 0..out_h {
            let iy0 = (oy * sh) as isize - pt;
            for ox in 0..out_w {
                let ix0 = (ox * sw) as isize - pl;
                let mut acc = b;
                for ky in 0..kh {
                    let iy = iy0 + ky as isize;
                    if iy < 0 || iy >= in_h as isize {
                        continue;
                    }
                    let row = in_base + iy as usize * in_w;
                    let wrow = w_base + ky * kw;
                    for kx in 0..kw {
                        let ix = ix0 + kx as isize;
                        if ix < 0 || ix >= in_w as isize {
                            continue;
                        }
                        acc += x[row + ix as usize] * w[wrow + kx];
                    }
                }
                out[ch * out_h * out_w + oy * out_w + ox] = acc;
            }
        }
    }
    Tensor::from_vec(Shape::new(vec![c, out_h, out_w]), out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::conv2d;
    use crate::ops::Padding;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn gemm_path_matches_naive_reference(
            c in 1usize..6,
            (in_h, in_w) in (3usize..10, 3usize..10),
            kernel in 1usize..4,
            stride in 1usize..3,
            pad in 0usize..2,
            seed in 0u32..1000,
        ) {
            let params = Conv2dParams::square(kernel, stride, pad);
            prop_assume!(conv2d_output_hw((in_h, in_w), &params).is_some());
            let pseudo = |i: usize, s: u32| {
                ((i as u32 ^ s).wrapping_mul(2654435761) % 2001) as f32 * 1e-3 - 1.0
            };
            let input =
                Tensor::from_fn(Shape::new(vec![c, in_h, in_w]), |i| pseudo(i, seed));
            let weight = Tensor::from_fn(Shape::new(vec![c, kernel, kernel]), |i| {
                pseudo(i, seed ^ 0xbeef)
            });
            let bias = Tensor::from_fn(Shape::new(vec![c]), |i| pseudo(i, seed ^ 0x77));
            let fast = depthwise_conv2d(&input, &weight, Some(&bias), &params).unwrap();
            let naive = depthwise_conv2d_naive(&input, &weight, Some(&bias), &params).unwrap();
            // Exact in scalar mode; FMA rounding bound under SIMD.
            let tol = if crate::simd::simd_active() { 1e-3 } else { 0.0 };
            prop_assert!(fast.max_abs_diff(&naive).unwrap() <= tol);
        }
    }

    #[test]
    fn matches_block_diagonal_full_convolution() {
        // A depthwise conv equals a full conv whose filter bank is
        // block-diagonal across channels.
        let input = Tensor::from_fn(Shape::new(vec![3, 6, 6]), |i| ((i * 7) % 11) as f32 * 0.1);
        let dw_weight = Tensor::from_fn(Shape::new(vec![3, 3, 3]), |i| ((i * 5) % 13) as f32 * 0.1);
        let bias = Tensor::from_fn(Shape::new(vec![3]), |i| i as f32);
        let params = Conv2dParams::square(3, 1, 1);
        let dw = depthwise_conv2d(&input, &dw_weight, Some(&bias), &params).unwrap();

        let mut full_w = Tensor::zeros(Shape::new(vec![3, 3, 3, 3]));
        for c in 0..3usize {
            for k in 0..9usize {
                let v = dw_weight.data()[c * 9 + k];
                full_w.data_mut()[c * 27 + c * 9 + k] = v;
            }
        }
        let full = conv2d(&input, &full_w, Some(&bias), &params).unwrap();
        assert!(dw.max_abs_diff(&full).unwrap() < 1e-5);
    }

    #[test]
    fn channel_partition_is_exact() {
        // The channel-local property: slicing input channels and weights
        // slices the output exactly.
        let input = Tensor::from_fn(Shape::new(vec![4, 5, 5]), |i| (i as f32).sin());
        let weight = Tensor::from_fn(Shape::new(vec![4, 3, 3]), |i| (i as f32 * 0.3).cos());
        let params = Conv2dParams::square(3, 1, 1);
        let full = depthwise_conv2d(&input, &weight, None, &params).unwrap();
        let mut parts = Vec::new();
        for p in 0..2 {
            let ins = input.slice(0, p * 2..(p + 1) * 2).unwrap();
            let ws = weight.slice(0, p * 2..(p + 1) * 2).unwrap();
            parts.push(depthwise_conv2d(&ins, &ws, None, &params).unwrap());
        }
        let stitched = Tensor::concat(&parts, 0).unwrap();
        assert!(full.max_abs_diff(&stitched).unwrap() < 1e-6);
    }

    #[test]
    fn spatial_partition_with_halo_is_exact() {
        let input = Tensor::from_fn(Shape::new(vec![2, 8, 8]), |i| ((i * 13) % 7) as f32);
        let weight = Tensor::from_fn(Shape::new(vec![2, 3, 3]), |i| (i % 4) as f32 * 0.25);
        let sym = Conv2dParams::square(3, 1, 1);
        let full = depthwise_conv2d(&input, &weight, None, &sym).unwrap();
        let top_in = input.slice(1, 0..5).unwrap();
        let bot_in = input.slice(1, 3..8).unwrap();
        let p_top = Conv2dParams {
            kernel: (3, 3),
            stride: (1, 1),
            padding: Padding {
                top: 1,
                bottom: 0,
                left: 1,
                right: 1,
            },
        };
        let p_bot = Conv2dParams {
            kernel: (3, 3),
            stride: (1, 1),
            padding: Padding {
                top: 0,
                bottom: 1,
                left: 1,
                right: 1,
            },
        };
        let top = depthwise_conv2d(&top_in, &weight, None, &p_top).unwrap();
        let bot = depthwise_conv2d(&bot_in, &weight, None, &p_bot).unwrap();
        let stitched = Tensor::concat(&[top, bot], 1).unwrap();
        assert!(full.max_abs_diff(&stitched).unwrap() < 1e-6);
    }

    #[test]
    fn rejects_bad_shapes() {
        let input = Tensor::zeros(Shape::new(vec![3, 4, 4]));
        let wrong_c = Tensor::zeros(Shape::new(vec![2, 3, 3]));
        let params = Conv2dParams::square(3, 1, 1);
        assert!(depthwise_conv2d(&input, &wrong_c, None, &params).is_err());
        let w = Tensor::zeros(Shape::new(vec![3, 3, 3]));
        let bad_bias = Tensor::zeros(Shape::new(vec![5]));
        assert!(depthwise_conv2d(&input, &w, Some(&bad_bias), &params).is_err());
        let flat = Tensor::zeros(Shape::new(vec![4]));
        assert!(depthwise_conv2d(&flat, &w, None, &params).is_err());
    }
}
