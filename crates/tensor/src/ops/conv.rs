//! 2-D convolution over `CHW` tensors.

use serde::{Deserialize, Serialize};

use super::Padding;
use crate::error::TensorError;
use crate::gemm;
use crate::scratch;
use crate::shape::Shape;
use crate::tensor::Tensor;
use crate::Result;

/// Parameters of a 2-D convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Conv2dParams {
    /// Kernel height and width.
    pub kernel: (usize, usize),
    /// Vertical and horizontal stride.
    pub stride: (usize, usize),
    /// Per-side zero padding.
    pub padding: Padding,
}

impl Conv2dParams {
    /// Square kernel with equal stride and symmetric padding — the common
    /// case in the paper's CNN zoo.
    pub fn square(kernel: usize, stride: usize, padding: usize) -> Self {
        Conv2dParams {
            kernel: (kernel, kernel),
            stride: (stride, stride),
            padding: Padding::symmetric(padding),
        }
    }
}

/// Output spatial size of a convolution/pooling window sweep.
///
/// Returns `None` if the padded input is smaller than the kernel.
pub fn conv2d_output_hw(in_hw: (usize, usize), params: &Conv2dParams) -> Option<(usize, usize)> {
    let (kh, kw) = params.kernel;
    let (sh, sw) = params.stride;
    let h = in_hw.0 + params.padding.top + params.padding.bottom;
    let w = in_hw.1 + params.padding.left + params.padding.right;
    if h < kh || w < kw || sh == 0 || sw == 0 {
        return None;
    }
    Some(((h - kh) / sh + 1, (w - kw) / sw + 1))
}

/// 2-D convolution: `input` is `CHW`, `weight` is `[out_c, in_c, kh, kw]`,
/// `bias` is `[out_c]` (optional).
///
/// # Errors
///
/// Returns [`TensorError::InvalidArgument`] if the shapes are inconsistent or
/// the padded input is smaller than the kernel, and
/// [`TensorError::ShapeMismatch`] if `bias` does not match `out_c`.
pub fn conv2d(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    params: &Conv2dParams,
) -> Result<Tensor> {
    let in_dims = input.shape().dims();
    let w_dims = weight.shape().dims();
    if in_dims.len() != 3 {
        return Err(TensorError::InvalidArgument(format!(
            "conv2d input must be CHW, got rank {}",
            in_dims.len()
        )));
    }
    if w_dims.len() != 4 {
        return Err(TensorError::InvalidArgument(format!(
            "conv2d weight must be [out_c, in_c, kh, kw], got rank {}",
            w_dims.len()
        )));
    }
    let (in_c, in_h, in_w) = (in_dims[0], in_dims[1], in_dims[2]);
    let (out_c, w_in_c, kh, kw) = (w_dims[0], w_dims[1], w_dims[2], w_dims[3]);
    if in_c != w_in_c {
        return Err(TensorError::InvalidArgument(format!(
            "conv2d input channels {in_c} != weight input channels {w_in_c}"
        )));
    }
    if (kh, kw) != params.kernel {
        return Err(TensorError::InvalidArgument(format!(
            "weight kernel ({kh}, {kw}) != declared kernel {:?}",
            params.kernel
        )));
    }
    if let Some(b) = bias {
        if b.shape().dims() != [out_c] {
            return Err(TensorError::ShapeMismatch {
                expected: Shape::new(vec![out_c]),
                actual: b.shape().clone(),
            });
        }
    }
    let (out_h, out_w) = conv2d_output_hw((in_h, in_w), params).ok_or_else(|| {
        TensorError::InvalidArgument(format!(
            "padded input ({in_h}, {in_w}) smaller than kernel {:?}",
            params.kernel
        ))
    })?;

    // Lower to im2col + blocked GEMM: the weight tensor's native
    // [out_c, in_c*kh*kw] layout is already the A matrix, the column matrix
    // is B, and the bias pre-initializes C so the accumulation order matches
    // the reference kernel exactly (see crate::gemm's determinism contract).
    let input_data = input.data();
    let weight_data = weight.data();
    let n_dim = out_h * out_w;
    let k_dim = in_c * kh * kw;
    let mut out = vec![0.0f32; out_c * n_dim];
    if let Some(b) = bias {
        for (row, &bv) in out.chunks_mut(n_dim).zip(b.data().iter()) {
            row.fill(bv);
        }
    }
    let pad = params.padding;
    if (kh, kw) == (1, 1)
        && params.stride == (1, 1)
        && (pad.top, pad.bottom, pad.left, pad.right) == (0, 0, 0, 0)
    {
        // Pointwise conv: the input already is the im2col matrix.
        gemm::gemm(out_c, n_dim, k_dim, weight_data, input_data, &mut out);
    } else {
        // The column matrix is per-thread scratch: reused across layers and
        // queries, so steady-state conv allocates nothing but its output.
        let mut col = scratch::take(scratch::Site::Im2col);
        gemm::im2col(
            input_data,
            in_c,
            in_h,
            in_w,
            params.kernel,
            params.stride,
            pad.top,
            pad.left,
            (out_h, out_w),
            &mut col,
        );
        gemm::gemm(out_c, n_dim, k_dim, weight_data, &col, &mut out);
        scratch::put(scratch::Site::Im2col, col);
    }
    Tensor::from_vec(Shape::new(vec![out_c, out_h, out_w]), out)
}

/// Allocation-free convolution over raw buffers with a pre-packed filter
/// bank — the compiled-partition hot path. `input` is `CHW` data with the
/// given dimensions, `packed` is the `[out_c, in_c·kh·kw]` weight matrix
/// packed once via [`gemm::PackedA::pack`], `bias` has `out_c` entries, and
/// `out` must be exactly `out_c · out_h · out_w` long for the `out_hw`
/// implied by `params` (callers precompute it via [`conv2d_output_hw`]).
///
/// Bit-identical to [`conv2d`] on the same operands: the bias pre-initializes
/// the output and the packed GEMM accumulates in the same ascending-`k`
/// order. The im2col matrix lives in per-thread scratch, so a warmed thread
/// performs no heap allocation here.
///
/// # Panics
///
/// Panics if buffer lengths are inconsistent with the dimensions.
#[allow(clippy::too_many_arguments)]
pub fn conv2d_packed_into(
    input: &[f32],
    in_c: usize,
    in_h: usize,
    in_w: usize,
    packed: &gemm::PackedA,
    bias: &[f32],
    params: &Conv2dParams,
    out_hw: (usize, usize),
    out: &mut [f32],
) {
    let (kh, kw) = params.kernel;
    let (out_h, out_w) = out_hw;
    let out_c = packed.m();
    let n_dim = out_h * out_w;
    let k_dim = in_c * kh * kw;
    assert_eq!(input.len(), in_c * in_h * in_w, "input must be CHW");
    assert_eq!(
        packed.k(),
        k_dim,
        "packed weights must be [out_c, in_c*kh*kw]"
    );
    assert_eq!(bias.len(), out_c, "bias must be [out_c]");
    assert_eq!(out.len(), out_c * n_dim, "out must be out_c*out_h*out_w");
    for (row, &bv) in out.chunks_mut(n_dim).zip(bias.iter()) {
        row.fill(bv);
    }
    let pad = params.padding;
    if (kh, kw) == (1, 1)
        && params.stride == (1, 1)
        && (pad.top, pad.bottom, pad.left, pad.right) == (0, 0, 0, 0)
    {
        gemm::gemm_packed(packed, n_dim, input, out);
    } else {
        let mut col = scratch::take(scratch::Site::Im2col);
        gemm::im2col(
            input,
            in_c,
            in_h,
            in_w,
            params.kernel,
            params.stride,
            pad.top,
            pad.left,
            out_hw,
            &mut col,
        );
        gemm::gemm_packed(packed, n_dim, &col, out);
        scratch::put(scratch::Site::Im2col, col);
    }
}

/// Batched [`conv2d_packed_into`]: convolves `batch` CHW inputs (laid out
/// back to back in `inputs`) against one pre-packed filter bank with a
/// *single* widened GEMM. The im2col lowerings of all items are assembled
/// side by side into one `k × (batch·out_hw)` B matrix
/// ([`gemm::im2col_strided`]), so the packed weight panels are streamed once
/// per `NC` column block instead of once per query — the compute
/// amortization the batching perf model prices.
///
/// Bit-identical to `batch` sequential [`conv2d_packed_into`] calls on the
/// same operands, at any thread count: every output element accumulates in
/// the same ascending-`k` order with position-independent rounding (the
/// SIMD kernels use fused multiply-adds in tiles *and* tails, so a column's
/// rounding does not depend on where it lands in the widened matrix).
///
/// `batch == 1` delegates to [`conv2d_packed_into`] directly — no widened
/// scratch is touched, so the single-query warm path is exactly the pre-batch
/// code path.
///
/// All working memory comes from per-thread scratch sites
/// ([`scratch::Site::BatchCol`] / [`scratch::Site::BatchOut`]); once those
/// have grown to the largest batch served, later batched queries allocate
/// nothing.
///
/// # Panics
///
/// Panics if buffer lengths are inconsistent with the dimensions.
#[allow(clippy::too_many_arguments)]
pub fn conv2d_packed_batched_into(
    inputs: &[f32],
    batch: usize,
    in_c: usize,
    in_h: usize,
    in_w: usize,
    packed: &gemm::PackedA,
    bias: &[f32],
    params: &Conv2dParams,
    out_hw: (usize, usize),
    outs: &mut [f32],
) {
    let (kh, kw) = params.kernel;
    let (out_h, out_w) = out_hw;
    let out_c = packed.m();
    let n_dim = out_h * out_w;
    let k_dim = in_c * kh * kw;
    let in_len = in_c * in_h * in_w;
    let out_len = out_c * n_dim;
    assert_eq!(inputs.len(), batch * in_len, "inputs must be batch CHW");
    assert_eq!(outs.len(), batch * out_len, "outs must be batch outputs");
    assert_eq!(bias.len(), out_c, "bias must be [out_c]");
    assert_eq!(packed.k(), k_dim, "packed weights must match the kernel");
    if batch == 0 {
        return;
    }
    if batch == 1 {
        conv2d_packed_into(inputs, in_c, in_h, in_w, packed, bias, params, out_hw, outs);
        return;
    }
    let nt = batch * n_dim;
    // Widened B: every item's im2col lowering, side by side.
    let mut col = scratch::take(scratch::Site::BatchCol);
    col.clear();
    col.resize(k_dim * nt, 0.0);
    let pad = params.padding;
    let pointwise = (kh, kw) == (1, 1)
        && params.stride == (1, 1)
        && (pad.top, pad.bottom, pad.left, pad.right) == (0, 0, 0, 0);
    for (i, input) in inputs.chunks_exact(in_len).enumerate() {
        if pointwise {
            // The input already is the column matrix (k_dim == in_c rows of
            // n_dim values); copy its rows into the widened layout.
            for (r, src) in input.chunks_exact(n_dim).enumerate() {
                col[r * nt + i * n_dim..r * nt + (i + 1) * n_dim].copy_from_slice(src);
            }
        } else {
            gemm::im2col_strided(
                input,
                in_c,
                in_h,
                in_w,
                params.kernel,
                params.stride,
                pad.top,
                pad.left,
                out_hw,
                &mut col,
                nt,
                i * n_dim,
            );
        }
    }
    // Widened C, bias-preinitialized exactly like the per-query path.
    let mut wide = scratch::take(scratch::Site::BatchOut);
    wide.clear();
    wide.resize(out_c * nt, 0.0);
    for (row, &bv) in wide.chunks_mut(nt).zip(bias.iter()) {
        row.fill(bv);
    }
    gemm::gemm_packed(packed, nt, &col, &mut wide);
    // Scatter each item's columns back to its own CHW output.
    for (i, out) in outs.chunks_exact_mut(out_len).enumerate() {
        for (r, dst) in out.chunks_exact_mut(n_dim).enumerate() {
            dst.copy_from_slice(&wide[r * nt + i * n_dim..r * nt + (i + 1) * n_dim]);
        }
    }
    scratch::put(scratch::Site::BatchCol, col);
    scratch::put(scratch::Site::BatchOut, wide);
}

/// Quantized convolution over raw buffers — the hot path of partitions
/// compiled with int8 weights. Mirrors [`conv2d_packed_into`] but the
/// filter bank is a [`crate::quant::QuantizedMatrix`] (per-output-channel
/// scales, quantized once at compile time); the im2col activations are
/// quantized per-tensor on the fly inside [`crate::quant::qgemm`] and the
/// int8×int8 products accumulate exactly in `i32`. Output error is bounded
/// by the quantization steps (see the `quant` module docs); determinism is
/// exact for any thread count.
///
/// All working memory (im2col column matrix, int8 activation transpose)
/// comes from per-thread scratch, so a warmed thread allocates nothing.
///
/// # Panics
///
/// Panics if buffer lengths are inconsistent with the dimensions.
#[allow(clippy::too_many_arguments)]
pub fn conv2d_quantized_into(
    input: &[f32],
    in_c: usize,
    in_h: usize,
    in_w: usize,
    qweights: &crate::quant::QuantizedMatrix,
    bias: &[f32],
    params: &Conv2dParams,
    out_hw: (usize, usize),
    out: &mut [f32],
) {
    let (kh, kw) = params.kernel;
    let (out_h, out_w) = out_hw;
    let out_c = qweights.rows();
    let n_dim = out_h * out_w;
    let k_dim = in_c * kh * kw;
    assert_eq!(input.len(), in_c * in_h * in_w, "input must be CHW");
    assert_eq!(
        qweights.cols(),
        k_dim,
        "quantized weights must be [out_c, in_c*kh*kw]"
    );
    assert_eq!(bias.len(), out_c, "bias must be [out_c]");
    assert_eq!(out.len(), out_c * n_dim, "out must be out_c*out_h*out_w");
    for (row, &bv) in out.chunks_mut(n_dim).zip(bias.iter()) {
        row.fill(bv);
    }
    let pad = params.padding;
    if (kh, kw) == (1, 1)
        && params.stride == (1, 1)
        && (pad.top, pad.bottom, pad.left, pad.right) == (0, 0, 0, 0)
    {
        crate::quant::qgemm(qweights, n_dim, input, out);
    } else {
        let mut col = scratch::take(scratch::Site::Im2col);
        gemm::im2col(
            input,
            in_c,
            in_h,
            in_w,
            params.kernel,
            params.stride,
            pad.top,
            pad.left,
            out_hw,
            &mut col,
        );
        crate::quant::qgemm(qweights, n_dim, &col, out);
        scratch::put(scratch::Site::Im2col, col);
    }
}

/// Reference 6-loop convolution the GEMM path is validated against: same
/// validation, bias-first accumulation in ascending (ic, ky, kx) tap order,
/// skipping out-of-bounds taps.
#[cfg(test)]
pub(crate) fn conv2d_naive(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    params: &Conv2dParams,
) -> Result<Tensor> {
    let in_dims = input.shape().dims();
    let w_dims = weight.shape().dims();
    let (in_c, in_h, in_w) = (in_dims[0], in_dims[1], in_dims[2]);
    let (out_c, kh, kw) = (w_dims[0], w_dims[2], w_dims[3]);
    let (out_h, out_w) = conv2d_output_hw((in_h, in_w), params).unwrap();
    let (sh, sw) = params.stride;
    let pt = params.padding.top as isize;
    let pl = params.padding.left as isize;
    let in_plane = in_h * in_w;
    let k_plane = kh * kw;
    let w_per_out = in_c * k_plane;
    let input_data = input.data();
    let weight_data = weight.data();

    let mut out = vec![0.0f32; out_c * out_h * out_w];
    for oc in 0..out_c {
        let w_base = oc * w_per_out;
        let b = bias.map(|b| b.data()[oc]).unwrap_or(0.0);
        for oy in 0..out_h {
            let iy0 = (oy * sh) as isize - pt;
            for ox in 0..out_w {
                let ix0 = (ox * sw) as isize - pl;
                let mut acc = b;
                for ic in 0..in_c {
                    let in_base = ic * in_plane;
                    let wk_base = w_base + ic * k_plane;
                    for ky in 0..kh {
                        let iy = iy0 + ky as isize;
                        if iy < 0 || iy >= in_h as isize {
                            continue;
                        }
                        let row = in_base + iy as usize * in_w;
                        let wrow = wk_base + ky * kw;
                        for kx in 0..kw {
                            let ix = ix0 + kx as isize;
                            if ix < 0 || ix >= in_w as isize {
                                continue;
                            }
                            acc += input_data[row + ix as usize] * weight_data[wrow + kx];
                        }
                    }
                }
                out[oc * out_h * out_w + oy * out_w + ox] = acc;
            }
        }
    }
    Tensor::from_vec(Shape::new(vec![out_c, out_h, out_w]), out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn t(shape: Vec<usize>, data: Vec<f32>) -> Tensor {
        Tensor::from_vec(Shape::new(shape), data).unwrap()
    }

    fn pseudo(i: usize, seed: u32) -> f32 {
        ((i as u32 ^ seed).wrapping_mul(2654435761) % 2001) as f32 * 1e-3 - 1.0
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn gemm_path_matches_naive_reference(
            (in_c, out_c) in (1usize..5, 1usize..5),
            (in_h, in_w) in (3usize..10, 3usize..10),
            kernel in 1usize..4,
            stride in 1usize..3,
            pad in 0usize..2,
            seed in 0u32..1000,
        ) {
            let params = Conv2dParams::square(kernel, stride, pad);
            prop_assume!(conv2d_output_hw((in_h, in_w), &params).is_some());
            let input =
                Tensor::from_fn(Shape::new(vec![in_c, in_h, in_w]), |i| pseudo(i, seed));
            let weight = Tensor::from_fn(Shape::new(vec![out_c, in_c, kernel, kernel]), |i| {
                pseudo(i, seed ^ 0xbeef)
            });
            let bias = Tensor::from_fn(Shape::new(vec![out_c]), |i| pseudo(i, seed ^ 0x77));
            let fast = conv2d(&input, &weight, Some(&bias), &params).unwrap();
            let naive = conv2d_naive(&input, &weight, Some(&bias), &params).unwrap();
            // The im2col+GEMM path preserves the reference accumulation
            // order, so the match is exact (up to the sign of zero) in
            // scalar mode. With the SIMD kernels active, FMA rounding
            // diverges within the documented bound (DESIGN.md §12).
            let tol = if crate::simd::simd_active() { 1e-3 } else { 0.0 };
            prop_assert!(fast.max_abs_diff(&naive).unwrap() <= tol);
        }

        #[test]
        fn packed_into_path_is_bit_identical(
            (in_c, out_c) in (1usize..5, 1usize..7),
            (in_h, in_w) in (3usize..10, 3usize..10),
            kernel in 1usize..4,
            stride in 1usize..3,
            pad in 0usize..2,
            seed in 0u32..1000,
        ) {
            let params = Conv2dParams::square(kernel, stride, pad);
            prop_assume!(conv2d_output_hw((in_h, in_w), &params).is_some());
            let input =
                Tensor::from_fn(Shape::new(vec![in_c, in_h, in_w]), |i| pseudo(i, seed));
            let weight = Tensor::from_fn(Shape::new(vec![out_c, in_c, kernel, kernel]), |i| {
                pseudo(i, seed ^ 0xbeef)
            });
            let bias = Tensor::from_fn(Shape::new(vec![out_c]), |i| pseudo(i, seed ^ 0x77));
            let want = conv2d(&input, &weight, Some(&bias), &params).unwrap();
            let out_hw = conv2d_output_hw((in_h, in_w), &params).unwrap();
            let packed =
                gemm::PackedA::pack(out_c, in_c * kernel * kernel, weight.data());
            let mut out = vec![0.0f32; out_c * out_hw.0 * out_hw.1];
            conv2d_packed_into(
                input.data(), in_c, in_h, in_w, &packed, bias.data(), &params, out_hw, &mut out,
            );
            if crate::simd::simd_active() {
                // Packed (micro-tile FMA) and unpacked (axpy FMA) kernels
                // sweep differently, so SIMD mode agrees to the documented
                // rounding bound rather than bitwise.
                prop_assert!(
                    want.data().iter().zip(out.iter()).all(|(w, g)| (w - g).abs() <= 1e-3)
                );
            } else {
                prop_assert_eq!(
                    want.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    out.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
                );
            }
        }

        /// Batched conv over a widened B matrix is bit-identical to running
        /// the packed per-query kernel once per item — in scalar and SIMD
        /// mode alike (see the widened-B GEMM proptest in `gemm` for the
        /// kernel-level argument). Covers the pointwise fast path whenever
        /// kernel = stride = 1 and pad = 0 is drawn.
        #[test]
        fn batched_packed_path_is_bit_identical_to_sequential(
            (in_c, out_c) in (1usize..5, 1usize..7),
            (in_h, in_w) in (3usize..9, 3usize..9),
            kernel in 1usize..4,
            stride in 1usize..3,
            pad in 0usize..2,
            batch_sel in 0usize..3,
            seed in 0u32..1000,
        ) {
            let batch = [2usize, 3, 8][batch_sel];
            let params = Conv2dParams::square(kernel, stride, pad);
            prop_assume!(conv2d_output_hw((in_h, in_w), &params).is_some());
            let out_hw = conv2d_output_hw((in_h, in_w), &params).unwrap();
            let in_len = in_c * in_h * in_w;
            let out_len = out_c * out_hw.0 * out_hw.1;
            let inputs: Vec<f32> =
                (0..batch * in_len).map(|i| pseudo(i, seed ^ 0x51)).collect();
            let weight: Vec<f32> = (0..out_c * in_c * kernel * kernel)
                .map(|i| pseudo(i, seed ^ 0xbeef))
                .collect();
            let bias: Vec<f32> = (0..out_c).map(|i| pseudo(i, seed ^ 0x77)).collect();
            let packed = gemm::PackedA::pack(out_c, in_c * kernel * kernel, &weight);
            let mut seq = vec![0.0f32; batch * out_len];
            for (x, out) in inputs.chunks(in_len).zip(seq.chunks_mut(out_len)) {
                conv2d_packed_into(x, in_c, in_h, in_w, &packed, &bias, &params, out_hw, out);
            }
            let mut batched = vec![0.0f32; batch * out_len];
            conv2d_packed_batched_into(
                &inputs, batch, in_c, in_h, in_w, &packed, &bias, &params, out_hw, &mut batched,
            );
            prop_assert_eq!(
                seq.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                batched.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
        }

        /// The int8 path tracks the f32 convolution within the quantization
        /// error bound: `k` taps each losing at most half a step from the
        /// weight and half from the activation (see `quant` module docs).
        #[test]
        fn quantized_path_tracks_f32_within_bound(
            (in_c, out_c) in (1usize..5, 1usize..7),
            (in_h, in_w) in (3usize..10, 3usize..10),
            kernel in 1usize..4,
            stride in 1usize..3,
            pad in 0usize..2,
            seed in 0u32..1000,
        ) {
            let params = Conv2dParams::square(kernel, stride, pad);
            prop_assume!(conv2d_output_hw((in_h, in_w), &params).is_some());
            let input =
                Tensor::from_fn(Shape::new(vec![in_c, in_h, in_w]), |i| pseudo(i, seed));
            let weight = Tensor::from_fn(Shape::new(vec![out_c, in_c, kernel, kernel]), |i| {
                pseudo(i, seed ^ 0xbeef)
            });
            let bias = Tensor::from_fn(Shape::new(vec![out_c]), |i| pseudo(i, seed ^ 0x77));
            let want = conv2d(&input, &weight, Some(&bias), &params).unwrap();
            let out_hw = conv2d_output_hw((in_h, in_w), &params).unwrap();
            let k_dim = in_c * kernel * kernel;
            let q = crate::quant::QuantizedMatrix::quantize(out_c, k_dim, weight.data());
            let mut out = vec![0.0f32; out_c * out_hw.0 * out_hw.1];
            conv2d_quantized_into(
                input.data(), in_c, in_h, in_w, &q, bias.data(), &params, out_hw, &mut out,
            );
            // |w|, |x| <= 1 here, so each tap errs by at most ~1/127 and
            // the sum by k/100 with margin.
            let tol = k_dim as f32 / 100.0 + 1e-4;
            for (got, want) in out.iter().zip(want.data()) {
                prop_assert!((got - want).abs() <= tol, "{} vs {} (tol {})", got, want, tol);
            }
        }
    }

    #[test]
    fn output_size_formula() {
        let p = Conv2dParams::square(3, 1, 1);
        assert_eq!(conv2d_output_hw((8, 8), &p), Some((8, 8)));
        let p = Conv2dParams::square(3, 2, 1);
        assert_eq!(conv2d_output_hw((8, 8), &p), Some((4, 4)));
        let p = Conv2dParams::square(7, 2, 3);
        assert_eq!(conv2d_output_hw((224, 224), &p), Some((112, 112)));
        let p = Conv2dParams::square(5, 1, 0);
        assert_eq!(conv2d_output_hw((3, 3), &p), None);
    }

    #[test]
    fn identity_kernel_reproduces_input() {
        // 1x1 kernel with weight 1 is the identity for a single channel.
        let input = t(vec![1, 3, 3], (1..=9).map(|x| x as f32).collect());
        let weight = t(vec![1, 1, 1, 1], vec![1.0]);
        let out = conv2d(&input, &weight, None, &Conv2dParams::square(1, 1, 0)).unwrap();
        assert_eq!(out, input);
    }

    #[test]
    fn known_3x3_convolution() {
        // All-ones 3x3 kernel over an all-ones 3x3 input, no padding:
        // single output = 9.
        let input = Tensor::full(Shape::new(vec![1, 3, 3]), 1.0);
        let weight = Tensor::full(Shape::new(vec![1, 1, 3, 3]), 1.0);
        let out = conv2d(&input, &weight, None, &Conv2dParams::square(3, 1, 0)).unwrap();
        assert_eq!(out.shape().dims(), &[1, 1, 1]);
        assert_eq!(out.data(), &[9.0]);
    }

    #[test]
    fn padding_contributes_zeros() {
        let input = Tensor::full(Shape::new(vec![1, 1, 1]), 2.0);
        let weight = Tensor::full(Shape::new(vec![1, 1, 3, 3]), 1.0);
        let out = conv2d(&input, &weight, None, &Conv2dParams::square(3, 1, 1)).unwrap();
        // Only the centre tap sees the input.
        assert_eq!(out.shape().dims(), &[1, 1, 1]);
        assert_eq!(out.data(), &[2.0]);
    }

    #[test]
    fn bias_is_added_per_output_channel() {
        let input = Tensor::zeros(Shape::new(vec![1, 2, 2]));
        let weight = Tensor::zeros(Shape::new(vec![2, 1, 1, 1]));
        let bias = t(vec![2], vec![0.5, -1.5]);
        let out = conv2d(&input, &weight, Some(&bias), &Conv2dParams::square(1, 1, 0)).unwrap();
        assert_eq!(out.shape().dims(), &[2, 2, 2]);
        assert_eq!(&out.data()[..4], &[0.5; 4]);
        assert_eq!(&out.data()[4..], &[-1.5; 4]);
    }

    #[test]
    fn multi_channel_accumulates() {
        // Two input channels of constants 1 and 10; 1x1 weights 2 and 3
        // => every output = 1*2 + 10*3 = 32.
        let mut input = Tensor::zeros(Shape::new(vec![2, 2, 2]));
        for i in 0..4 {
            input.data_mut()[i] = 1.0;
            input.data_mut()[4 + i] = 10.0;
        }
        let weight = t(vec![1, 2, 1, 1], vec![2.0, 3.0]);
        let out = conv2d(&input, &weight, None, &Conv2dParams::square(1, 1, 0)).unwrap();
        assert!(out.data().iter().all(|&x| x == 32.0));
    }

    #[test]
    fn asymmetric_padding_equivalence_on_split() {
        // Convolving the full input with symmetric padding must equal
        // convolving halo-extended halves with one-sided padding, stitched.
        let input = Tensor::from_fn(Shape::new(vec![2, 6, 5]), |i| (i as f32).sin());
        let weight = Tensor::from_fn(Shape::new(vec![3, 2, 3, 3]), |i| (i as f32 * 0.1).cos());
        let full = conv2d(&input, &weight, None, &Conv2dParams::square(3, 1, 1)).unwrap();

        // Split output rows 0..3 and 3..6. With k=3, s=1, p=1 the first part
        // needs input rows 0..4 (pad top only), second needs rows 2..6 (pad
        // bottom only).
        let top = input.slice(1, 0..4).unwrap();
        let bot = input.slice(1, 2..6).unwrap();
        let p_top = Conv2dParams {
            kernel: (3, 3),
            stride: (1, 1),
            padding: Padding {
                top: 1,
                bottom: 0,
                left: 1,
                right: 1,
            },
        };
        let p_bot = Conv2dParams {
            kernel: (3, 3),
            stride: (1, 1),
            padding: Padding {
                top: 0,
                bottom: 1,
                left: 1,
                right: 1,
            },
        };
        let out_top = conv2d(&top, &weight, None, &p_top).unwrap();
        let out_bot = conv2d(&bot, &weight, None, &p_bot).unwrap();
        let stitched = Tensor::concat(&[out_top, out_bot], 1).unwrap();
        assert!(full.max_abs_diff(&stitched).unwrap() < 1e-5);
    }

    #[test]
    fn channel_partition_equivalence() {
        // Partitioning output channels: each worker applies a subset of
        // filters to the whole input; concat along channel dim reproduces it.
        let input = Tensor::from_fn(Shape::new(vec![3, 4, 4]), |i| i as f32 * 0.01);
        let weight = Tensor::from_fn(Shape::new(vec![4, 3, 3, 3]), |i| (i % 7) as f32 * 0.1);
        let params = Conv2dParams::square(3, 1, 1);
        let full = conv2d(&input, &weight, None, &params).unwrap();
        let w0 = weight.slice(0, 0..2).unwrap();
        let w1 = weight.slice(0, 2..4).unwrap();
        let o0 = conv2d(&input, &w0, None, &params).unwrap();
        let o1 = conv2d(&input, &w1, None, &params).unwrap();
        let stitched = Tensor::concat(&[o0, o1], 0).unwrap();
        assert!(full.max_abs_diff(&stitched).unwrap() < 1e-6);
    }

    #[test]
    fn rejects_inconsistent_shapes() {
        let input = Tensor::zeros(Shape::new(vec![2, 4, 4]));
        let weight = Tensor::zeros(Shape::new(vec![1, 3, 3, 3]));
        assert!(conv2d(&input, &weight, None, &Conv2dParams::square(3, 1, 1)).is_err());
        let bad_rank = Tensor::zeros(Shape::new(vec![4, 4]));
        let w = Tensor::zeros(Shape::new(vec![1, 2, 3, 3]));
        assert!(conv2d(&bad_rank, &w, None, &Conv2dParams::square(3, 1, 1)).is_err());
    }
}
