//! Tensor shapes: dimension lists with row-major stride math.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::TensorError;

/// The shape of a dense, row-major tensor.
///
/// A shape is an ordered list of dimension sizes. Rank-0 shapes (scalars) are
/// permitted and have `len() == 1`.
///
/// # Examples
///
/// ```
/// use gillis_tensor::Shape;
///
/// let s = Shape::new(vec![3, 224, 224]);
/// assert_eq!(s.rank(), 3);
/// assert_eq!(s.len(), 3 * 224 * 224);
/// assert_eq!(s.strides(), vec![224 * 224, 224, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from a list of dimension sizes.
    pub fn new(dims: Vec<usize>) -> Self {
        Shape(dims)
    }

    /// Creates the scalar (rank-0) shape.
    pub fn scalar() -> Self {
        Shape(Vec::new())
    }

    /// The number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// The total number of elements.
    pub fn len(&self) -> usize {
        self.0.iter().product()
    }

    /// Whether the shape contains zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The dimension sizes.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// The size of dimension `dim`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DimOutOfRange`] if `dim >= rank`.
    pub fn dim(&self, dim: usize) -> Result<usize, TensorError> {
        self.0.get(dim).copied().ok_or(TensorError::DimOutOfRange {
            dim,
            rank: self.rank(),
        })
    }

    /// Row-major strides: the element distance between consecutive indices of
    /// each dimension.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1; self.0.len()];
        for i in (0..self.0.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Converts a multi-index into a flat row-major offset.
    ///
    /// # Panics
    ///
    /// Debug-asserts that the index is in bounds; release builds compute the
    /// offset unchecked for speed (used on hot kernel paths).
    pub fn offset(&self, index: &[usize]) -> usize {
        debug_assert_eq!(index.len(), self.0.len(), "index rank mismatch");
        let mut off = 0;
        let mut stride = 1;
        for (i, (&idx, &size)) in index.iter().zip(self.0.iter()).enumerate().rev() {
            debug_assert!(idx < size, "index {idx} out of bounds for dim {i} ({size})");
            let _ = i;
            off += idx * stride;
            stride *= size;
        }
        off
    }

    /// Returns a new shape with dimension `dim` replaced by `size`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DimOutOfRange`] if `dim >= rank`.
    pub fn with_dim(&self, dim: usize, size: usize) -> Result<Shape, TensorError> {
        if dim >= self.rank() {
            return Err(TensorError::DimOutOfRange {
                dim,
                rank: self.rank(),
            });
        }
        let mut dims = self.0.clone();
        dims[dim] = size;
        Ok(Shape(dims))
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape::new(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_shape_has_one_element() {
        let s = Shape::scalar();
        assert_eq!(s.rank(), 0);
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
    }

    #[test]
    fn strides_are_row_major() {
        let s = Shape::new(vec![2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
    }

    #[test]
    fn offset_matches_manual_computation() {
        let s = Shape::new(vec![2, 3, 4]);
        assert_eq!(s.offset(&[0, 0, 0]), 0);
        assert_eq!(s.offset(&[1, 2, 3]), 12 + 8 + 3);
        assert_eq!(s.offset(&[0, 1, 1]), 5);
    }

    #[test]
    fn dim_out_of_range_is_reported() {
        let s = Shape::new(vec![2, 3]);
        assert_eq!(s.dim(1), Ok(3));
        assert!(matches!(s.dim(2), Err(TensorError::DimOutOfRange { .. })));
    }

    #[test]
    fn with_dim_replaces_only_one_dimension() {
        let s = Shape::new(vec![2, 3, 4]);
        let t = s.with_dim(1, 7).unwrap();
        assert_eq!(t.dims(), &[2, 7, 4]);
        assert_eq!(s.dims(), &[2, 3, 4]);
        assert!(s.with_dim(3, 1).is_err());
    }

    #[test]
    fn zero_sized_dimension_makes_empty_shape() {
        let s = Shape::new(vec![4, 0, 2]);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn display_lists_dims() {
        assert_eq!(Shape::new(vec![3, 5]).to_string(), "[3, 5]");
        assert_eq!(Shape::scalar().to_string(), "[]");
    }
}
