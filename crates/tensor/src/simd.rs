//! Explicit-width SIMD micro-kernels behind the `simd` cargo feature.
//!
//! The scalar kernels in [`crate::gemm`] carry the repo's bit-identity
//! contract; these AVX2/FMA variants trade that exactness for speed. Each
//! SIMD kernel keeps the *structural* guarantees — every output element is
//! owned by one thread and accumulated in ascending-`k` order over the same
//! cache blocks — so results are still bit-identical across `GILLIS_THREADS`
//! settings and across repeated runs. What changes is the rounding: fused
//! multiply-add contracts `a*b + c` into one correctly-rounded operation,
//! so SIMD outputs differ from the scalar kernels by normal f32 rounding
//! (bounded by the relative-error proptests in `gemm.rs`).
//!
//! # Dispatch
//!
//! [`simd_active`] gates every call site. It is `false` unless all of:
//!
//! 1. the crate was built with `--features simd`,
//! 2. the target is `x86_64` and the CPU reports AVX2 + FMA at runtime
//!    (checked once, cached in a [`OnceLock`](std::sync::OnceLock)),
//! 3. the `GILLIS_NO_SIMD` environment variable is unset.
//!
//! Anything else falls back to the scalar kernels transparently — same
//! public API, same shapes, no caller changes. On non-x86_64 targets the
//! feature compiles but stays scalar (NEON kernels are a documented gap:
//! this reproduction's CI hosts are x86_64 only).
//!
//! The int8 dot-product kernel ([`dot_i8`]) is different: integer addition
//! is associative, so its AVX2 and scalar paths are *exactly* equal and it
//! needs no accuracy relaxation — only the f32 kernels do.

/// Returns whether the SIMD kernels are compiled in, supported by the CPU,
/// and not disabled via `GILLIS_NO_SIMD`. Cached after the first call.
#[inline]
pub fn simd_active() -> bool {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        use std::sync::OnceLock;
        static ACTIVE: OnceLock<bool> = OnceLock::new();
        *ACTIVE.get_or_init(|| {
            std::env::var_os("GILLIS_NO_SIMD").is_none()
                && is_x86_feature_detected!("avx2")
                && is_x86_feature_detected!("fma")
        })
    }
    #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
    {
        false
    }
}

/// Signed-int8 dot product `sum(a[i] as i32 * b[i] as i32)`.
///
/// Exact in both paths (integer accumulation); the AVX2 path widens 16
/// lanes at a time through `madd_epi16`. The caller bounds `a.len()` so the
/// i32 lane accumulators cannot overflow (see `quant::MAX_QUANT_K`).
#[inline]
pub fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
    debug_assert_eq!(a.len(), b.len());
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if simd_active() {
        // SAFETY: simd_active() verified AVX2 support at runtime.
        return unsafe { dot_i8_avx2(a, b) };
    }
    dot_i8_scalar(a, b)
}

#[inline]
fn dot_i8_scalar(a: &[i8], b: &[i8]) -> i32 {
    a.iter()
        .zip(b.iter())
        .map(|(&x, &y)| x as i32 * y as i32)
        .sum()
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod avx2 {
    use super::dot_i8_scalar;
    use std::arch::x86_64::*;

    /// AVX2 int8 dot product: sign-extend 16 bytes per operand to i16,
    /// `madd` adjacent pairs into 8 i32 lanes, accumulate lanes, then a
    /// horizontal add. Integer adds are associative, so this equals the
    /// scalar loop bit-for-bit.
    #[target_feature(enable = "avx2")]
    pub unsafe fn dot_i8_avx2(a: &[i8], b: &[i8]) -> i32 {
        let len = a.len();
        let mut acc = _mm256_setzero_si256();
        let mut i = 0;
        while i + 16 <= len {
            let va = _mm256_cvtepi8_epi16(_mm_loadu_si128(a.as_ptr().add(i) as *const __m128i));
            let vb = _mm256_cvtepi8_epi16(_mm_loadu_si128(b.as_ptr().add(i) as *const __m128i));
            acc = _mm256_add_epi32(acc, _mm256_madd_epi16(va, vb));
            i += 16;
        }
        let mut lanes = [0i32; 8];
        _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, acc);
        let mut total: i32 = lanes.iter().sum();
        total += dot_i8_scalar(&a[i..], &b[i..]);
        total
    }

    /// FMA variant of the 4×8 packed micro-kernel (`gemm::packed_micro_4`):
    /// the 8 register-tile columns map one-to-one onto AVX lanes, four
    /// accumulator vectors sweep the `KC` block in ascending-`k` order.
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn packed_micro_4_fma(
        panel: &[f32],
        kc: usize,
        k0: usize,
        n: usize,
        nb: usize,
        nend: usize,
        b: &[f32],
        c_rows: &mut [f32],
    ) {
        const NR: usize = 8;
        let (c0, rest) = c_rows.split_at_mut(n);
        let (c1, rest) = rest.split_at_mut(n);
        let (c2, c3) = rest.split_at_mut(n);
        let mut j = nb;
        while j + NR <= nend {
            let mut v0 = _mm256_loadu_ps(c0.as_ptr().add(j));
            let mut v1 = _mm256_loadu_ps(c1.as_ptr().add(j));
            let mut v2 = _mm256_loadu_ps(c2.as_ptr().add(j));
            let mut v3 = _mm256_loadu_ps(c3.as_ptr().add(j));
            for kk in 0..kc {
                let ap = panel.as_ptr().add(kk * 4);
                let vb = _mm256_loadu_ps(b.as_ptr().add((k0 + kk) * n + j));
                v0 = _mm256_fmadd_ps(_mm256_set1_ps(*ap), vb, v0);
                v1 = _mm256_fmadd_ps(_mm256_set1_ps(*ap.add(1)), vb, v1);
                v2 = _mm256_fmadd_ps(_mm256_set1_ps(*ap.add(2)), vb, v2);
                v3 = _mm256_fmadd_ps(_mm256_set1_ps(*ap.add(3)), vb, v3);
            }
            _mm256_storeu_ps(c0.as_mut_ptr().add(j), v0);
            _mm256_storeu_ps(c1.as_mut_ptr().add(j), v1);
            _mm256_storeu_ps(c2.as_mut_ptr().add(j), v2);
            _mm256_storeu_ps(c3.as_mut_ptr().add(j), v3);
            j += NR;
        }
        // Column tail: scalar *fused* multiply-add, one element of each row
        // per step. Using `mul_add` keeps the tail's rounding identical to
        // the 8-wide FMA tiles, so an output element rounds the same way
        // regardless of its column position mod 8 — the property that makes
        // batched GEMM over a widened B matrix bit-identical to the
        // per-query calls it replaces (columns shift position when batches
        // are laid side by side).
        while j < nend {
            let mut a0 = c0[j];
            let mut a1 = c1[j];
            let mut a2 = c2[j];
            let mut a3 = c3[j];
            for kk in 0..kc {
                let ap = &panel[kk * 4..kk * 4 + 4];
                let bv = b[(k0 + kk) * n + j];
                a0 = ap[0].mul_add(bv, a0);
                a1 = ap[1].mul_add(bv, a1);
                a2 = ap[2].mul_add(bv, a2);
                a3 = ap[3].mul_add(bv, a3);
            }
            c0[j] = a0;
            c1[j] = a1;
            c2[j] = a2;
            c3[j] = a3;
            j += 1;
        }
    }

    /// FMA variant of the remainder micro-kernel (`gemm::packed_micro_rem`,
    /// fewer than 4 rows in a block). Uses the *same* per-element operation
    /// history as `packed_micro_4_fma` — 8-wide FMA tiles from `nb` with a
    /// scalar fused-multiply-add column tail — so an output element rounds
    /// identically whether its row lands in a full or remainder block, and
    /// identically at every column position. That keeps SIMD results
    /// bit-identical across thread counts, across the packed/unpacked entry
    /// points, and across batched (widened-B) and per-query execution.
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn packed_micro_rem_fma(
        panel: &[f32],
        bh: usize,
        kc: usize,
        k0: usize,
        n: usize,
        nb: usize,
        nend: usize,
        b: &[f32],
        c_rows: &mut [f32],
    ) {
        const NR: usize = 8;
        for r in 0..bh {
            let c_row = &mut c_rows[r * n..(r + 1) * n];
            let mut j = nb;
            while j + NR <= nend {
                let mut vc = _mm256_loadu_ps(c_row.as_ptr().add(j));
                for kk in 0..kc {
                    let va = _mm256_set1_ps(panel[kk * bh + r]);
                    let vb = _mm256_loadu_ps(b.as_ptr().add((k0 + kk) * n + j));
                    vc = _mm256_fmadd_ps(va, vb, vc);
                }
                _mm256_storeu_ps(c_row.as_mut_ptr().add(j), vc);
                j += NR;
            }
            while j < nend {
                let mut acc = c_row[j];
                for kk in 0..kc {
                    // Fused, like the tiles and like `packed_micro_4_fma`'s
                    // tail: column position must not change rounding.
                    acc = panel[kk * bh + r].mul_add(b[(k0 + kk) * n + j], acc);
                }
                c_row[j] = acc;
                j += 1;
            }
        }
    }

    /// FMA row dot for `gemv`: eight f32 lanes accumulate with FMA, then the
    /// lanes fold in the same fixed tree order as the scalar kernel, plus a
    /// scalar tail. Deterministic for a given length.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn row_dot_fma(row: &[f32], x: &[f32]) -> f32 {
        let n = row.len();
        let mut vacc = _mm256_setzero_ps();
        let mut j = 0;
        while j + 8 <= n {
            let vw = _mm256_loadu_ps(row.as_ptr().add(j));
            let vx = _mm256_loadu_ps(x.as_ptr().add(j));
            vacc = _mm256_fmadd_ps(vw, vx, vacc);
            j += 8;
        }
        let mut acc = [0.0f32; 8];
        _mm256_storeu_ps(acc.as_mut_ptr(), vacc);
        let mut tail = 0.0f32;
        while j < n {
            tail += row[j] * x[j];
            j += 1;
        }
        let folded =
            ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7]));
        folded + tail
    }
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
pub(crate) use avx2::{packed_micro_4_fma, packed_micro_rem_fma, row_dot_fma};

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
use avx2::dot_i8_avx2;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_i8_matches_scalar() {
        let a: Vec<i8> = (0..100).map(|i| ((i * 37) % 255 - 127) as i8).collect();
        let b: Vec<i8> = (0..100).map(|i| ((i * 91) % 255 - 127) as i8).collect();
        assert_eq!(dot_i8(&a, &b), dot_i8_scalar(&a, &b));
    }

    #[test]
    fn dot_i8_extremes() {
        let a = vec![i8::MIN; 33];
        let b = vec![i8::MIN; 33];
        assert_eq!(dot_i8(&a, &b), 33 * 128 * 128);
        let c = vec![i8::MAX; 33];
        assert_eq!(dot_i8(&a, &c), 33 * -128 * 127);
    }

    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    #[test]
    fn fma_kernels_close_to_scalar() {
        if !simd_active() {
            return;
        }
        let n = 37;
        let row: Vec<f32> = (0..n).map(|i| (i as f32 * 0.7).sin()).collect();
        let x: Vec<f32> = (0..n).map(|i| (i as f32 * 0.3).cos()).collect();
        let got = unsafe { row_dot_fma(&row, &x) };
        let want: f32 = row.iter().zip(&x).map(|(a, b)| a * b).sum();
        assert!((got - want).abs() < 1e-4, "{got} vs {want}");
    }

    /// The remainder FMA kernel must reproduce the 4-row kernel's
    /// per-element rounding exactly — that is what keeps SIMD outputs
    /// independent of how thread chunking groups rows into blocks.
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    #[test]
    fn rem_kernel_matches_micro4_per_element() {
        if !simd_active() {
            return;
        }
        let (kc, n) = (13, 21);
        let b: Vec<f32> = (0..kc * n).map(|i| (i as f32 * 0.37).sin()).collect();
        // 4 rows through micro4...
        let panel4: Vec<f32> = (0..kc * 4).map(|i| (i as f32 * 0.11).cos()).collect();
        let mut c4 = vec![0.5f32; 4 * n];
        unsafe { packed_micro_4_fma(&panel4, kc, 0, n, 0, n, &b, &mut c4) };
        // ...and each row alone through the remainder kernel.
        for r in 0..4 {
            let panel1: Vec<f32> = (0..kc).map(|kk| panel4[kk * 4 + r]).collect();
            let mut c1 = vec![0.5f32; n];
            unsafe { packed_micro_rem_fma(&panel1, 1, kc, 0, n, 0, n, &b, &mut c1) };
            for j in 0..n {
                assert_eq!(c1[j].to_bits(), c4[r * n + j].to_bits(), "row {r} col {j}");
            }
        }
    }
}
