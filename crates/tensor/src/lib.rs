//! Minimal f32 tensor library backing the Gillis reproduction.
//!
//! The Gillis paper serves models with MXNet; this crate provides the small
//! set of real compute kernels the reproduction needs so that partitioned
//! execution can be checked for *semantic equivalence* against unpartitioned
//! execution — the property the paper's fork-join runtime relies on.
//!
//! The crate deliberately implements only what DNN inference over single
//! queries requires:
//!
//! - [`Shape`] / [`Tensor`] — dense, row-major, `f32`.
//! - Slicing and stitching along arbitrary dimensions ([`Tensor::slice`],
//!   [`Tensor::concat`]) — the primitives a fork-join master uses to scatter
//!   inputs and gather partial outputs.
//! - Layer kernels in [`ops`]: 2-D convolution, max/average pooling, dense
//!   (fully connected), batch normalization, element-wise activations, and an
//!   LSTM cell.
//!
//! # Examples
//!
//! ```
//! use gillis_tensor::{Tensor, Shape};
//!
//! let t = Tensor::zeros(Shape::new(vec![3, 8, 8]));
//! assert_eq!(t.shape().len(), 3 * 8 * 8);
//! ```

pub mod error;
pub mod gemm;
pub mod ops;
pub mod quant;
pub mod scratch;
pub mod shape;
pub mod simd;
pub mod tensor;

pub use error::TensorError;
pub use shape::Shape;
pub use tensor::Tensor;

/// Convenient result alias for fallible tensor operations.
pub type Result<T> = std::result::Result<T, TensorError>;
