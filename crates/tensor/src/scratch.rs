//! Per-thread scratch arenas for kernel-internal temporaries.
//!
//! Every heavy kernel in this crate needs short-lived working memory — the
//! im2col column matrix of a convolution, the gate pre-activations of an LSTM
//! step. Allocating those per call puts the allocator (and the kernel page
//! faults behind it) on the per-query hot path of the fork-join runtime. The
//! arena here keeps one buffer per *use site* per thread: a kernel takes the
//! buffer for its site, clears and resizes it (within capacity after the
//! first query — no allocation), and puts it back when done.
//!
//! Buffers are thread-local, so kernels fanned out across the
//! [`gillis_pool`](../../gillis_pool/index.html) worker threads each warm
//! their own arena; there is no cross-thread synchronization on the hot path.
//! Capacity only ever grows (a put never shrinks), so after one pass over a
//! model every later query runs allocation-free regardless of the layer
//! sequence.

use std::cell::RefCell;

/// Identifies the use site a scratch buffer belongs to.
///
/// One live buffer per site per thread: a kernel must put a site's buffer
/// back before any code path that takes the same site again runs on the same
/// thread (taking an already-taken site yields a fresh empty buffer, which is
/// correct but defeats reuse).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Site {
    /// im2col column matrix of `conv2d`.
    Im2col = 0,
    /// Per-channel im2col column matrix of `depthwise_conv2d`.
    DepthwiseCol = 1,
    /// LSTM input-to-hidden gate pre-activations.
    LstmGateInput = 2,
    /// LSTM hidden-to-hidden gate pre-activations.
    LstmGateHidden = 3,
    /// LSTM combined gate pre-activations.
    LstmPre = 4,
    /// Micro-panel repack of a GEMM row chunk (SIMD mode only).
    GemmPack = 5,
    /// Widened im2col column matrix of a batched `conv2d` (all batch items
    /// side by side).
    BatchCol = 6,
    /// Widened output matrix of a batched `conv2d` before the per-item
    /// scatter back into caller buffers.
    BatchOut = 7,
    /// Row-major `rows × nrhs` accumulator of a batched `dense` (gemv_multi)
    /// before de-interleaving into per-item outputs.
    BatchGemv = 8,
}

const N_SITES: usize = 9;

/// A per-thread set of reusable `f32` buffers, one slot per [`Site`].
#[derive(Debug, Default)]
pub struct Scratch {
    slots: [Vec<f32>; N_SITES],
}

impl Scratch {
    /// Takes the buffer for `site`, leaving an empty slot behind. The buffer
    /// keeps whatever capacity it grew on earlier queries; callers clear and
    /// resize it to their needs.
    pub fn take(&mut self, site: Site) -> Vec<f32> {
        std::mem::take(&mut self.slots[site as usize])
    }

    /// Returns a buffer to `site` so later takes on this thread reuse its
    /// capacity. Keeps the larger of the stored and returned buffers, so
    /// capacity is monotone even if a site was double-taken.
    pub fn put(&mut self, site: Site, buf: Vec<f32>) {
        let slot = &mut self.slots[site as usize];
        if buf.capacity() > slot.capacity() {
            *slot = buf;
        }
    }
}

thread_local! {
    static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::default());
}

/// Takes the calling thread's buffer for `site`; pair with [`put`].
pub fn take(site: Site) -> Vec<f32> {
    SCRATCH.with(|s| s.borrow_mut().take(site))
}

/// Returns a buffer to the calling thread's slot for `site`.
pub fn put(site: Site, buf: Vec<f32>) {
    SCRATCH.with(|s| s.borrow_mut().put(site, buf));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_put_reuses_capacity() {
        let mut s = Scratch::default();
        let mut buf = s.take(Site::Im2col);
        buf.resize(1024, 0.0);
        let cap = buf.capacity();
        let ptr = buf.as_ptr();
        s.put(Site::Im2col, buf);
        let again = s.take(Site::Im2col);
        assert_eq!(again.capacity(), cap);
        assert_eq!(again.as_ptr(), ptr);
    }

    #[test]
    fn sites_are_independent() {
        let mut s = Scratch::default();
        let mut a = s.take(Site::Im2col);
        a.resize(16, 1.0);
        s.put(Site::Im2col, a);
        let b = s.take(Site::DepthwiseCol);
        assert_eq!(b.capacity(), 0);
    }

    #[test]
    fn put_keeps_larger_buffer_on_double_take() {
        let mut s = Scratch::default();
        let mut big = s.take(Site::LstmPre);
        big.resize(256, 0.0);
        let mut small = s.take(Site::LstmPre); // double take: empty
        small.resize(8, 0.0);
        s.put(Site::LstmPre, small);
        s.put(Site::LstmPre, big);
        assert!(s.take(Site::LstmPre).capacity() >= 256);
    }

    #[test]
    fn thread_local_helpers_roundtrip() {
        let mut buf = take(Site::Im2col);
        buf.resize(64, 2.0);
        let cap = buf.capacity();
        put(Site::Im2col, buf);
        let again = take(Site::Im2col);
        assert!(again.capacity() >= cap);
        put(Site::Im2col, again);
    }
}
