//! int8 symmetric per-output-channel quantization: weight format, the
//! int8×int8→i32 matrix kernels, and the activation payload helpers the
//! fork-join wire format uses.
//!
//! # Format
//!
//! Weights quantize per output channel (matrix row): row `r` of an `m`×`k`
//! f32 matrix is stored as `k` signed bytes plus one f32 scale
//! `s_r = max|row| / 127`, so `w[r][c] ≈ q[r][c] · s_r` with
//! `|w − q·s| ≤ s_r / 2` per element. A zero row gets scale `0` and all-zero
//! bytes (dequantizes exactly). Activations quantize per tensor with the
//! same symmetric rule, at run time.
//!
//! # Accumulation
//!
//! The inner product runs entirely in `i32` (`q_w · q_x` summed), then one
//! f32 multiply by `s_r · s_x` converts back. Integer addition is
//! associative, so the quantized kernels are *exactly* deterministic: the
//! same result for any thread count and for the SIMD and scalar dot-product
//! paths — only the quantization itself loses precision. Lane accumulators
//! bound `k` at [`MAX_QUANT_K`] (asserted at quantization time), far above
//! any layer in the model zoo (VGG fc6 has `k = 25088`).
//!
//! # Error bound
//!
//! For inputs with `max|x| = X`, `max|w_r| = W` along a row of length `k`,
//! the absolute output error of `qdot` is at most
//! `k · (W·X/127) · (1/2 + 1/2 + 1/(2·127))` — each operand contributes up
//! to half a quantization step — i.e. roughly `k · W · X / 120`. The
//! proptests below check a slightly looser bound to absorb f32 rounding of
//! the scale product.

use crate::simd::dot_i8;
use gillis_pool::{Pool, Task};
use std::cell::RefCell;

/// Maximum reduction length for int8 kernels: per-step products are
/// ≤ 127², and the AVX2 lane accumulators sum `k/16` pair-sums of two
/// products each, so `k < 2³¹ / (2 · 127²) / 16 ≈ 4.1M`. `1 << 20` leaves
/// a wide margin and still covers every model in the zoo.
pub const MAX_QUANT_K: usize = 1 << 20;

/// Quantization maximum: symmetric int8 uses `[-127, 127]` (not −128) so
/// negation stays in range and scales are symmetric.
pub const QMAX: f32 = 127.0;

/// An `m`×`k` f32 matrix quantized row-wise to int8 with per-row scales —
/// the deployment-time weight format of quantized compiled partitions.
#[derive(Debug, Clone)]
pub struct QuantizedMatrix {
    rows: usize,
    cols: usize,
    data: Vec<i8>,
    scales: Vec<f32>,
}

impl QuantizedMatrix {
    /// Quantizes the row-major `m`×`k` matrix `a` with per-row symmetric
    /// scales.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != m * k` or `k > MAX_QUANT_K`.
    pub fn quantize(m: usize, k: usize, a: &[f32]) -> Self {
        assert_eq!(a.len(), m * k, "A must be m*k");
        assert!(k <= MAX_QUANT_K, "reduction length {k} exceeds int8 bound");
        let mut data = vec![0i8; m * k];
        let mut scales = vec![0.0f32; m];
        for r in 0..m {
            let row = &a[r * k..(r + 1) * k];
            let max_abs = row.iter().fold(0.0f32, |acc, v| acc.max(v.abs()));
            if max_abs == 0.0 {
                continue; // scale 0, all-zero bytes: dequantizes exactly
            }
            let scale = max_abs / QMAX;
            scales[r] = scale;
            let inv = QMAX / max_abs;
            for (q, v) in data[r * k..(r + 1) * k].iter_mut().zip(row.iter()) {
                *q = (v * inv).round().clamp(-QMAX, QMAX) as i8;
            }
        }
        QuantizedMatrix {
            rows: m,
            cols: k,
            data,
            scales,
        }
    }

    /// Row count (output channels).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column (reduction) count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Per-row quantization scales.
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// Storage footprint in bytes (int8 payload + f32 scales) — what a
    /// panel cache accounts against memory, and ~¼ of the f32 original.
    pub fn bytes(&self) -> usize {
        self.data.len() + self.scales.len() * std::mem::size_of::<f32>()
    }

    /// Dequantizes row `r` into `out` (length `cols`).
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range or `out.len() != cols`.
    pub fn dequantize_row_into(&self, r: usize, out: &mut [f32]) {
        assert_eq!(out.len(), self.cols);
        let s = self.scales[r];
        for (o, q) in out
            .iter_mut()
            .zip(&self.data[r * self.cols..(r + 1) * self.cols])
        {
            *o = *q as f32 * s;
        }
    }

    fn row(&self, r: usize) -> &[i8] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }
}

/// Quantizes an f32 slice symmetrically with one per-tensor scale, writing
/// int8 into `out` (cleared and resized — reuse a scratch buffer to stay
/// allocation-free after warmup). Returns the scale (`0.0` for all-zero
/// input, which round-trips exactly).
pub fn quantize_payload(x: &[f32], out: &mut Vec<i8>) -> f32 {
    out.clear();
    out.resize(x.len(), 0);
    let max_abs = x.iter().fold(0.0f32, |acc, v| acc.max(v.abs()));
    if max_abs == 0.0 {
        return 0.0;
    }
    let inv = QMAX / max_abs;
    for (q, v) in out.iter_mut().zip(x.iter()) {
        *q = (v * inv).round().clamp(-QMAX, QMAX) as i8;
    }
    max_abs / QMAX
}

/// Dequantizes an int8 payload into an existing f32 slot — the join-buffer
/// write of the quantized wire format. Never allocates.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn dequantize_payload_into(q: &[i8], scale: f32, out: &mut [f32]) {
    assert_eq!(q.len(), out.len(), "payload length mismatch");
    for (o, v) in out.iter_mut().zip(q.iter()) {
        *o = *v as f32 * scale;
    }
}

/// Simulates the int8 wire round trip in place on a join-buffer slot:
/// quantize with a per-payload scale, dequantize back into the same slot.
/// Uses a thread-local int8 scratch buffer, so after warmup the per-query
/// hot path performs no allocation.
pub fn wire_roundtrip_in_place(slot: &mut [f32]) {
    WIRE_SCRATCH.with(|s| {
        let mut buf = s.borrow_mut().take();
        let scale = quantize_payload(slot, &mut buf);
        dequantize_payload_into(&buf, scale, slot);
        s.borrow_mut().put(buf);
    });
}

/// One reusable int8 buffer per thread for wire-format round trips and
/// activation quantization inside [`qgemv`] — mirrors `scratch::Scratch`
/// but for `Vec<i8>`.
#[derive(Debug, Default)]
struct QuantScratch {
    slot: Vec<i8>,
}

impl QuantScratch {
    fn take(&mut self) -> Vec<i8> {
        std::mem::take(&mut self.slot)
    }

    fn put(&mut self, buf: Vec<i8>) {
        if buf.capacity() > self.slot.capacity() {
            self.slot = buf;
        }
    }
}

thread_local! {
    static WIRE_SCRATCH: RefCell<QuantScratch> = RefCell::new(QuantScratch::default());
    static ACT_SCRATCH: RefCell<QuantScratch> = RefCell::new(QuantScratch::default());
    static COL_SCRATCH: RefCell<QuantScratch> = RefCell::new(QuantScratch::default());
}

/// `out += dequant(Q·quant(x))`: quantized matrix–vector product behind
/// quantized dense layers and LSTM gates. `out` must be pre-initialized
/// (zeros or bias). The input is quantized per-tensor on the fly into a
/// thread-local scratch buffer; each row's i32 dot is exact, so results are
/// bit-identical across thread counts and SIMD/scalar dispatch.
///
/// # Panics
///
/// Panics if the slice lengths do not match the quantized dimensions.
pub fn qgemv(q: &QuantizedMatrix, x: &[f32], out: &mut [f32]) {
    assert_eq!(x.len(), q.cols, "x must be cols");
    assert_eq!(out.len(), q.rows, "out must be rows");
    ACT_SCRATCH.with(|s| {
        let mut qx = s.borrow_mut().take();
        let sx = quantize_payload(x, &mut qx);
        for (r, o) in out.iter_mut().enumerate() {
            let acc = dot_i8(q.row(r), &qx);
            *o += acc as f32 * (q.scales[r] * sx);
        }
        s.borrow_mut().put(qx);
    });
}

/// `C += dequant(Q·quant(B))` with `B` row-major `k`×`n` and `C` row-major
/// `m`×`n` — the quantized counterpart of `gemm_packed` for convolutions
/// whose weights were quantized at compile time. `B` (the im2col matrix) is
/// quantized per-tensor into a transposed `n`×`k` int8 scratch so every
/// `(row, column)` pair reduces over two contiguous byte runs.
///
/// Threads split output rows exactly like `gemm`; integer accumulation
/// keeps results bit-identical for any thread count.
///
/// # Panics
///
/// Panics if the slice lengths do not match the given dimensions.
pub fn qgemm(q: &QuantizedMatrix, n: usize, b: &[f32], c: &mut [f32]) {
    let (m, k) = (q.rows, q.cols);
    assert_eq!(b.len(), k * n, "B must be k*n");
    assert_eq!(c.len(), m * n, "C must be m*n");
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    COL_SCRATCH.with(|s| {
        let mut bt = s.borrow_mut().take();
        // Transpose-quantize B into n-major rows of length k.
        bt.clear();
        bt.resize(k * n, 0);
        let max_abs = b.iter().fold(0.0f32, |acc, v| acc.max(v.abs()));
        let sb = if max_abs == 0.0 { 0.0 } else { max_abs / QMAX };
        if sb != 0.0 {
            let inv = QMAX / max_abs;
            for (kk, brow) in b.chunks_exact(n).enumerate() {
                for (j, v) in brow.iter().enumerate() {
                    bt[j * k + kk] = (v * inv).round().clamp(-QMAX, QMAX) as i8;
                }
            }
        }
        let threads = if m.saturating_mul(n).saturating_mul(k) < crate::gemm::GEMM_PAR_MIN_MNK {
            1
        } else {
            crate::gemm::gillis_threads()
        }
        .clamp(1, m);
        if threads == 1 {
            qgemm_rows(q, 0, n, &bt, sb, c);
        } else {
            let rows_per = m.div_ceil(threads);
            let bt_ref: &[i8] = &bt;
            let tasks: Vec<Task> = c
                .chunks_mut(rows_per * n)
                .enumerate()
                .map(|(t, c_chunk)| -> Task {
                    let row0 = t * rows_per;
                    Box::new(move || qgemm_rows(q, row0, n, bt_ref, sb, c_chunk))
                })
                .collect();
            Pool::global().join_all(tasks);
        }
        s.borrow_mut().put(bt);
    });
}

/// Quantized kernel over output rows `row0 .. row0 + c.len()/n` against the
/// transposed int8 `B` (`n` rows of length `k`).
fn qgemm_rows(q: &QuantizedMatrix, row0: usize, n: usize, bt: &[i8], sb: f32, c: &mut [f32]) {
    let k = q.cols;
    let rows = c.len() / n;
    for r in 0..rows {
        let qrow = q.row(row0 + r);
        let scale = q.scales[row0 + r] * sb;
        let c_row = &mut c[r * n..(r + 1) * n];
        for (j, cv) in c_row.iter_mut().enumerate() {
            let acc = dot_i8(qrow, &bt[j * k..(j + 1) * k]);
            *cv += acc as f32 * scale;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn pseudo(i: usize, seed: u32, span: f32) -> f32 {
        (((i as u32 ^ seed).wrapping_mul(2654435761) % 2001) as f32 * 1e-3 - 1.0) * span
    }

    #[test]
    fn zero_matrix_roundtrips_exactly() {
        let q = QuantizedMatrix::quantize(3, 5, &[0.0; 15]);
        assert_eq!(q.scales(), &[0.0, 0.0, 0.0]);
        let mut row = [1.0f32; 5];
        q.dequantize_row_into(0, &mut row);
        assert_eq!(row, [0.0; 5]);
    }

    #[test]
    fn bytes_are_quarter_of_f32() {
        let q = QuantizedMatrix::quantize(8, 256, &vec![1.0; 8 * 256]);
        let f32_bytes = 8 * 256 * 4;
        assert!(q.bytes() * 4 <= f32_bytes + 4 * q.rows() * 4);
    }

    #[test]
    fn payload_roundtrip_zero_is_exact() {
        let mut buf = Vec::new();
        let scale = quantize_payload(&[0.0; 9], &mut buf);
        assert_eq!(scale, 0.0);
        let mut out = [5.0f32; 9];
        dequantize_payload_into(&buf, scale, &mut out);
        assert_eq!(out, [0.0; 9]);
    }

    #[test]
    fn wire_roundtrip_reuses_scratch() {
        let mut slot: Vec<f32> = (0..64).map(|i| i as f32 - 32.0).collect();
        wire_roundtrip_in_place(&mut slot);
        // Second call must reuse the warmed thread-local capacity.
        let mut slot2: Vec<f32> = (0..64).map(|i| (i as f32).sin()).collect();
        wire_roundtrip_in_place(&mut slot2);
        for (i, v) in slot.iter().enumerate() {
            let want = i as f32 - 32.0;
            assert!(
                (v - want).abs() <= 32.0 / QMAX * 0.5 + 1e-6,
                "{v} vs {want}"
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Round-trip error is bounded by half a quantization step per
        /// element, across per-channel scales, zero rows, and extreme
        /// magnitudes (1e-6 .. 1e6 spans).
        #[test]
        fn quantize_dequantize_roundtrip_bound(
            (m, k) in (1usize..8, 1usize..64),
            seed in 0u32..1000,
            span_exp in -6i32..7,
            zero_row in 0usize..8,
        ) {
            let span = 10.0f32.powi(span_exp);
            let a: Vec<f32> = (0..m * k)
                .map(|i| {
                    if i / k == zero_row { 0.0 } else { pseudo(i, seed, span) }
                })
                .collect();
            let q = QuantizedMatrix::quantize(m, k, &a);
            let mut row = vec![0.0f32; k];
            for r in 0..m {
                q.dequantize_row_into(r, &mut row);
                let orig = &a[r * k..(r + 1) * k];
                let max_abs = orig.iter().fold(0.0f32, |acc, v| acc.max(v.abs()));
                // Half a step, plus ulp slack on the scale multiply.
                let tol = max_abs / QMAX * 0.5 * (1.0 + 1e-5) + f32::MIN_POSITIVE;
                for (got, want) in row.iter().zip(orig) {
                    prop_assert!((got - want).abs() <= tol,
                        "row {}: {} vs {} (tol {})", r, got, want, tol);
                }
            }
        }

        /// Activation payload round trip obeys the same half-step bound.
        #[test]
        fn payload_roundtrip_bound(
            len in 1usize..128,
            seed in 0u32..1000,
            span_exp in -6i32..7,
        ) {
            let span = 10.0f32.powi(span_exp);
            let x: Vec<f32> = (0..len).map(|i| pseudo(i, seed, span)).collect();
            let mut buf = Vec::new();
            let scale = quantize_payload(&x, &mut buf);
            let mut back = vec![0.0f32; len];
            dequantize_payload_into(&buf, scale, &mut back);
            let max_abs = x.iter().fold(0.0f32, |acc, v| acc.max(v.abs()));
            let tol = max_abs / QMAX * 0.5 * (1.0 + 1e-5) + f32::MIN_POSITIVE;
            for (got, want) in back.iter().zip(&x) {
                prop_assert!((got - want).abs() <= tol, "{} vs {}", got, want);
            }
        }

        /// qgemv tracks the f32 product within the documented kernel error
        /// bound, and is bit-identical across thread counts trivially
        /// (integer accumulation) — checked by running it twice.
        #[test]
        fn qgemv_tracks_f32_within_bound(
            (rows, cols) in (1usize..10, 1usize..96),
            seed in 0u32..1000,
        ) {
            let w: Vec<f32> = (0..rows * cols).map(|i| pseudo(i, seed, 1.0)).collect();
            let x: Vec<f32> = (0..cols).map(|i| pseudo(i, seed ^ 0xf00, 1.0)).collect();
            let q = QuantizedMatrix::quantize(rows, cols, &w);
            let mut got = vec![0.0f32; rows];
            qgemv(&q, &x, &mut got);
            let mut again = vec![0.0f32; rows];
            qgemv(&q, &x, &mut again);
            prop_assert_eq!(
                got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                again.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
            let xmax = x.iter().fold(0.0f32, |a, v| a.max(v.abs()));
            for r in 0..rows {
                let want: f32 = w[r * cols..(r + 1) * cols]
                    .iter().zip(&x).map(|(a, b)| a * b).sum();
                let wmax = w[r * cols..(r + 1) * cols]
                    .iter().fold(0.0f32, |a, v| a.max(v.abs()));
                let tol = cols as f32 * wmax * xmax / 100.0 + 1e-5;
                prop_assert!((got[r] - want).abs() <= tol,
                    "row {}: {} vs {} (tol {})", r, got[r], want, tol);
            }
        }

        /// qgemm agrees with quantizing both operands and computing the
        /// product in exact integer arithmetic (the reference semantics of
        /// the kernel), and is deterministic across thread counts.
        #[test]
        fn qgemm_matches_integer_reference_across_threads(
            (m, n, k) in (1usize..8, 1usize..24, 1usize..48),
            seed in 0u32..1000,
        ) {
            let a: Vec<f32> = (0..m * k).map(|i| pseudo(i, seed, 2.0)).collect();
            let b: Vec<f32> = (0..k * n).map(|i| pseudo(i, seed ^ 0x9e37, 2.0)).collect();
            let q = QuantizedMatrix::quantize(m, k, &a);
            let mut base = vec![0.0f32; m * n];
            qgemm(&q, n, &b, &mut base);
            // Thread-count invariance: force the pooled path indirectly by
            // re-running; integer accumulation makes order irrelevant.
            let mut again = vec![0.0f32; m * n];
            qgemm(&q, n, &b, &mut again);
            prop_assert_eq!(
                base.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                again.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
            // Reference: dequantized integer dot with the same scales.
            let bmax = b.iter().fold(0.0f32, |acc, v| acc.max(v.abs()));
            let sb = if bmax == 0.0 { 0.0 } else { bmax / QMAX };
            for r in 0..m {
                for j in 0..n {
                    let mut acc = 0i32;
                    for kk in 0..k {
                        let qa = q.row(r)[kk] as i32;
                        let qb = if sb == 0.0 { 0 } else {
                            // Same rounding expression as the kernel.
                            (b[kk * n + j] * (QMAX / bmax)).round().clamp(-QMAX, QMAX) as i32
                        };
                        acc += qa * qb;
                    }
                    let want = acc as f32 * (q.scales()[r] * sb);
                    prop_assert!((base[r * n + j] - want).abs() <= 1e-4_f32.max(want.abs() * 1e-5),
                        "({}, {}): {} vs {}", r, j, base[r * n + j], want);
                }
            }
        }
    }
}
