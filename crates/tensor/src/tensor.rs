//! The dense `f32` tensor and its slicing/stitching primitives.

use serde::{Deserialize, Serialize};

use crate::error::TensorError;
use crate::shape::Shape;
use crate::Result;

/// A dense, row-major `f32` tensor.
///
/// This is the value type flowing through the Gillis fork-join runtime: the
/// master slices inputs with [`Tensor::slice`], ships the pieces to workers,
/// and reassembles worker outputs with [`Tensor::concat`].
///
/// # Examples
///
/// ```
/// use gillis_tensor::{Shape, Tensor};
///
/// # fn main() -> Result<(), gillis_tensor::TensorError> {
/// let t = Tensor::from_vec(Shape::new(vec![2, 4]), (0..8).map(|x| x as f32).collect())?;
/// let halves = [t.slice(1, 0..2)?, t.slice(1, 2..4)?];
/// let back = Tensor::concat(&halves, 1)?;
/// assert_eq!(back, t);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor from a shape and matching data vector.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `data.len() != shape.len()`.
    pub fn from_vec(shape: Shape, data: Vec<f32>) -> Result<Self> {
        if data.len() != shape.len() {
            return Err(TensorError::ShapeMismatch {
                expected: shape.clone(),
                actual: Shape::new(vec![data.len()]),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// Creates a zero-filled tensor.
    pub fn zeros(shape: Shape) -> Self {
        let len = shape.len();
        Tensor {
            shape,
            data: vec![0.0; len],
        }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: Shape, value: f32) -> Self {
        let len = shape.len();
        Tensor {
            shape,
            data: vec![value; len],
        }
    }

    /// Creates a tensor whose elements are produced by `f(flat_index)`.
    pub fn from_fn(shape: Shape, mut f: impl FnMut(usize) -> f32) -> Self {
        let len = shape.len();
        Tensor {
            shape,
            data: (0..len).map(&mut f).collect(),
        }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// A view of the underlying row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// A mutable view of the underlying row-major data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its underlying data vector.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element access by multi-index.
    ///
    /// # Panics
    ///
    /// Debug-asserts bounds; see [`Shape::offset`].
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.shape.offset(index)]
    }

    /// Mutable element access by multi-index.
    ///
    /// # Panics
    ///
    /// Debug-asserts bounds; see [`Shape::offset`].
    pub fn at_mut(&mut self, index: &[usize]) -> &mut f32 {
        let off = self.shape.offset(index);
        &mut self.data[off]
    }

    /// Reinterprets the tensor with a new shape of equal element count.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the element counts differ.
    pub fn reshape(self, shape: Shape) -> Result<Self> {
        if shape.len() != self.data.len() {
            return Err(TensorError::ShapeMismatch {
                expected: shape,
                actual: self.shape,
            });
        }
        Ok(Tensor {
            shape,
            data: self.data,
        })
    }

    /// Extracts the sub-tensor `range` along dimension `dim`, copying.
    ///
    /// All other dimensions are kept whole. This is the scatter primitive of
    /// the fork-join master: spatial partitions slice the height/width
    /// dimension (with halos), channel partitions slice the channel dimension.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DimOutOfRange`] for a bad `dim` and
    /// [`TensorError::RangeOutOfBounds`] for a bad `range`.
    pub fn slice(&self, dim: usize, range: std::ops::Range<usize>) -> Result<Tensor> {
        let size = self.shape.dim(dim)?;
        if range.start > range.end || range.end > size {
            return Err(TensorError::RangeOutOfBounds {
                dim,
                start: range.start,
                end: range.end,
                size,
            });
        }
        let dims = self.shape.dims();
        // outer = product of dims before `dim`; inner = product after.
        let outer: usize = dims[..dim].iter().product();
        let inner: usize = dims[dim + 1..].iter().product();
        let new_len = range.len();
        let mut out = Vec::with_capacity(outer * new_len * inner);
        for o in 0..outer {
            let base = o * size * inner;
            out.extend_from_slice(&self.data[base + range.start * inner..base + range.end * inner]);
        }
        let new_shape = self.shape.with_dim(dim, new_len)?;
        Tensor::from_vec(new_shape, out)
    }

    /// Concatenates tensors along dimension `dim`, copying.
    ///
    /// This is the gather primitive of the fork-join master: worker outputs
    /// are stitched back into the full tensor. Accepts anything that borrows
    /// a tensor (`&[Tensor]`, `&[&Tensor]`, …), so callers holding references
    /// need not clone the parts first.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] if `parts` is empty, and
    /// [`TensorError::ShapeMismatch`] if the parts disagree on any dimension
    /// other than `dim`.
    pub fn concat<T: std::borrow::Borrow<Tensor>>(parts: &[T], dim: usize) -> Result<Tensor> {
        let first = parts
            .first()
            .ok_or_else(|| TensorError::InvalidArgument("concat of zero tensors".into()))?
            .borrow();
        let rank = first.shape.rank();
        if dim >= rank {
            return Err(TensorError::DimOutOfRange { dim, rank });
        }
        let mut total = 0;
        for p in parts {
            let p = p.borrow();
            if p.shape.rank() != rank {
                return Err(TensorError::ShapeMismatch {
                    expected: first.shape.clone(),
                    actual: p.shape.clone(),
                });
            }
            for d in 0..rank {
                if d != dim && p.shape.dims()[d] != first.shape.dims()[d] {
                    return Err(TensorError::ShapeMismatch {
                        expected: first.shape.clone(),
                        actual: p.shape.clone(),
                    });
                }
            }
            total += p.shape.dims()[dim];
        }
        let out_shape = first.shape.with_dim(dim, total)?;
        let dims = first.shape.dims();
        let outer: usize = dims[..dim].iter().product();
        let inner: usize = dims[dim + 1..].iter().product();
        let mut out = Vec::with_capacity(out_shape.len());
        for o in 0..outer {
            for p in parts {
                let p = p.borrow();
                let psize = p.shape.dims()[dim];
                let base = o * psize * inner;
                out.extend_from_slice(&p.data[base..base + psize * inner]);
            }
        }
        Tensor::from_vec(out_shape, out)
    }

    /// Element-wise addition.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn add(&self, other: &Tensor) -> Result<Tensor> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                expected: self.shape.clone(),
                actual: other.shape.clone(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| a + b)
            .collect();
        Ok(Tensor {
            shape: self.shape.clone(),
            data,
        })
    }

    /// Applies `f` to every element, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Maximum absolute difference between two tensors of the same shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn max_abs_diff(&self, other: &Tensor) -> Result<f32> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                expected: self.shape.clone(),
                actual: other.shape.clone(),
            });
        }
        Ok(self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iota(shape: Vec<usize>) -> Tensor {
        Tensor::from_fn(Shape::new(shape), |i| i as f32)
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(Shape::new(vec![2, 2]), vec![1.0; 4]).is_ok());
        assert!(Tensor::from_vec(Shape::new(vec![2, 2]), vec![1.0; 5]).is_err());
    }

    #[test]
    fn slice_middle_dimension() {
        let t = iota(vec![2, 4, 3]);
        let s = t.slice(1, 1..3).unwrap();
        assert_eq!(s.shape().dims(), &[2, 2, 3]);
        // Row o=0, slice rows 1..3 of dim1.
        assert_eq!(&s.data()[..6], &[3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        // Row o=1 starts at offset 12 in the original.
        assert_eq!(&s.data()[6..], &[15.0, 16.0, 17.0, 18.0, 19.0, 20.0]);
    }

    #[test]
    fn slice_then_concat_roundtrips() {
        let t = iota(vec![3, 5, 2]);
        for dim in 0..3 {
            let size = t.shape().dims()[dim];
            let mid = size / 2;
            let a = t.slice(dim, 0..mid).unwrap();
            let b = t.slice(dim, mid..size).unwrap();
            let back = Tensor::concat(&[a, b], dim).unwrap();
            assert_eq!(back, t, "roundtrip failed on dim {dim}");
        }
    }

    #[test]
    fn slice_rejects_bad_ranges() {
        let t = iota(vec![2, 3]);
        assert!(matches!(
            t.slice(1, 2..5),
            Err(TensorError::RangeOutOfBounds { .. })
        ));
        assert!(matches!(
            t.slice(5, 0..1),
            Err(TensorError::DimOutOfRange { .. })
        ));
    }

    #[test]
    fn empty_slice_is_allowed() {
        let t = iota(vec![2, 3]);
        let s = t.slice(1, 1..1).unwrap();
        assert_eq!(s.shape().dims(), &[2, 0]);
        assert!(s.data().is_empty());
    }

    #[test]
    fn concat_rejects_mismatched_parts() {
        let a = iota(vec![2, 3]);
        let b = iota(vec![3, 3]);
        // dim 0 concat is fine (other dims equal)...
        assert!(Tensor::concat(&[a.clone(), b.clone()], 0).is_ok());
        // ...but dim 1 concat must reject differing dim 0.
        // Borrowed parts work without cloning.
        assert!(Tensor::concat(&[&a, &b], 1).is_err());
        assert!(Tensor::concat(&[a, b], 1).is_err());
        assert!(Tensor::concat::<Tensor>(&[], 0).is_err());
    }

    #[test]
    fn add_and_map() {
        let a = iota(vec![2, 2]);
        let b = a.add(&a).unwrap();
        assert_eq!(b.data(), &[0.0, 2.0, 4.0, 6.0]);
        let c = a.map(|x| x * 10.0);
        assert_eq!(c.data(), &[0.0, 10.0, 20.0, 30.0]);
        assert!(a.add(&iota(vec![4])).is_err());
    }

    #[test]
    fn reshape_preserves_data() {
        let t = iota(vec![2, 6]);
        let r = t.clone().reshape(Shape::new(vec![3, 4])).unwrap();
        assert_eq!(r.data(), t.data());
        assert!(t.reshape(Shape::new(vec![5])).is_err());
    }

    #[test]
    fn max_abs_diff_detects_divergence() {
        let a = iota(vec![4]);
        let mut b = a.clone();
        b.data_mut()[2] += 0.5;
        assert_eq!(a.max_abs_diff(&b).unwrap(), 0.5);
        assert_eq!(a.max_abs_diff(&a).unwrap(), 0.0);
    }
}
