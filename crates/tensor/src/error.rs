//! Error type shared by all tensor operations.

use std::fmt;

use crate::shape::Shape;

/// Error returned by fallible tensor operations.
#[derive(Debug, Clone, PartialEq)]
pub enum TensorError {
    /// Two shapes that were required to match did not.
    ShapeMismatch {
        /// Shape the operation expected.
        expected: Shape,
        /// Shape the operation actually received.
        actual: Shape,
    },
    /// A dimension index was out of range for the tensor's rank.
    DimOutOfRange {
        /// The offending dimension index.
        dim: usize,
        /// The tensor's rank.
        rank: usize,
    },
    /// A slice range fell outside the tensor along a dimension.
    RangeOutOfBounds {
        /// The dimension being sliced.
        dim: usize,
        /// Requested start index (inclusive).
        start: usize,
        /// Requested end index (exclusive).
        end: usize,
        /// The size of that dimension.
        size: usize,
    },
    /// The operation received an argument that is structurally invalid,
    /// e.g. a convolution whose kernel is larger than its padded input.
    InvalidArgument(String),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { expected, actual } => {
                write!(f, "shape mismatch: expected {expected}, got {actual}")
            }
            TensorError::DimOutOfRange { dim, rank } => {
                write!(f, "dimension {dim} out of range for rank-{rank} tensor")
            }
            TensorError::RangeOutOfBounds {
                dim,
                start,
                end,
                size,
            } => write!(
                f,
                "range {start}..{end} out of bounds for dimension {dim} of size {size}"
            ),
            TensorError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errors = [
            TensorError::ShapeMismatch {
                expected: Shape::new(vec![1, 2]),
                actual: Shape::new(vec![2, 1]),
            },
            TensorError::DimOutOfRange { dim: 5, rank: 2 },
            TensorError::RangeOutOfBounds {
                dim: 0,
                start: 3,
                end: 9,
                size: 4,
            },
            TensorError::InvalidArgument("kernel larger than input".into()),
        ];
        for e in errors {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
