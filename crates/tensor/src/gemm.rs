//! Cache-blocked f32 GEMM, matrix–vector products, and the im2col lowering
//! that route every dense kernel in this crate through one tuned inner loop.
//!
//! All heavy ops (`conv2d`, `dense`, `depthwise_conv2d`, the LSTM gate
//! matmuls) lower to [`gemm`] / [`gemv`] here. The naive 6-loop kernels they
//! replace are kept in their modules as `#[cfg(test)]` references.
//!
//! # Determinism contract
//!
//! [`gemm`] accumulates each output element strictly in ascending-`k` order,
//! regardless of the cache-block sizes and regardless of the worker-thread
//! count (threads split output *rows*; every element is computed entirely by
//! one thread). Results are therefore bit-identical across `GILLIS_THREADS`
//! settings, and identical to a naive `acc += a[i][k] * b[k][j]` loop — which
//! is exactly the accumulation order of the reference convolution kernel, so
//! the im2col path reproduces it to the last bit (padding taps contribute
//! explicit `±0.0` additions, which only affect the sign of zero).
//!
//! With the `simd` cargo feature enabled *and* the CPU reporting AVX2+FMA at
//! runtime (see [`crate::simd::simd_active`]), the inner loops switch to
//! fused-multiply-add kernels. FMA changes rounding, so SIMD results differ
//! from the scalar kernels by bounded f32 error — but the per-element
//! ascending-`k` order and one-thread-per-element ownership are preserved,
//! so results remain bit-identical across `GILLIS_THREADS` settings within
//! either mode. Set `GILLIS_NO_SIMD=1` to force the scalar path at runtime.
//!
//! # Threading
//!
//! Multi-threaded paths run on the process-wide persistent pool
//! ([`gillis_pool::Pool::global`]) instead of spawning OS threads per call.
//! Small problems skip the pool entirely: below the measured thresholds
//! [`GEMM_PAR_MIN_MNK`] / [`GEMV_PAR_MIN_CELLS`] the dispatch overhead
//! exceeds the parallel win, so [`gemm`] and [`gemv`] stay on the calling
//! thread (the explicit `*_with_threads` entry points honour the caller's
//! count unconditionally — results are bit-identical either way).

use gillis_pool::{Pool, Task};

/// k-dimension block: one panel of `B` rows kept hot across the row sweep.
const KC: usize = 128;
/// n-dimension block: keeps a `KC`×`NC` panel of `B` (~512 KiB) cache-resident.
const NC: usize = 1024;

/// Small-GEMM cutoff on `m·n·k` (multiply-add count). Below this the whole
/// product finishes in roughly the time a pool round trip costs, so [`gemm`]
/// stays single-threaded. `128·32·32 = 131072` MACs is ~60–100 µs of blocked
/// kernel on one core — comfortably above batch-dispatch latency but small
/// enough that splitting it buys nothing. Fixes the dense/LSTM small-matmul
/// regression margin observed in `BENCH_tensor.json` before thresholds.
pub const GEMM_PAR_MIN_MNK: usize = 1 << 17;

/// Small-GEMV cutoff on `rows·cols` (weight cells). A matrix–vector product
/// is memory-bound — one pass over the weight matrix — so the parallel win
/// only covers dispatch once the matrix is a few megabytes. `1 << 19` cells
/// (2 MiB of f32 weights) keeps the LSTM gate GEMVs (`1024×256`) and other
/// sub-megabyte products on the calling thread while the VGG classifier
/// head (`1000×4096`, 16 MiB) still fans out.
pub const GEMV_PAR_MIN_CELLS: usize = 1 << 19;

/// Worker-thread count for the kernels in this crate — re-exported from
/// [`gillis_pool::gillis_threads`] (the `GILLIS_THREADS` environment
/// variable, or the machine's available parallelism).
pub fn gillis_threads() -> usize {
    gillis_pool::gillis_threads()
}

/// `C += A·B` with `A` row-major `m`×`k`, `B` row-major `k`×`n`, `C`
/// row-major `m`×`n`. `C` must be pre-initialized by the caller (zeros, or a
/// broadcast bias), which is how conv/dense fold their bias add into the
/// accumulation for free.
///
/// Uses [`gillis_threads`] workers; see the module docs for the determinism
/// contract.
///
/// # Panics
///
/// Panics if the slice lengths do not match the given dimensions.
pub fn gemm(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    let threads = if m.saturating_mul(n).saturating_mul(k) < GEMM_PAR_MIN_MNK {
        1
    } else {
        gillis_threads()
    };
    gemm_with_threads(m, n, k, a, b, c, threads);
}

/// [`gemm`] with an explicit worker count — the entry point tests use to
/// check bit-identical results across thread counts without racing on the
/// process environment.
///
/// # Panics
///
/// Panics if the slice lengths do not match the given dimensions.
pub fn gemm_with_threads(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    threads: usize,
) {
    assert_eq!(a.len(), m * k, "A must be m*k");
    assert_eq!(b.len(), k * n, "B must be k*n");
    assert_eq!(c.len(), m * n, "C must be m*n");
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let threads = threads.clamp(1, m);
    if threads == 1 {
        gemm_rows(n, k, a, b, c);
        return;
    }
    // Contiguous row chunks, one per task: each output element is owned by
    // exactly one task, so the reduction order never depends on scheduling.
    let rows_per = m.div_ceil(threads);
    let tasks: Vec<Task> = a
        .chunks(rows_per * k)
        .zip(c.chunks_mut(rows_per * n))
        .map(|(a_chunk, c_chunk)| -> Task {
            Box::new(move || gemm_rows(n, k, a_chunk, b, c_chunk))
        })
        .collect();
    Pool::global().join_all(tasks);
}

/// Micro-panel row height of [`PackedA`]: four `A` rows interleaved per
/// `k`-step so the packed kernel updates four output rows per sweep of a `B`
/// panel row.
const MR: usize = 4;
/// Register-tile width of the packed micro-kernel: 4×8 accumulators live in
/// registers across a `KC` block.
const NR: usize = 8;

/// The `A` operand of [`gemm`] repacked once into cache- and register-
/// friendly micro-panels, for matrices that are reused across many calls —
/// convolution filter banks in im2col form, where `A` is the weight matrix.
///
/// Layout: for each `KC`-wide block of `k`, rows are grouped into [`MR`]-high
/// blocks (a shorter remainder block at the bottom); within a block the
/// values are stored `k`-major with the block's rows interleaved
/// (`a[r0][kk], a[r0+1][kk], …`), so the micro-kernel reads one contiguous
/// little column per `k`-step.
///
/// [`gemm_packed`] consumes this layout and is bit-identical to [`gemm`] on
/// the unpacked matrix: packing only rearranges memory, and the kernel
/// accumulates every output element in the same ascending-`k` order (see the
/// module's determinism contract).
#[derive(Debug, Clone)]
pub struct PackedA {
    m: usize,
    k: usize,
    data: Vec<f32>,
}

impl PackedA {
    /// Packs the row-major `m`×`k` matrix `a`.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != m * k`.
    pub fn pack(m: usize, k: usize, a: &[f32]) -> Self {
        assert_eq!(a.len(), m * k, "A must be m*k");
        let mut data = vec![0.0f32; m * k];
        pack_panels(m, k, a, &mut data);
        PackedA { m, k, data }
    }

    /// Row count of the packed matrix.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Column (reduction) count of the packed matrix.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Packed size in bytes — what a panel cache accounts against memory.
    pub fn bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }
}

/// `C += A·B` with a pre-packed `A` (see [`PackedA`]); bit-identical to
/// [`gemm`] with the unpacked matrix, for any thread count.
///
/// Uses the same small-work threshold as [`gemm`]: below
/// [`GEMM_PAR_MIN_MNK`] multiply-adds the call stays on the calling thread
/// (no pool dispatch, no task allocation).
///
/// # Panics
///
/// Panics if the slice lengths do not match the packed dimensions.
pub fn gemm_packed(packed: &PackedA, n: usize, b: &[f32], c: &mut [f32]) {
    let work = packed.m.saturating_mul(n).saturating_mul(packed.k);
    let threads = if work < GEMM_PAR_MIN_MNK {
        1
    } else {
        gillis_threads()
    };
    gemm_packed_with_threads(packed, n, b, c, threads);
}

/// [`gemm_packed`] with an explicit worker count. Threads split output rows
/// at [`MR`]-block granularity, so every element is owned by one thread and
/// results are bit-identical for any count.
///
/// # Panics
///
/// Panics if the slice lengths do not match the packed dimensions.
pub fn gemm_packed_with_threads(
    packed: &PackedA,
    n: usize,
    b: &[f32],
    c: &mut [f32],
    threads: usize,
) {
    let (m, k) = (packed.m, packed.k);
    assert_eq!(b.len(), k * n, "B must be k*n");
    assert_eq!(c.len(), m * n, "C must be m*n");
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let nblocks = m.div_ceil(MR);
    let threads = threads.clamp(1, nblocks);
    if threads == 1 {
        packed_rows(packed, 0, n, b, c);
        return;
    }
    let rows_per = nblocks.div_ceil(threads) * MR;
    let tasks: Vec<Task> = c
        .chunks_mut(rows_per * n)
        .enumerate()
        .map(|(t, c_chunk)| -> Task {
            let row0 = t * rows_per;
            Box::new(move || packed_rows(packed, row0, n, b, c_chunk))
        })
        .collect();
    Pool::global().join_all(tasks);
}

/// Writes the [`PackedA`] micro-panel layout of the row-major `m`×`k`
/// matrix `a` into `data` (length `m * k`).
fn pack_panels(m: usize, k: usize, a: &[f32], data: &mut [f32]) {
    debug_assert_eq!(data.len(), m * k);
    let mut off = 0;
    let mut kb = 0;
    while kb < k {
        let kend = (kb + KC).min(k);
        let mut r0 = 0;
        while r0 < m {
            let bh = (m - r0).min(MR);
            for kk in kb..kend {
                for r in 0..bh {
                    data[off] = a[(r0 + r) * k + kk];
                    off += 1;
                }
            }
            r0 += bh;
        }
        kb = kend;
    }
}

/// Packed kernel over output rows `row0 .. row0 + c.len()/n`. `row0` must be
/// [`MR`]-aligned (thread chunks split at block boundaries).
fn packed_rows(packed: &PackedA, row0: usize, n: usize, b: &[f32], c: &mut [f32]) {
    packed_rows_raw(&packed.data, packed.m, packed.k, row0, n, b, c);
}

/// [`packed_rows`] over a raw micro-panel buffer — also the engine of the
/// unpacked SIMD path, which packs a row chunk into scratch on the fly.
fn packed_rows_raw(
    data: &[f32],
    m: usize,
    k: usize,
    row0: usize,
    n: usize,
    b: &[f32],
    c: &mut [f32],
) {
    debug_assert_eq!(row0 % MR, 0);
    let row1 = row0 + c.len() / n;
    let mut kb = 0;
    while kb < k {
        let kend = (kb + KC).min(k);
        let kc = kend - kb;
        // Packed data for this k-block starts at m*kb; row block r0 within
        // it starts r0*kc further (blocks are stored in row order).
        let block_base = m * kb;
        let mut nb = 0;
        while nb < n {
            let nend = (nb + NC).min(n);
            let mut r0 = row0;
            while r0 < row1 {
                let bh = (row1 - r0).min(MR);
                let panel = &data[block_base + r0 * kc..block_base + (r0 + bh) * kc];
                let c_rows = &mut c[(r0 - row0) * n..(r0 - row0 + bh) * n];
                #[cfg(all(feature = "simd", target_arch = "x86_64"))]
                if crate::simd::simd_active() {
                    // SAFETY: simd_active() verified AVX2+FMA at runtime.
                    // Both FMA kernels share one per-element operation
                    // history, so block grouping never changes rounding.
                    unsafe {
                        if bh == MR {
                            crate::simd::packed_micro_4_fma(panel, kc, kb, n, nb, nend, b, c_rows);
                        } else {
                            crate::simd::packed_micro_rem_fma(
                                panel, bh, kc, kb, n, nb, nend, b, c_rows,
                            );
                        }
                    }
                    r0 += bh;
                    continue;
                }
                if bh == MR {
                    packed_micro_4(panel, kc, kb, n, nb, nend, b, c_rows);
                } else {
                    packed_micro_rem(panel, bh, kc, kb, n, nb, nend, b, c_rows);
                }
                r0 += bh;
            }
            nb = nend;
        }
        kb = kend;
    }
}

/// 4-row register-blocked micro-kernel: 4×[`NR`] accumulators are loaded
/// from `C`, swept over the `KC` block in ascending-`k` order, and stored
/// back — one pass over each `B` panel row feeds four output rows, and `C`
/// traffic drops to once per `KC` block. The accumulators start from the
/// current `C` values, so per-element accumulation order is exactly that of
/// [`gemm`].
#[allow(clippy::too_many_arguments)]
fn packed_micro_4(
    panel: &[f32],
    kc: usize,
    k0: usize,
    n: usize,
    nb: usize,
    nend: usize,
    b: &[f32],
    c_rows: &mut [f32],
) {
    let (c0, rest) = c_rows.split_at_mut(n);
    let (c1, rest) = rest.split_at_mut(n);
    let (c2, c3) = rest.split_at_mut(n);
    let mut j = nb;
    while j + NR <= nend {
        let mut acc0 = [0.0f32; NR];
        let mut acc1 = [0.0f32; NR];
        let mut acc2 = [0.0f32; NR];
        let mut acc3 = [0.0f32; NR];
        acc0.copy_from_slice(&c0[j..j + NR]);
        acc1.copy_from_slice(&c1[j..j + NR]);
        acc2.copy_from_slice(&c2[j..j + NR]);
        acc3.copy_from_slice(&c3[j..j + NR]);
        for kk in 0..kc {
            let ap = &panel[kk * MR..kk * MR + MR];
            let brow = &b[(k0 + kk) * n + j..(k0 + kk) * n + j + NR];
            for t in 0..NR {
                let bv = brow[t];
                acc0[t] += ap[0] * bv;
                acc1[t] += ap[1] * bv;
                acc2[t] += ap[2] * bv;
                acc3[t] += ap[3] * bv;
            }
        }
        c0[j..j + NR].copy_from_slice(&acc0);
        c1[j..j + NR].copy_from_slice(&acc1);
        c2[j..j + NR].copy_from_slice(&acc2);
        c3[j..j + NR].copy_from_slice(&acc3);
        j += NR;
    }
    while j < nend {
        let mut a0 = c0[j];
        let mut a1 = c1[j];
        let mut a2 = c2[j];
        let mut a3 = c3[j];
        for kk in 0..kc {
            let ap = &panel[kk * MR..kk * MR + MR];
            let bv = b[(k0 + kk) * n + j];
            a0 += ap[0] * bv;
            a1 += ap[1] * bv;
            a2 += ap[2] * bv;
            a3 += ap[3] * bv;
        }
        c0[j] = a0;
        c1[j] = a1;
        c2[j] = a2;
        c3[j] = a3;
        j += 1;
    }
}

/// Remainder block (fewer than [`MR`] rows at the bottom of the matrix):
/// plain axpy sweeps in the same per-element order.
#[allow(clippy::too_many_arguments)]
fn packed_micro_rem(
    panel: &[f32],
    bh: usize,
    kc: usize,
    k0: usize,
    n: usize,
    nb: usize,
    nend: usize,
    b: &[f32],
    c_rows: &mut [f32],
) {
    for r in 0..bh {
        let c_row = &mut c_rows[r * n + nb..r * n + nend];
        for kk in 0..kc {
            let aik = panel[kk * bh + r];
            let b_row = &b[(k0 + kk) * n + nb..(k0 + kk) * n + nend];
            for (cv, bv) in c_row.iter_mut().zip(b_row.iter()) {
                *cv += aik * *bv;
            }
        }
    }
}

/// Sequential blocked kernel over a contiguous chunk of output rows.
///
/// Loop order is `kb → nb → i → kk → j`: a `KC`×`NC` panel of `B` stays
/// cache-hot while all rows sweep over it, and the `j` loop is a pure axpy
/// over contiguous slices, which the compiler vectorizes. Per output element
/// the additions happen in ascending-`k` order for any block sizes.
fn gemm_rows(n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if crate::simd::simd_active() {
        return gemm_rows_fma(n, k, a, b, c);
    }
    let m = a.len() / k;
    let mut kb = 0;
    while kb < k {
        let kend = (kb + KC).min(k);
        let mut nb = 0;
        while nb < n {
            let nend = (nb + NC).min(n);
            for i in 0..m {
                let a_row = &a[i * k..(i + 1) * k];
                let c_row = &mut c[i * n + nb..i * n + nend];
                for kk in kb..kend {
                    let aik = a_row[kk];
                    let b_row = &b[kk * n + nb..kk * n + nend];
                    for (cv, bv) in c_row.iter_mut().zip(b_row.iter()) {
                        *cv += aik * *bv;
                    }
                }
            }
            nb = nend;
        }
        kb = kend;
    }
}

/// [`gemm_rows`] for SIMD mode: the plain axpy loop is L1-bandwidth-bound
/// (it re-streams the `C` and `B` rows every `k` step, so wider multiplies
/// buy nothing). Instead the row chunk is repacked into micro-panels in a
/// per-thread scratch buffer and run through the register-blocked FMA
/// micro-kernels — 4× the register reuse, which is where FMA pays off.
/// Packing reuses scratch capacity, so the warm path stays allocation-free.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
fn gemm_rows_fma(n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    use crate::scratch::{self, Site};
    let m = a.len() / k;
    let mut buf = scratch::take(Site::GemmPack);
    buf.clear();
    buf.resize(m * k, 0.0);
    pack_panels(m, k, a, &mut buf);
    packed_rows_raw(&buf, m, k, 0, n, b, c);
    scratch::put(Site::GemmPack, buf);
}

/// `out += W·x` with `W` row-major `rows`×`cols`: the matrix–vector product
/// behind `dense` and the LSTM gate pre-activations. `out` must be
/// pre-initialized (zeros or bias).
///
/// Each row's dot product runs over eight independent accumulator lanes
/// (reassociating the sum, so results differ from a serial dot by normal f32
/// rounding), then lanes are combined in a fixed order — deterministic for a
/// given length, and identical across thread counts because each output row
/// is owned by one thread.
///
/// # Panics
///
/// Panics if the slice lengths do not match the given dimensions.
pub fn gemv(rows: usize, cols: usize, w: &[f32], x: &[f32], out: &mut [f32]) {
    let threads = if rows.saturating_mul(cols) < GEMV_PAR_MIN_CELLS {
        1
    } else {
        gillis_threads()
    };
    gemv_with_threads(rows, cols, w, x, out, threads);
}

/// [`gemv`] with an explicit worker count, bypassing the small-work
/// threshold — the entry point tests use to check bit-identical results
/// across thread counts.
///
/// # Panics
///
/// Panics if the slice lengths do not match the given dimensions.
pub fn gemv_with_threads(
    rows: usize,
    cols: usize,
    w: &[f32],
    x: &[f32],
    out: &mut [f32],
    threads: usize,
) {
    assert_eq!(w.len(), rows * cols, "W must be rows*cols");
    assert_eq!(x.len(), cols, "x must be cols");
    assert_eq!(out.len(), rows, "out must be rows");
    if rows == 0 || cols == 0 {
        return;
    }
    let threads = threads.clamp(1, rows);
    if threads == 1 {
        gemv_rows(cols, w, x, out);
        return;
    }
    let rows_per = rows.div_ceil(threads);
    let tasks: Vec<Task> = w
        .chunks(rows_per * cols)
        .zip(out.chunks_mut(rows_per))
        .map(|(w_chunk, out_chunk)| -> Task {
            Box::new(move || gemv_rows(cols, w_chunk, x, out_chunk))
        })
        .collect();
    Pool::global().join_all(tasks);
}

fn gemv_rows(cols: usize, w: &[f32], x: &[f32], out: &mut [f32]) {
    for (r, o) in out.iter_mut().enumerate() {
        *o += row_dot(&w[r * cols..(r + 1) * cols], x);
    }
}

/// The eight-lane row dot product behind [`gemv`] *and* [`gemv_multi`]: one
/// shared implementation so a `(row, query)` pair accumulates identically
/// whether the query runs alone or inside a batch — that is the whole
/// bit-identity argument for the batched dense path.
#[inline]
fn row_dot(row: &[f32], x: &[f32]) -> f32 {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if crate::simd::simd_active() {
        // SAFETY: simd_active() verified AVX2+FMA at runtime.
        return unsafe { crate::simd::row_dot_fma(row, x) };
    }
    const LANES: usize = 8;
    let mut acc = [0.0f32; LANES];
    let mut chunks = row.chunks_exact(LANES).zip(x.chunks_exact(LANES));
    for (wc, xc) in &mut chunks {
        for l in 0..LANES {
            acc[l] += wc[l] * xc[l];
        }
    }
    let tail: f32 = row
        .chunks_exact(LANES)
        .remainder()
        .iter()
        .zip(x.chunks_exact(LANES).remainder())
        .map(|(a, b)| a * b)
        .sum();
    ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7])) + tail
}

/// Batched matrix–vector product: `outs[r][q] += W[r] · xs[q]` for `nrhs`
/// right-hand sides sharing one weight matrix. `xs` holds the inputs
/// concatenated (`nrhs` × `cols`); `outs` is row-major `rows` × `nrhs` and
/// must be pre-initialized (zeros or a per-row bias broadcast across the
/// batch).
///
/// Each `(row, q)` dot product uses exactly the [`gemv`] accumulation scheme
/// ([`row_dot`]), so every output is bit-identical to `nrhs` separate `gemv`
/// calls — the batch only amortizes the weight-matrix traversal: each `W`
/// row is streamed from memory once and dotted against all `nrhs` inputs
/// while cache-hot.
///
/// # Panics
///
/// Panics if the slice lengths do not match the given dimensions.
pub fn gemv_multi(rows: usize, cols: usize, w: &[f32], xs: &[f32], outs: &mut [f32], nrhs: usize) {
    let threads = if rows.saturating_mul(cols) < GEMV_PAR_MIN_CELLS {
        1
    } else {
        gillis_threads()
    };
    gemv_multi_with_threads(rows, cols, w, xs, outs, nrhs, threads);
}

/// [`gemv_multi`] with an explicit worker count. Threads split weight rows
/// (each `(row, q)` output owned by one thread), so results are bit-identical
/// for any count.
///
/// # Panics
///
/// Panics if the slice lengths do not match the given dimensions.
#[allow(clippy::too_many_arguments)]
pub fn gemv_multi_with_threads(
    rows: usize,
    cols: usize,
    w: &[f32],
    xs: &[f32],
    outs: &mut [f32],
    nrhs: usize,
    threads: usize,
) {
    assert_eq!(w.len(), rows * cols, "W must be rows*cols");
    assert_eq!(xs.len(), nrhs * cols, "xs must be nrhs*cols");
    assert_eq!(outs.len(), rows * nrhs, "outs must be rows*nrhs");
    if rows == 0 || cols == 0 || nrhs == 0 {
        return;
    }
    let threads = threads.clamp(1, rows);
    if threads == 1 {
        gemv_multi_rows(cols, nrhs, w, xs, outs);
        return;
    }
    let rows_per = rows.div_ceil(threads);
    let tasks: Vec<Task> = w
        .chunks(rows_per * cols)
        .zip(outs.chunks_mut(rows_per * nrhs))
        .map(|(w_chunk, out_chunk)| -> Task {
            Box::new(move || gemv_multi_rows(cols, nrhs, w_chunk, xs, out_chunk))
        })
        .collect();
    Pool::global().join_all(tasks);
}

fn gemv_multi_rows(cols: usize, nrhs: usize, w: &[f32], xs: &[f32], outs: &mut [f32]) {
    for (r, orow) in outs.chunks_exact_mut(nrhs).enumerate() {
        let row = &w[r * cols..(r + 1) * cols];
        for (q, o) in orow.iter_mut().enumerate() {
            *o += row_dot(row, &xs[q * cols..(q + 1) * cols]);
        }
    }
}

/// Lowers a CHW image to the im2col matrix for a convolution: row
/// `(ic·kh + ky)·kw + kx`, column `oy·out_w + ox` holds the input value that
/// tap touches for that output position, or `0.0` where the tap falls in the
/// padding. The resulting `(channels·kh·kw)` × `(out_h·out_w)` matrix
/// multiplies against the `[out_c, in_c·kh·kw]` weight matrix — the weights'
/// native layout — so `conv2d` is a single [`gemm`].
///
/// `col` is cleared and resized; reusing one buffer across calls avoids
/// repeated allocation.
#[allow(clippy::too_many_arguments)]
pub fn im2col(
    input: &[f32],
    channels: usize,
    in_h: usize,
    in_w: usize,
    kernel: (usize, usize),
    stride: (usize, usize),
    pad_top: usize,
    pad_left: usize,
    out_hw: (usize, usize),
    col: &mut Vec<f32>,
) {
    let (kh, kw) = kernel;
    let (out_h, out_w) = out_hw;
    let n = out_h * out_w;
    col.clear();
    col.resize(channels * kh * kw * n, 0.0);
    im2col_strided(
        input, channels, in_h, in_w, kernel, stride, pad_top, pad_left, out_hw, col, n, 0,
    );
}

/// [`im2col`] writing into a *widened* column matrix: row `r` of this
/// image's lowering lands at `col[r * row_stride + col0 ..][..out_h*out_w]`.
/// This is how a batch of `N` inputs assembles one `k × (N·out_hw)` B matrix
/// for a single widened GEMM — item `i` passes `col0 = i · out_hw`.
///
/// The destination region must be pre-zeroed (padding taps are left
/// untouched, exactly like [`im2col`] after its `resize`).
///
/// # Panics
///
/// Panics if `col` is too short for the strided layout.
#[allow(clippy::too_many_arguments)]
pub fn im2col_strided(
    input: &[f32],
    channels: usize,
    in_h: usize,
    in_w: usize,
    kernel: (usize, usize),
    stride: (usize, usize),
    pad_top: usize,
    pad_left: usize,
    out_hw: (usize, usize),
    col: &mut [f32],
    row_stride: usize,
    col0: usize,
) {
    let (kh, kw) = kernel;
    let (sh, sw) = stride;
    let (out_h, out_w) = out_hw;
    let (pt, pl) = (pad_top as isize, pad_left as isize);
    let n = out_h * out_w;
    let rows = channels * kh * kw;
    assert!(col0 + n <= row_stride, "column offset past the row stride");
    assert!(
        rows == 0 || (rows - 1) * row_stride + col0 + n <= col.len(),
        "col too short for {rows} strided rows"
    );
    let in_plane = in_h * in_w;
    let mut row_idx = 0;
    for ic in 0..channels {
        let in_base = ic * in_plane;
        for ky in 0..kh {
            for kx in 0..kw {
                let base = row_idx * row_stride + col0;
                let dst = &mut col[base..base + n];
                row_idx += 1;
                for oy in 0..out_h {
                    let iy = (oy * sh) as isize - pt + ky as isize;
                    if iy < 0 || iy >= in_h as isize {
                        continue; // stays zero-padded
                    }
                    let src_row = in_base + iy as usize * in_w;
                    let dst_row = &mut dst[oy * out_w..(oy + 1) * out_w];
                    if sw == 1 {
                        // Stride-1 columns are a contiguous shifted copy.
                        let shift = kx as isize - pl; // ix = ox + shift
                        let ox0 = (-shift).max(0) as usize;
                        let ox1 = (in_w as isize - shift).clamp(0, out_w as isize) as usize;
                        if ox0 < ox1 {
                            let src0 = (ox0 as isize + shift) as usize;
                            dst_row[ox0..ox1].copy_from_slice(
                                &input[src_row + src0..src_row + src0 + (ox1 - ox0)],
                            );
                        }
                    } else {
                        for (ox, d) in dst_row.iter_mut().enumerate() {
                            let ix = (ox * sw) as isize - pl + kx as isize;
                            if ix >= 0 && ix < in_w as isize {
                                *d = input[src_row + ix as usize];
                            }
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Whether f32 kernel outputs may differ from the scalar reference by
    /// FMA rounding (the `simd` feature is on and the CPU supports it).
    fn fma_rounding() -> bool {
        crate::simd::simd_active()
    }

    /// Documented SIMD accuracy bound (DESIGN.md §12): each output element
    /// accumulates `k` fused multiply-adds, each contributing at most one
    /// half-ulp of the running value versus the scalar mul+add kernel, so
    /// the divergence is bounded by `k · ε · max(1, |value|)` with a safety
    /// factor of 4.
    fn simd_tol(k: usize, value: f32) -> f32 {
        4.0 * f32::EPSILON * k as f32 * value.abs().max(1.0)
    }

    /// Exact bitwise equality in scalar mode; the documented FMA bound when
    /// the SIMD kernels are active.
    fn assert_kernels_agree(
        want: &[f32],
        got: &[f32],
        k: usize,
    ) -> std::result::Result<(), proptest::TestCaseError> {
        if fma_rounding() {
            for (i, (w, g)) in want.iter().zip(got.iter()).enumerate() {
                prop_assert!(
                    (w - g).abs() <= simd_tol(k, *w),
                    "element {}: {} vs {} (tol {})",
                    i,
                    w,
                    g,
                    simd_tol(k, *w)
                );
            }
        } else {
            prop_assert_eq!(
                want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                got.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
        }
        Ok(())
    }

    /// Textbook triple loop in the same per-element accumulation order.
    fn gemm_naive(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
        for i in 0..m {
            for j in 0..n {
                let mut acc = c[i * n + j];
                for kk in 0..k {
                    acc += a[i * k + kk] * b[kk * n + j];
                }
                c[i * n + j] = acc;
            }
        }
    }

    #[test]
    fn known_2x2_product() {
        // [[1,2],[3,4]] · [[5,6],[7,8]] = [[19,22],[43,50]]
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [5.0, 6.0, 7.0, 8.0];
        let mut c = [0.0; 4];
        gemm(2, 2, 2, &a, &b, &mut c);
        assert_eq!(c, [19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn bias_preinit_is_added() {
        let a = [1.0, 0.0];
        let b = [2.0, 3.0, 100.0, 100.0];
        let mut c = [10.0, 20.0];
        gemm(1, 2, 2, &a, &b, &mut c);
        assert_eq!(c, [12.0, 23.0]);
    }

    #[test]
    fn empty_dims_are_noops() {
        let mut c = [1.0f32; 4];
        gemm(2, 2, 0, &[], &[], &mut c);
        assert_eq!(c, [1.0; 4]);
        gemm(0, 0, 3, &[], &[], &mut []);
    }

    #[test]
    fn gemv_matches_serial_dot_for_small_rows() {
        // cols < 8 exercises only the tail loop: exact match with naive.
        let w = [1.0, 0.0, 0.0, 0.0, 1.0, 1.0];
        let x = [1.0, 2.0, 3.0];
        let mut out = [10.0, -10.0];
        gemv(2, 3, &w, &x, &mut out);
        assert_eq!(out, [11.0, -5.0]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn gemm_matches_naive_bitwise(
            (m, n, k) in (1usize..8, 1usize..40, 1usize..20),
            seed in 0u32..1000,
        ) {
            let a: Vec<f32> = (0..m * k)
                .map(|i| (((i as u32).wrapping_mul(2654435761).wrapping_add(seed) % 1000) as f32 - 500.0) * 1e-3)
                .collect();
            let b: Vec<f32> = (0..k * n)
                .map(|i| (((i as u32).wrapping_mul(40503).wrapping_add(seed) % 1000) as f32 - 500.0) * 1e-3)
                .collect();
            let init: Vec<f32> = (0..m * n).map(|i| (i % 7) as f32 * 0.5).collect();
            let mut want = init.clone();
            gemm_naive(m, n, k, &a, &b, &mut want);
            let mut got = init.clone();
            gemm_with_threads(m, n, k, &a, &b, &mut got, 1);
            assert_kernels_agree(&want, &got, k)?;
        }

        /// Satellite coverage: SIMD and scalar GEMM agree within the
        /// documented bound for every `GILLIS_THREADS` setting the repo
        /// tests (1, 2, 8). In scalar builds this degenerates to the exact
        /// bitwise check.
        #[test]
        fn simd_gemm_matches_scalar_reference_across_threads(
            (m, n, k) in (1usize..10, 1usize..40, 1usize..160),
            seed in 0u32..1000,
        ) {
            let a: Vec<f32> = (0..m * k)
                .map(|i| ((i as u32 ^ seed).wrapping_mul(747796405) % 997) as f32 * 1e-3 - 0.5)
                .collect();
            let b: Vec<f32> = (0..k * n)
                .map(|i| ((i as u32 ^ seed).wrapping_mul(277803737) % 991) as f32 * 1e-3 - 0.5)
                .collect();
            let init: Vec<f32> = (0..m * n).map(|i| (i % 3) as f32 * 0.5).collect();
            let mut want = init.clone();
            gemm_naive(m, n, k, &a, &b, &mut want);
            for threads in [1usize, 2, 8] {
                let mut got = init.clone();
                gemm_with_threads(m, n, k, &a, &b, &mut got, threads);
                assert_kernels_agree(&want, &got, k)?;
            }
        }

        #[test]
        fn gemm_is_bit_identical_across_thread_counts(
            (m, n, k) in (1usize..12, 1usize..30, 1usize..16),
            seed in 0u32..1000,
        ) {
            let a: Vec<f32> = (0..m * k)
                .map(|i| ((i as u32 ^ seed).wrapping_mul(747796405) % 997) as f32 * 1e-3 - 0.5)
                .collect();
            let b: Vec<f32> = (0..k * n)
                .map(|i| ((i as u32 ^ seed).wrapping_mul(277803737) % 991) as f32 * 1e-3 - 0.5)
                .collect();
            let mut c1 = vec![0.25f32; m * n];
            let mut c8 = c1.clone();
            gemm_with_threads(m, n, k, &a, &b, &mut c1, 1);
            gemm_with_threads(m, n, k, &a, &b, &mut c8, 8);
            prop_assert_eq!(
                c1.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                c8.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
        }

        #[test]
        fn packed_gemm_is_bit_identical_to_unpacked(
            (m, n, k) in (1usize..14, 1usize..40, 1usize..300),
            seed in 0u32..1000,
        ) {
            // m ranges over all MR remainders; k crosses the KC=128 block
            // boundary; n crosses the NR=8 register-tile remainder.
            let a: Vec<f32> = (0..m * k)
                .map(|i| ((i as u32 ^ seed).wrapping_mul(747796405) % 997) as f32 * 1e-3 - 0.5)
                .collect();
            let b: Vec<f32> = (0..k * n)
                .map(|i| ((i as u32 ^ seed).wrapping_mul(277803737) % 991) as f32 * 1e-3 - 0.5)
                .collect();
            let init: Vec<f32> = (0..m * n).map(|i| (i % 5) as f32 * 0.25).collect();
            let mut want = init.clone();
            gemm_with_threads(m, n, k, &a, &b, &mut want, 1);
            let packed = PackedA::pack(m, k, &a);
            for threads in [1usize, 2, 8] {
                let mut got = init.clone();
                gemm_packed_with_threads(&packed, n, &b, &mut got, threads);
                // Packed and unpacked kernels are bit-identical in scalar
                // mode; under SIMD both use FMA but with different sweep
                // shapes, so they agree to the documented bound instead.
                assert_kernels_agree(&want, &got, k)?;
            }
        }

        #[test]
        fn gemv_is_bit_identical_across_thread_counts(
            (rows, cols) in (1usize..24, 1usize..40),
            seed in 0u32..1000,
        ) {
            let w: Vec<f32> = (0..rows * cols)
                .map(|i| ((i as u32 ^ seed).wrapping_mul(2891336453) % 1009) as f32 * 1e-3 - 0.5)
                .collect();
            let x: Vec<f32> = (0..cols)
                .map(|i| ((i as u32 ^ seed).wrapping_mul(1181783497) % 1013) as f32 * 1e-3 - 0.5)
                .collect();
            let mut out1 = vec![0.125f32; rows];
            let mut out8 = out1.clone();
            gemv_with_threads(rows, cols, &w, &x, &mut out1, 1);
            gemv_with_threads(rows, cols, &w, &x, &mut out8, 8);
            prop_assert_eq!(
                out1.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                out8.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
        }

        /// The batching linchpin: a widened-B GEMM (all batch items' column
        /// blocks side by side) is bit-identical to running the packed GEMM
        /// once per item, in scalar *and* SIMD mode, for every thread count.
        /// This holds because every micro-kernel accumulates each output
        /// column independently with position-invariant rounding (the SIMD
        /// kernels fuse the scalar column tail, so a column computed in the
        /// 8-wide FMA tile and one computed in the tail round identically).
        #[test]
        fn widened_b_gemm_is_bit_identical_to_per_item(
            (m, n, k) in (1usize..14, 1usize..24, 1usize..300),
            batch_sel in 0usize..3,
            seed in 0u32..1000,
        ) {
            let batch = [2usize, 3, 8][batch_sel];
            let a: Vec<f32> = (0..m * k)
                .map(|i| ((i as u32 ^ seed).wrapping_mul(747796405) % 997) as f32 * 1e-3 - 0.5)
                .collect();
            let packed = PackedA::pack(m, k, &a);
            let bs: Vec<Vec<f32>> = (0..batch)
                .map(|q| {
                    (0..k * n)
                        .map(|i| {
                            ((i as u32 ^ seed ^ (q as u32) << 13).wrapping_mul(277803737) % 991)
                                as f32
                                * 1e-3
                                - 0.5
                        })
                        .collect()
                })
                .collect();
            // Row-dependent init plays the role of a per-channel bias.
            let nt = batch * n;
            let mut wide_b = vec![0.0f32; k * nt];
            for (q, b) in bs.iter().enumerate() {
                for r in 0..k {
                    wide_b[r * nt + q * n..r * nt + (q + 1) * n]
                        .copy_from_slice(&b[r * n..(r + 1) * n]);
                }
            }
            for threads in [1usize, 2, 8] {
                let mut per_item = Vec::with_capacity(batch);
                for b in &bs {
                    let mut c: Vec<f32> = (0..m * n).map(|i| (i / n % 5) as f32 * 0.25).collect();
                    gemm_packed_with_threads(&packed, n, b, &mut c, threads);
                    per_item.push(c);
                }
                let mut wide_c: Vec<f32> =
                    (0..m * nt).map(|i| (i / nt % 5) as f32 * 0.25).collect();
                gemm_packed_with_threads(&packed, nt, &wide_b, &mut wide_c, threads);
                for (q, c) in per_item.iter().enumerate() {
                    for r in 0..m {
                        let wide_row = &wide_c[r * nt + q * n..r * nt + (q + 1) * n];
                        let item_row = &c[r * n..(r + 1) * n];
                        prop_assert_eq!(
                            wide_row.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                            item_row.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                            "threads={} item={} row={}", threads, q, r
                        );
                    }
                }
            }
        }

        #[test]
        fn gemv_multi_is_bit_identical_to_per_query_gemv(
            (rows, cols) in (1usize..24, 1usize..70),
            nrhs_sel in 0usize..3,
            seed in 0u32..1000,
        ) {
            let nrhs = [2usize, 3, 8][nrhs_sel];
            let w: Vec<f32> = (0..rows * cols)
                .map(|i| ((i as u32 ^ seed).wrapping_mul(2891336453) % 1009) as f32 * 1e-3 - 0.5)
                .collect();
            let xs: Vec<f32> = (0..nrhs * cols)
                .map(|i| ((i as u32 ^ seed).wrapping_mul(1181783497) % 1013) as f32 * 1e-3 - 0.5)
                .collect();
            let mut want = vec![0.0f32; rows * nrhs];
            for q in 0..nrhs {
                let mut out = vec![0.125f32; rows];
                gemv(rows, cols, &w, &xs[q * cols..(q + 1) * cols], &mut out);
                for r in 0..rows {
                    want[r * nrhs + q] = out[r];
                }
            }
            for threads in [1usize, 2, 8] {
                let mut got = vec![0.125f32; rows * nrhs];
                gemv_multi_with_threads(rows, cols, &w, &xs, &mut got, nrhs, threads);
                prop_assert_eq!(
                    want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "threads={}", threads
                );
            }
        }

        #[test]
        fn gemv_close_to_serial_dot(
            (rows, cols) in (1usize..10, 1usize..70),
            seed in 0u32..1000,
        ) {
            let w: Vec<f32> = (0..rows * cols)
                .map(|i| ((i as u32 ^ seed).wrapping_mul(2891336453) % 1009) as f32 * 1e-3 - 0.5)
                .collect();
            let x: Vec<f32> = (0..cols)
                .map(|i| ((i as u32 ^ seed).wrapping_mul(1181783497) % 1013) as f32 * 1e-3 - 0.5)
                .collect();
            let mut got = vec![0.0f32; rows];
            gemv(rows, cols, &w, &x, &mut got);
            for r in 0..rows {
                let want: f32 = w[r * cols..(r + 1) * cols]
                    .iter()
                    .zip(x.iter())
                    .map(|(a, b)| a * b)
                    .sum();
                prop_assert!((got[r] - want).abs() < 1e-4, "row {}: {} vs {}", r, got[r], want);
            }
        }

        #[test]
        fn im2col_strided_matches_dense_gather(
            (in_h, in_w) in (3usize..9, 3usize..9),
            (sh, sw) in (1usize..3, 1usize..3),
            pad in 0usize..2,
        ) {
            // Cross-check the stride-1 copy fast path against the generic
            // gather by forcing both code paths over the same geometry.
            let (kh, kw) = (3, 3);
            let h = in_h + 2 * pad;
            let w = in_w + 2 * pad;
            prop_assume!(h >= kh && w >= kw);
            let out_h = (h - kh) / sh + 1;
            let out_w = (w - kw) / sw + 1;
            let input: Vec<f32> = (0..2 * in_h * in_w).map(|i| i as f32 + 1.0).collect();
            let mut col = Vec::new();
            im2col(&input, 2, in_h, in_w, (kh, kw), (sh, sw), pad, pad, (out_h, out_w), &mut col);
            let n = out_h * out_w;
            for ic in 0..2 {
                for ky in 0..kh {
                    for kx in 0..kw {
                        let row = &col[((ic * kh + ky) * kw + kx) * n..][..n];
                        for oy in 0..out_h {
                            for ox in 0..out_w {
                                let iy = (oy * sh + ky) as isize - pad as isize;
                                let ix = (ox * sw + kx) as isize - pad as isize;
                                let want = if iy >= 0
                                    && iy < in_h as isize
                                    && ix >= 0
                                    && ix < in_w as isize
                                {
                                    input[ic * in_h * in_w + iy as usize * in_w + ix as usize]
                                } else {
                                    0.0
                                };
                                prop_assert_eq!(row[oy * out_w + ox], want);
                            }
                        }
                    }
                }
            }
        }
    }
}
