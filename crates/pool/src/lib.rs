//! Persistent work-stealing thread pool shared by every parallel path in the
//! workspace.
//!
//! Before this crate, each threaded kernel (`gemm`, `gemv`, depthwise conv,
//! the DP option evaluator) paid OS-thread spawn and join cost on every call
//! via `crossbeam::thread::scope`. A warm serving path cannot afford that:
//! spawning threads costs tens of microseconds while a small GEMM finishes in
//! a handful. This pool spawns its workers once (lazily, on first use), parks
//! them between batches, and hands batches of scoped tasks to whichever
//! threads are idle.
//!
//! # Execution model
//!
//! Work arrives as a *batch* of `FnOnce` tasks ([`Pool::join_all`]) or as an
//! indexed map ([`Pool::run`]). Batches are published on a shared injector
//! queue; idle workers *steal* task indices from the oldest batch with work
//! remaining (claiming is a single `fetch_add`, so load balancing is dynamic).
//! The submitting thread always participates in its own batch — it claims and
//! executes tasks alongside the workers and only blocks once every task has
//! been claimed. Because the caller can drain its batch entirely by itself,
//! nested submissions (a pool task that itself calls [`Pool::join_all`])
//! cannot deadlock, whatever the worker count.
//!
//! # Determinism contract
//!
//! The pool never changes *what* is computed, only *where*: each task is
//! executed exactly once, and [`Pool::run`] writes the result of task `i`
//! into slot `i`. Callers that need bit-identical floating-point results
//! across thread counts follow the workspace-wide rule: split work into
//! chunks whose contents do not depend on the worker count (or depend only on
//! an explicit `threads` parameter), compute each chunk independently, and
//! reduce sequentially in chunk order on the submitting thread.
//!
//! # Sizing
//!
//! [`Pool::global`] sizes itself from the `GILLIS_THREADS` environment
//! variable, falling back to the machine's available parallelism (see
//! [`gillis_threads`]). A width-1 pool spawns no workers and runs every batch
//! inline, making single-threaded configurations overhead-free.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// A scoped unit of work: may borrow from the submitting stack frame because
/// [`Pool::join_all`] does not return until every task has finished.
pub type Task<'env> = Box<dyn FnOnce() + Send + 'env>;

/// Worker-thread budget for the whole process: the `GILLIS_THREADS`
/// environment variable if set to a positive integer, otherwise the
/// machine's available parallelism. Read once and cached for the process
/// lifetime.
pub fn gillis_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        std::env::var("GILLIS_THREADS")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
    })
}

/// One published batch of erased tasks plus its completion latch.
struct Batch {
    /// Task slots; a claimed index grants exclusive right to take that slot.
    tasks: Mutex<Vec<Option<Task<'static>>>>,
    /// Next unclaimed task index (the steal counter).
    next: AtomicUsize,
    /// Total tasks in the batch.
    len: usize,
    /// Tasks not yet finished executing.
    remaining: AtomicUsize,
    /// Completion latch: locked/notified when `remaining` hits zero.
    done: Mutex<()>,
    done_cv: Condvar,
    /// First panic payload observed while executing this batch.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl Batch {
    fn new(tasks: Vec<Option<Task<'static>>>) -> Self {
        let len = tasks.len();
        Batch {
            tasks: Mutex::new(tasks),
            next: AtomicUsize::new(0),
            len,
            remaining: AtomicUsize::new(len),
            done: Mutex::new(()),
            done_cv: Condvar::new(),
            panic: Mutex::new(None),
        }
    }

    fn has_work(&self) -> bool {
        self.next.load(Ordering::Acquire) < self.len
    }

    /// Claims the next unexecuted task, or `None` when the batch is drained.
    fn claim(&self) -> Option<Task<'static>> {
        loop {
            let idx = self.next.fetch_add(1, Ordering::AcqRel);
            if idx >= self.len {
                // Park the counter so it cannot wrap after u64::MAX claims.
                self.next.store(self.len, Ordering::Release);
                return None;
            }
            if let Some(task) = self.tasks.lock().expect("pool batch poisoned")[idx].take() {
                return Some(task);
            }
        }
    }

    /// Runs one claimed task, recording panics and signalling completion.
    fn execute(&self, task: Task<'static>) {
        if let Err(payload) = catch_unwind(AssertUnwindSafe(task)) {
            let mut slot = self.panic.lock().expect("pool panic slot poisoned");
            if slot.is_none() {
                *slot = Some(payload);
            }
        }
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Takes the latch before notifying so a waiter that just checked
            // `remaining` and is about to sleep cannot miss the wakeup.
            let _guard = self.done.lock().expect("pool latch poisoned");
            self.done_cv.notify_all();
        }
    }

    fn is_done(&self) -> bool {
        self.remaining.load(Ordering::Acquire) == 0
    }
}

/// The injector: published batches plus the shutdown flag, guarded together
/// so workers sleeping on `work_ready` can never miss either signal.
struct Injector {
    /// Batches with (possibly) unclaimed tasks, oldest first.
    batches: VecDeque<Arc<Batch>>,
    /// Set by `Drop`; workers exit once the queue drains.
    shutdown: bool,
}

/// State shared between the submitting threads and the workers.
struct Shared {
    queue: Mutex<Injector>,
    /// Signalled when a batch is published or the pool shuts down.
    work_ready: Condvar,
}

/// A persistent pool of worker threads executing scoped task batches.
///
/// Most callers want [`Pool::global`]; dedicated pools exist for tests and
/// for embedding at a fixed width.
pub struct Pool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("width", &self.width())
            .finish()
    }
}

impl Pool {
    /// The process-wide pool, created on first use and sized by
    /// [`gillis_threads`].
    pub fn global() -> &'static Pool {
        static POOL: OnceLock<Pool> = OnceLock::new();
        POOL.get_or_init(|| Pool::new(gillis_threads()))
    }

    /// Creates a pool of total width `threads`: the submitting thread plus
    /// `threads - 1` spawned workers. A width of 0 is treated as 1 (no
    /// workers; every batch runs inline on the caller).
    pub fn new(threads: usize) -> Pool {
        let workers = threads.max(1) - 1;
        let shared = Arc::new(Shared {
            queue: Mutex::new(Injector {
                batches: VecDeque::new(),
                shutdown: false,
            }),
            work_ready: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("gillis-pool-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        Pool {
            shared,
            workers: handles,
        }
    }

    /// Total parallel width: the caller's thread plus the spawned workers.
    pub fn width(&self) -> usize {
        self.workers.len() + 1
    }

    /// Runs every task to completion, blocking until all finish. Tasks may
    /// borrow from the caller's stack. The caller participates: it claims and
    /// executes tasks alongside the workers, so a width-1 pool degenerates to
    /// a plain sequential loop and nested calls cannot deadlock.
    ///
    /// # Panics
    ///
    /// If a task panics, the batch still runs to completion (every other
    /// task executes) and the first panic payload is then re-raised on the
    /// calling thread.
    pub fn join_all<'env>(&self, tasks: Vec<Task<'env>>) {
        match tasks.len() {
            0 => return,
            1 => {
                // Nothing to overlap with: skip the queue entirely.
                return (tasks.into_iter().next().expect("len checked"))();
            }
            _ => {}
        }
        if self.workers.is_empty() {
            for task in tasks {
                task();
            }
            return;
        }
        // SAFETY: the erased tasks never outlive this call. Every task is
        // either executed below (the wait loop does not return until
        // `remaining == 0`) or held un-run inside `batch.tasks`, and the
        // queue only ever hands out tasks by `take()` — once `remaining`
        // reaches zero all closures have been consumed and dropped, so no
        // borrow of the caller's stack escapes `join_all`. Panics inside
        // tasks are caught and re-raised only after the whole batch has
        // completed, preserving the guarantee on unwind paths.
        let erased: Vec<Option<Task<'static>>> = tasks
            .into_iter()
            .map(|t| unsafe { std::mem::transmute::<Task<'env>, Task<'static>>(t) })
            .map(Some)
            .collect();
        let batch = Arc::new(Batch::new(erased));
        {
            let mut queue = self.shared.queue.lock().expect("pool queue poisoned");
            queue.batches.push_back(Arc::clone(&batch));
        }
        self.shared.work_ready.notify_all();

        // Work on our own batch until every task is claimed…
        while let Some(task) = batch.claim() {
            batch.execute(task);
        }
        // …then wait for tasks claimed by workers to finish.
        let mut guard = batch.done.lock().expect("pool latch poisoned");
        while !batch.is_done() {
            guard = batch.done_cv.wait(guard).expect("pool latch poisoned");
        }
        drop(guard);
        let payload = batch.panic.lock().expect("pool panic slot poisoned").take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }

    /// Like [`Pool::join_all`], but converts each task's panic into an `Err`
    /// carrying the panic payload instead of re-raising it: slot `i` of the
    /// returned vector reports how task `i` ended. No payload ever reaches
    /// the pool's panic slot, so a panicking task cannot poison the pool (or
    /// the batch) for anyone else — the resilience layer relies on this to
    /// turn a crashed worker into an error at the join, not an abort.
    pub fn try_join_all<'env>(
        &self,
        tasks: Vec<Task<'env>>,
    ) -> Vec<Result<(), Box<dyn std::any::Any + Send>>> {
        let n = tasks.len();
        let mut outcomes: Vec<Option<Result<(), Box<dyn std::any::Any + Send>>>> =
            (0..n).map(|_| None).collect();
        {
            let wrapped: Vec<Task> = tasks
                .into_iter()
                .zip(outcomes.iter_mut())
                .map(|(task, slot)| -> Task {
                    Box::new(move || *slot = Some(catch_unwind(AssertUnwindSafe(task))))
                })
                .collect();
            self.join_all(wrapped);
        }
        outcomes
            .into_iter()
            .map(|s| s.expect("every wrapped pool task records its outcome"))
            .collect()
    }

    /// Indexed parallel map capturing per-task panics: evaluates
    /// `f(0), …, f(n - 1)` across the pool and returns, in index order,
    /// `Ok(result)` or `Err(panic payload)` for each task. Like
    /// [`Pool::try_join_all`], a panicking task never poisons the pool, and
    /// the inline (width-1 / tiny-batch) path catches panics identically so
    /// behaviour does not depend on the thread count.
    pub fn try_run<T, F>(&self, n: usize, f: F) -> Vec<Result<T, Box<dyn std::any::Any + Send>>>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if n <= 1 || self.workers.is_empty() {
            return (0..n)
                .map(|i| catch_unwind(AssertUnwindSafe(|| f(i))))
                .collect();
        }
        let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
        let outcomes = {
            let f = &f;
            let tasks: Vec<Task> = slots
                .iter_mut()
                .enumerate()
                .map(|(i, slot)| -> Task { Box::new(move || *slot = Some(f(i))) })
                .collect();
            self.try_join_all(tasks)
        };
        outcomes
            .into_iter()
            .zip(slots)
            .map(|(outcome, slot)| {
                outcome.map(|()| slot.expect("successful pool task fills its slot"))
            })
            .collect()
    }

    /// Indexed parallel map with deterministic, in-order results: evaluates
    /// `f(0), …, f(n - 1)` across the pool and returns the results in index
    /// order, exactly as a sequential `(0..n).map(f).collect()` would. Slot
    /// `i` is written only by task `i`, so the output is independent of
    /// scheduling; any order-sensitive reduction belongs in the caller,
    /// after this returns.
    pub fn run<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if n <= 1 || self.workers.is_empty() {
            return (0..n).map(f).collect();
        }
        let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
        {
            let f = &f;
            let tasks: Vec<Task> = slots
                .iter_mut()
                .enumerate()
                .map(|(i, slot)| -> Task { Box::new(move || *slot = Some(f(i))) })
                .collect();
            self.join_all(tasks);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every pool task fills its slot"))
            .collect()
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let mut queue = self.shared.queue.lock().expect("pool queue poisoned");
            queue.shutdown = true;
        }
        self.shared.work_ready.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let batch = {
            let mut queue = shared.queue.lock().expect("pool queue poisoned");
            loop {
                // Drop drained batches, then steal from the oldest live one.
                while queue.batches.front().is_some_and(|b| !b.has_work()) {
                    queue.batches.pop_front();
                }
                if let Some(batch) = queue.batches.front() {
                    break Arc::clone(batch);
                }
                if queue.shutdown {
                    return;
                }
                queue = shared.work_ready.wait(queue).expect("pool queue poisoned");
            }
        };
        while let Some(task) = batch.claim() {
            batch.execute(task);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn run_returns_results_in_index_order() {
        let pool = Pool::new(4);
        let out = pool.run(100, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn join_all_borrows_stack_data() {
        let pool = Pool::new(4);
        let data = vec![1u64, 2, 3, 4, 5, 6, 7, 8];
        let mut sums = [0u64; 4];
        let chunks: Vec<&[u64]> = data.chunks(2).collect();
        let tasks: Vec<Task> = sums
            .iter_mut()
            .zip(chunks)
            .map(|(s, c)| -> Task { Box::new(move || *s = c.iter().sum()) })
            .collect();
        pool.join_all(tasks);
        assert_eq!(sums, [3, 7, 11, 15]);
    }

    #[test]
    fn width_one_pool_runs_inline() {
        let pool = Pool::new(1);
        assert_eq!(pool.width(), 1);
        let tid = std::thread::current().id();
        let out = pool.run(8, move |i| (i, std::thread::current().id() == tid));
        assert!(out.iter().all(|&(_, same)| same));
    }

    #[test]
    fn nested_submission_does_not_deadlock() {
        let pool = Arc::new(Pool::new(2));
        let inner = Arc::clone(&pool);
        let out = pool.run(4, move |i| inner.run(4, |j| i * 10 + j));
        for (i, row) in out.iter().enumerate() {
            assert_eq!(row, &(0..4).map(|j| i * 10 + j).collect::<Vec<_>>());
        }
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let pool = Pool::new(8);
        let counters: Vec<AtomicU64> = (0..64).map(|_| AtomicU64::new(0)).collect();
        pool.run(64, |i| counters[i].fetch_add(1, Ordering::Relaxed));
        assert!(counters.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn panics_propagate_after_the_batch_completes() {
        let pool = Pool::new(4);
        let ran = AtomicU64::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            let tasks: Vec<Task> = (0..8)
                .map(|i| -> Task {
                    let ran = &ran;
                    Box::new(move || {
                        if i == 3 {
                            panic!("task 3 exploded");
                        }
                        ran.fetch_add(1, Ordering::Relaxed);
                    })
                })
                .collect();
            pool.join_all(tasks);
        }));
        assert!(result.is_err());
        // All seven non-panicking siblings still ran.
        assert_eq!(ran.load(Ordering::Relaxed), 7);
        // The pool survives and remains usable.
        assert_eq!(pool.run(3, |i| i + 1), vec![1, 2, 3]);
    }

    #[test]
    fn try_join_all_reports_per_task_outcomes() {
        let pool = Pool::new(4);
        let ran = AtomicU64::new(0);
        let tasks: Vec<Task> = (0..8)
            .map(|i| -> Task {
                let ran = &ran;
                Box::new(move || {
                    if i % 3 == 0 {
                        panic!("task {i} exploded");
                    }
                    ran.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();
        let outcomes = pool.try_join_all(tasks);
        assert_eq!(outcomes.len(), 8);
        for (i, outcome) in outcomes.iter().enumerate() {
            assert_eq!(outcome.is_err(), i % 3 == 0, "task {i}");
        }
        // The panic payload survives the trip across threads.
        let payload = outcomes.into_iter().next().unwrap().unwrap_err();
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert_eq!(msg, "task 0 exploded");
        assert_eq!(ran.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn try_run_panic_does_not_poison_the_pool() {
        let pool = Pool::new(4);
        let out = pool.try_run(8, |i| {
            if i == 5 {
                panic!("worker 5 crashed");
            }
            i * 2
        });
        for (i, r) in out.iter().enumerate() {
            match r {
                Ok(v) if i != 5 => assert_eq!(*v, i * 2),
                Err(_) if i == 5 => {}
                other => panic!("task {i}: unexpected {other:?}"),
            }
        }
        // Subsequent batches — both panic-capturing and plain — still work.
        assert_eq!(
            pool.try_run(3, |i| i)
                .into_iter()
                .map(Result::unwrap)
                .collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert_eq!(pool.run(3, |i| i + 1), vec![1, 2, 3]);
    }

    #[test]
    fn try_run_catches_panics_inline_on_width_one() {
        let pool = Pool::new(1);
        let out = pool.try_run(4, |i| {
            if i == 2 {
                panic!("inline crash");
            }
            i
        });
        assert!(out[2].is_err());
        assert_eq!(out.iter().filter(|r| r.is_ok()).count(), 3);
        assert_eq!(pool.run(2, |i| i), vec![0, 1]);
    }

    #[test]
    fn global_pool_is_shared_and_sized() {
        let a = Pool::global();
        let b = Pool::global();
        assert!(std::ptr::eq(a, b));
        assert_eq!(a.width(), gillis_threads());
        assert_eq!(a.run(5, |i| i), vec![0, 1, 2, 3, 4]);
    }
}
