//! The Adam optimizer (paper §IV-C uses Adam for both policy networks).

/// Adam state over a flat parameter vector.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    m: Vec<f64>,
    v: Vec<f64>,
    t: u64,
}

impl Adam {
    /// Creates an optimizer for `n` parameters with learning rate `lr` and
    /// the standard default moments (0.9, 0.999).
    pub fn new(n: usize, lr: f64) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            m: vec![0.0; n],
            v: vec![0.0; n],
            t: 0,
        }
    }

    /// Applies one *ascent* step (`params += step`): REINFORCE maximizes the
    /// expected reward.
    ///
    /// # Panics
    ///
    /// Panics if the lengths disagree with the optimizer's state.
    pub fn step(&mut self, params: &mut [f64], grads: &[f64]) {
        assert_eq!(params.len(), self.m.len(), "param length mismatch");
        assert_eq!(grads.len(), self.m.len(), "grad length mismatch");
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * grads[i];
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * grads[i] * grads[i];
            let mhat = self.m[i] / b1t;
            let vhat = self.v[i] / b2t;
            params[i] += self.lr * mhat / (vhat.sqrt() + self.eps);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascends_a_concave_objective() {
        // Maximize f(x) = -(x - 3)^2; gradient = -2 (x - 3).
        let mut x = vec![0.0];
        let mut opt = Adam::new(1, 0.1);
        for _ in 0..500 {
            let g = vec![-2.0 * (x[0] - 3.0)];
            opt.step(&mut x, &g);
        }
        assert!((x[0] - 3.0).abs() < 0.05, "x = {}", x[0]);
    }

    #[test]
    fn step_size_is_bounded_by_lr() {
        let mut x = vec![0.0];
        let mut opt = Adam::new(1, 0.01);
        opt.step(&mut x, &[1e9]);
        // Adam normalizes: the first step is ~lr.
        assert!(x[0].abs() <= 0.011, "step {}", x[0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn validates_lengths() {
        let mut opt = Adam::new(2, 0.1);
        let mut x = vec![0.0];
        opt.step(&mut x, &[1.0]);
    }
}
