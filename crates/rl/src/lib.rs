//! SLO-aware, cost-minimizing partitioning with reinforcement learning
//! (paper §IV-C).
//!
//! The paper encodes the partitioning policy into two small neural networks
//! trained jointly with REINFORCE against the performance model, entirely in
//! simulation:
//!
//! - the **partitioner** walks the merged layers, deciding where groups end
//!   and how each group is parallelized;
//! - the **placer** decides, per group, whether the master computes a
//!   partition (consuming master memory) or all partitions go to workers.
//!
//! The reward (paper Eq. 4) is `B − C` when the mean-latency SLO is met
//! (`C` = billed cost), `T_max − L` when violated, and a large negative
//! value for OOM attempts. Policy gradients follow Eq. 5–6, optimized with
//! Adam and a moving-average baseline.

pub mod adam;
pub mod agents;
pub mod nn;
pub mod policy;
pub mod trainer;

pub use trainer::{slo_aware_partition, SloAwareConfig, SloAwareResult};

/// Convenient result alias (re-uses the core error type).
pub type Result<T> = std::result::Result<T, gillis_core::CoreError>;
