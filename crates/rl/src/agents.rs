//! The partitioner and placer agents (paper Fig 8).
//!
//! The **partitioner** walks the merged layers of a model, deciding at each
//! layer whether the current group ends there (boundary head) and, on a cut,
//! which parallelization option the closed group uses (option head). The
//! **placer** then decides whether the master computes partition 0 of the
//! group. Both are two-layer networks with stochastic categorical policies.

use gillis_core::cache::EvalCache;
use gillis_core::partition::{analyze_group, group_options, PartDim, PartitionOption};
use gillis_model::{LayerClass, LinearModel};

use crate::nn::Mlp;

/// The discrete option menu the option head chooses from.
#[derive(Debug, Clone, PartialEq)]
pub struct OptionMenu {
    /// Candidate options, index-aligned with the option head's logits.
    pub entries: Vec<PartitionOption>,
}

impl Default for OptionMenu {
    fn default() -> Self {
        let mut entries = vec![PartitionOption::Single];
        for parts in [2usize, 4, 8, 16] {
            entries.push(PartitionOption::Split {
                dim: PartDim::Height,
                parts,
            });
        }
        for parts in [2usize, 4, 8] {
            entries.push(PartitionOption::Split {
                dim: PartDim::Channel,
                parts,
            });
        }
        OptionMenu { entries }
    }
}

impl OptionMenu {
    /// The parallelism degrees appearing in the menu (for
    /// [`group_options`] enumeration).
    pub fn degrees(&self) -> Vec<usize> {
        let mut d: Vec<usize> = self
            .entries
            .iter()
            .filter_map(|o| match o {
                PartitionOption::Split { parts, .. } => Some(*parts),
                PartitionOption::Single => None,
            })
            .collect();
        d.sort_unstable();
        d.dedup();
        d
    }

    /// Feasibility mask of the menu for group `start..end` under the
    /// per-function memory budget: structurally valid *and* every partition
    /// fits a function.
    pub fn mask(&self, model: &LinearModel, start: usize, end: usize, budget: u64) -> Vec<bool> {
        self.mask_impl(model, start, end, budget, None)
    }

    /// [`OptionMenu::mask`] with group analyses memoized in a shared
    /// [`EvalCache`] — the trainer masks the same groups every episode.
    pub fn mask_cached(
        &self,
        model: &LinearModel,
        start: usize,
        end: usize,
        budget: u64,
        cache: &EvalCache,
    ) -> Vec<bool> {
        self.mask_impl(model, start, end, budget, Some(cache))
    }

    fn mask_impl(
        &self,
        model: &LinearModel,
        start: usize,
        end: usize,
        budget: u64,
        cache: Option<&EvalCache>,
    ) -> Vec<bool> {
        let valid = group_options(model, start, end, &self.degrees());
        let fits = |o: PartitionOption| match cache {
            Some(cache) => cache
                .analysis(model, start, end, o)
                .map(|a| a.partitions.iter().all(|p| p.mem_bytes() <= budget))
                .unwrap_or(false),
            None => analyze_group(model, start, end, o)
                .map(|a| a.partitions.iter().all(|p| p.mem_bytes() <= budget))
                .unwrap_or(false),
        };
        self.entries
            .iter()
            .map(|o| valid.contains(o) && fits(*o))
            .collect()
    }
}

/// Number of features the boundary head consumes per layer.
pub const BOUNDARY_FEATURES: usize = 10;
/// Number of features the option head consumes per closed group.
pub const GROUP_FEATURES: usize = 6;
/// Number of features the placer consumes per group.
pub const PLACER_FEATURES: usize = 5;

fn class_one_hot(class: &LayerClass) -> [f64; 4] {
    match class {
        LayerClass::ConvLike { .. } => [1.0, 0.0, 0.0, 0.0],
        LayerClass::DenseLike => [0.0, 1.0, 0.0, 0.0],
        LayerClass::Reduction => [0.0, 0.0, 1.0, 0.0],
        LayerClass::Recurrent => [0.0, 0.0, 0.0, 1.0],
    }
}

fn log_scale(x: u64, denom: f64) -> f64 {
    ((x + 1) as f64).log10() / denom
}

/// Features for the boundary decision at layer `t` with the current group
/// starting at `s`.
pub fn boundary_features(model: &LinearModel, s: usize, t: usize, can_extend: bool) -> Vec<f64> {
    let n = model.layers().len() as f64;
    let layer = &model.layers()[t];
    let oh = class_one_hot(&layer.class);
    vec![
        oh[0],
        oh[1],
        oh[2],
        oh[3],
        log_scale(layer.flops, 12.0),
        log_scale(layer.weight_bytes, 10.0),
        (t + 1) as f64 / n,
        (t - s + 1) as f64 / 6.0,
        can_extend as u8 as f64,
        log_scale(layer.out_bytes(), 8.0),
    ]
}

/// Features for the option decision of the closed group `s..e`.
pub fn group_features(model: &LinearModel, s: usize, e: usize) -> Vec<f64> {
    let layers = &model.layers()[s..e];
    let flops: u64 = layers.iter().map(|l| l.flops).sum();
    let weights: u64 = layers.iter().map(|l| l.weight_bytes).sum();
    let oh = class_one_hot(&layers[0].class);
    vec![
        oh[0] + oh[2], // spatial-ish
        oh[1],
        oh[3],
        log_scale(flops, 12.0),
        log_scale(weights, 10.0),
        (e - s) as f64 / 6.0,
    ]
}

/// Features for the placer decision of a group whose master partition would
/// hold `w0` weight bytes, with `remaining` master budget left.
pub fn placer_features(
    model: &LinearModel,
    s: usize,
    e: usize,
    w0: u64,
    remaining: u64,
    parts: usize,
) -> Vec<f64> {
    let layers = &model.layers()[s..e];
    let flops: u64 = layers.iter().map(|l| l.flops).sum();
    vec![
        log_scale(flops, 12.0),
        log_scale(w0, 10.0),
        remaining as f64 / 1.5e9,
        parts as f64 / 16.0,
        (parts == 1) as u8 as f64,
    ]
}

/// The three policy networks.
#[derive(Debug, Clone)]
pub struct Agents {
    /// Boundary head: cut / continue.
    pub boundary: Mlp,
    /// Option head over the menu.
    pub option: Mlp,
    /// Placer head: workers-only / master participates.
    pub placer: Mlp,
    /// The shared option menu.
    pub menu: OptionMenu,
}

impl Agents {
    /// Initializes all three networks.
    pub fn new<R: rand::RngExt + ?Sized>(hidden: usize, menu: OptionMenu, rng: &mut R) -> Self {
        Agents {
            boundary: Mlp::new(BOUNDARY_FEATURES, hidden, 2, rng),
            option: Mlp::new(GROUP_FEATURES, hidden, menu.entries.len(), rng),
            placer: Mlp::new(PLACER_FEATURES, hidden, 2, rng),
            menu,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gillis_model::zoo;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn default_menu_covers_spatial_and_channel() {
        let menu = OptionMenu::default();
        assert_eq!(menu.entries.len(), 8);
        assert_eq!(menu.degrees(), vec![2, 4, 8, 16]);
    }

    #[test]
    fn menu_mask_respects_structure_and_memory() {
        let menu = OptionMenu::default();
        let rnn = zoo::rnn(3);
        let mask = menu.mask(&rnn, 0, 1, 1_400_000_000);
        // Recurrent: only Single unmasked.
        assert_eq!(mask.iter().filter(|&&m| m).count(), 1);
        assert!(mask[0]);

        let vgg = zoo::vgg11();
        let mask = menu.mask(&vgg, 0, 1, 1_400_000_000);
        // Conv head: everything unmasked.
        assert!(mask.iter().all(|&m| m));
    }

    #[test]
    fn mask_blocks_oversized_single() {
        let menu = OptionMenu::default();
        let wrn = zoo::wrn50(5);
        // The whole model as one group cannot run Single under 1.4 GB...
        let n = wrn.layers().len();
        let mask = menu.mask(&wrn, 0, n, 1_400_000_000);
        assert!(!mask[0]);
    }

    #[test]
    fn feature_vectors_have_declared_sizes() {
        let vgg = zoo::vgg11();
        assert_eq!(boundary_features(&vgg, 0, 0, true).len(), BOUNDARY_FEATURES);
        assert_eq!(group_features(&vgg, 0, 2).len(), GROUP_FEATURES);
        assert_eq!(
            placer_features(&vgg, 0, 2, 1000, 1_000_000, 4).len(),
            PLACER_FEATURES
        );
        // Features are bounded (roughly [0, ~2]) for network stability.
        for f in boundary_features(&vgg, 0, 5, false) {
            assert!((-0.1..=2.5).contains(&f), "feature {f}");
        }
    }

    #[test]
    fn agents_initialize_with_menu_sized_heads() {
        let mut rng = StdRng::seed_from_u64(0);
        let agents = Agents::new(16, OptionMenu::default(), &mut rng);
        let f = agents.option.forward(&vec![0.5; GROUP_FEATURES]);
        assert_eq!(f.logits.len(), 8);
    }
}
