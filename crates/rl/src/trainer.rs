//! Joint REINFORCE training of the partitioner and placer (paper §IV-C).
//!
//! Each episode samples a complete partitioning strategy, evaluates its
//! latency and billed cost with the performance model (simulated
//! experiments — no function is ever invoked during training), computes the
//! reward of Eq. 4, and accumulates policy gradients per Eq. 5–6. Updates
//! use Adam with a moving-average baseline.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use gillis_core::cache::EvalCache;
use gillis_core::plan::{ExecutionPlan, Placement, PlannedGroup};
use gillis_core::predict::{predict_plan_cached, PlanPrediction};
use gillis_core::CoreError;
use gillis_model::LinearModel;
use gillis_perf::PerfModel;

use crate::adam::Adam;
use crate::agents::{boundary_features, group_features, placer_features, Agents, OptionMenu};
use crate::nn::Forward;
use crate::policy::{entropy_grad, logp_grad, masked_softmax, sample_categorical};
use crate::Result;

/// Configuration of the SLO-aware trainer.
#[derive(Debug, Clone)]
pub struct SloAwareConfig {
    /// Mean-latency SLO in milliseconds (the paper's `T_max`).
    pub t_max_ms: f64,
    /// Cost budget `B` of the reward function; `None` picks one
    /// automatically (comfortably above typical plan costs).
    pub budget_b_ms: Option<f64>,
    /// Training episodes.
    pub episodes: usize,
    /// Episodes per gradient update.
    pub batch: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// Hidden width of the two-layer policy networks.
    pub hidden: usize,
    /// Penalty for strategies with no memory-feasible option (paper: "a
    /// large negative reward" for OOM attempts), in reward units.
    pub oom_penalty: f64,
    /// When set, the SLO constrains this latency *quantile* (e.g. `0.99`
    /// for p99) instead of the mean — the paper's §VI extension. Requires
    /// the Monte-Carlo tail predictor, so training is slower.
    pub tail_quantile: Option<f64>,
    /// Monte-Carlo samples per episode when `tail_quantile` is set.
    pub tail_samples: usize,
    /// Train for pipeline-parallel serving: the SLO constrains the
    /// *pipelined* steady-state p99 (fill latency plus one bottleneck
    /// interval, [`gillis_core::predict_plan_pipelined`]) instead of the
    /// fork-join latency, and the incumbent is seeded from the
    /// stage-balancing DP
    /// ([`gillis_core::PlanObjective::PipelineBottleneck`]). Takes
    /// precedence over `tail_quantile`.
    pub pipeline: bool,
    /// Entropy-bonus coefficient: discourages premature policy collapse.
    pub entropy_beta: f64,
    /// RNG seed.
    pub seed: u64,
    /// Threads for batch episode rollouts; `None` uses
    /// [`gillis_pool::gillis_threads`]. Training is bit-identical for any
    /// value: episodes are seeded individually and reduced in order.
    pub threads: Option<usize>,
}

impl Default for SloAwareConfig {
    fn default() -> Self {
        SloAwareConfig {
            t_max_ms: 1000.0,
            budget_b_ms: None,
            episodes: 400,
            batch: 8,
            lr: 0.02,
            hidden: 16,
            oom_penalty: 50.0,
            tail_quantile: None,
            tail_samples: 300,
            pipeline: false,
            entropy_beta: 0.01,
            seed: 0,
            threads: None,
        }
    }
}

/// Output of SLO-aware training.
#[derive(Debug, Clone)]
pub struct SloAwareResult {
    /// The best SLO-compliant plan found during training.
    pub plan: ExecutionPlan,
    /// Its predicted latency and cost.
    pub predicted: PlanPrediction,
    /// Episodes actually run.
    pub episodes_run: usize,
    /// Mean reward per batch (training curve).
    pub reward_history: Vec<f64>,
}

/// One sampled decision: which net, its forward cache, probabilities, and
/// the action taken.
enum Step {
    Boundary(Forward, Vec<f64>, usize),
    Option(Forward, Vec<f64>, usize),
    Placer(Forward, Vec<f64>, usize),
}

/// One rolled-out episode: its decisions plus, when the sampled strategy was
/// feasible and predictable, `(slo_latency, prediction, plan)`.
type Rollout = (Vec<Step>, Option<(f64, PlanPrediction, ExecutionPlan)>);

/// Trains the hierarchical policy and returns the best SLO-compliant plan.
///
/// # Errors
///
/// Returns [`CoreError::Infeasible`] if training never finds a plan meeting
/// the SLO (e.g. an SLO below the physically possible latency).
pub fn slo_aware_partition(
    model: &LinearModel,
    perf: &PerfModel,
    config: &SloAwareConfig,
) -> Result<SloAwareResult> {
    // The latency the SLO constrains: the mean prediction, a Monte-Carlo
    // quantile when a tail SLO is configured, or the pipelined steady-state
    // p99 when training for pipeline-parallel serving.
    let slo_latency = |plan: &ExecutionPlan, pred: &PlanPrediction| -> f64 {
        if config.pipeline {
            return gillis_core::predict_plan_pipelined(model, plan, perf)
                .map(|p| p.p99_ms)
                .unwrap_or(f64::INFINITY);
        }
        match config.tail_quantile {
            None => pred.latency_ms,
            Some(q) => gillis_core::predict_latency_quantile(
                model,
                plan,
                perf,
                q,
                config.tail_samples,
                config.seed ^ 0x7a11_5eed,
            )
            .unwrap_or(f64::INFINITY),
        }
    };
    let n = model.layers().len();
    if n == 0 {
        return Err(CoreError::InvalidArgument("empty model".into()));
    }
    // One memoization layer for the whole run: episodes keep re-analyzing
    // the same groups (masking, placer features, reward prediction), and the
    // DP incumbent seed shares it too.
    let cache = Arc::new(EvalCache::new());
    let budget = perf.platform.model_memory_budget;
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut agents = Agents::new(config.hidden, OptionMenu::default(), &mut rng);
    let mut opt_boundary = Adam::new(agents.boundary.param_count(), config.lr);
    let mut opt_option = Adam::new(agents.option.param_count(), config.lr);
    let mut opt_placer = Adam::new(agents.placer.param_count(), config.lr);

    // Auto budget B: a loose upper envelope of plan costs so that meeting
    // the SLO always yields a positive reward (paper: "set large enough").
    let b = config.budget_b_ms.unwrap_or_else(|| {
        let single =
            predict_plan_cached(model, &ExecutionPlan::single_function(model), perf, &cache)
                .map(|p| p.billed_ms as f64)
                .unwrap_or(10_000.0);
        (single * 8.0).max(20.0 * config.t_max_ms)
    });

    let mut baseline = 0.0;
    let mut baseline_init = false;
    // Seed the incumbent with the latency-optimal DP plan when it already
    // meets the SLO: Gillis computes it anyway, and it guarantees an
    // SLO-compliant answer that training then undercuts on cost. Pipeline
    // training seeds from the stage-balancing DP instead, whose bottleneck
    // objective matches the pipelined SLO term.
    let incumbent = if config.pipeline {
        gillis_core::DpPartitioner::default()
            .with_objective(gillis_core::PlanObjective::PipelineBottleneck)
    } else {
        gillis_core::DpPartitioner::default()
    };
    let mut best: Option<(f64, ExecutionPlan, PlanPrediction)> = incumbent
        .with_cache(Arc::clone(&cache))
        .partition(model, perf)
        .ok()
        .and_then(|plan| {
            let pred = predict_plan_cached(model, &plan, perf, &cache).ok()?;
            (slo_latency(&plan, &pred) <= config.t_max_ms).then_some((
                pred.billed_ms as f64,
                plan,
                pred,
            ))
        });
    let mut reward_history = Vec::new();

    let mut gb = agents.boundary.zero_grads();
    let mut go = agents.option.zero_grads();
    let mut gp = agents.placer.zero_grads();
    let mut batch_steps: Vec<(Vec<Step>, f64)> = Vec::new();
    let threads = config.threads.unwrap_or_else(gillis_pool::gillis_threads);

    let mut episode = 0;
    while episode < config.episodes {
        let batch_len = config.batch.max(1).min(config.episodes - episode);
        // Roll out the batch on the shared pool: the policy is frozen until
        // the gradient update below, so episodes within a batch are
        // independent given their per-episode seeds. The reward model
        // (prediction + SLO check) runs inside the rollout; the incumbent
        // update and gradient accumulation reduce sequentially in episode
        // order, keeping training bit-identical for any thread count.
        let rollout = |i: usize| {
            let mut ep_rng = StdRng::seed_from_u64(gillis_core::replication_seed(
                config.seed,
                (episode + i) as u64,
            ));
            let (steps, plan) = sample_episode(model, &agents, budget, &cache, &mut ep_rng);
            // `None` covers both OOM attempts (no feasible option for a
            // sampled group) and unpredictable plans; both draw the penalty.
            let outcome = plan.and_then(|plan| {
                let pred = predict_plan_cached(model, &plan, perf, &cache).ok()?;
                let latency = slo_latency(&plan, &pred);
                Some((latency, pred, plan))
            });
            (steps, outcome)
        };
        let rollouts: Vec<Rollout> = if threads <= 1 || batch_len == 1 {
            (0..batch_len).map(rollout).collect()
        } else {
            gillis_pool::Pool::global().run(batch_len, rollout)
        };
        episode += batch_len;
        for (steps, outcome) in rollouts {
            let reward = match &outcome {
                Some((latency, pred, _)) => {
                    if *latency <= config.t_max_ms {
                        (b - pred.billed_ms as f64) / 1000.0
                    } else {
                        (config.t_max_ms - latency) / 1000.0
                    }
                }
                None => -config.oom_penalty,
            };
            if let Some((latency, pred, plan)) = outcome {
                if latency <= config.t_max_ms {
                    let better = best
                        .as_ref()
                        .map(|(c, _, _)| (pred.billed_ms as f64) < *c)
                        .unwrap_or(true);
                    if better {
                        best = Some((pred.billed_ms as f64, plan, pred));
                    }
                }
            }
            batch_steps.push((steps, reward));
        }

        {
            let mean_reward: f64 =
                batch_steps.iter().map(|(_, r)| r).sum::<f64>() / batch_steps.len() as f64;
            if !baseline_init {
                baseline = mean_reward;
                baseline_init = true;
            }
            for (steps, reward) in batch_steps.drain(..) {
                let advantage = reward - baseline;
                // Ascent direction: advantage-weighted log-prob gradient plus
                // an entropy bonus.
                let dlogits = |probs: &[f64], action: usize| -> Vec<f64> {
                    let mut d = logp_grad(probs, action, advantage);
                    if config.entropy_beta > 0.0 {
                        for (dk, ek) in d.iter_mut().zip(entropy_grad(probs)) {
                            *dk += config.entropy_beta * ek;
                        }
                    }
                    d
                };
                for step in steps {
                    match step {
                        Step::Boundary(fwd, probs, action) => {
                            agents
                                .boundary
                                .backward(&fwd, &dlogits(&probs, action), &mut gb)
                        }
                        Step::Option(fwd, probs, action) => {
                            agents
                                .option
                                .backward(&fwd, &dlogits(&probs, action), &mut go)
                        }
                        Step::Placer(fwd, probs, action) => {
                            agents
                                .placer
                                .backward(&fwd, &dlogits(&probs, action), &mut gp)
                        }
                    }
                }
            }
            baseline = 0.9 * baseline + 0.1 * mean_reward;
            reward_history.push(mean_reward);
            opt_boundary.step(agents.boundary.params_mut(), &gb.0);
            opt_option.step(agents.option.params_mut(), &go.0);
            opt_placer.step(agents.placer.params_mut(), &gp.0);
            gb = agents.boundary.zero_grads();
            go = agents.option.zero_grads();
            gp = agents.placer.zero_grads();
        }
    }

    match best {
        Some((_, plan, predicted)) => Ok(SloAwareResult {
            plan,
            predicted,
            episodes_run: config.episodes,
            reward_history,
        }),
        None => Err(CoreError::Infeasible(format!(
            "no plan met the {} ms SLO within {} episodes",
            config.t_max_ms, config.episodes
        ))),
    }
}

/// Samples one strategy. Returns `None` as the plan when a sampled group has
/// no memory-feasible option (an OOM attempt).
fn sample_episode(
    model: &LinearModel,
    agents: &Agents,
    budget: u64,
    cache: &EvalCache,
    rng: &mut StdRng,
) -> (Vec<Step>, Option<ExecutionPlan>) {
    let n = model.layers().len();
    let degrees = agents.menu.degrees();
    let mut steps = Vec::new();
    let mut groups = Vec::new();
    let mut remaining = budget;
    let mut start = 0;

    for t in 0..n {
        // Can the group s..t+1 be extended to s..t+2?
        let can_extend = t + 1 < n
            && !gillis_core::partition::group_options(model, start, t + 2, &degrees).is_empty();
        let cut = if !can_extend {
            true
        } else {
            let feats = boundary_features(model, start, t, can_extend);
            let fwd = agents.boundary.forward(&feats);
            let probs = masked_softmax(&fwd.logits, &[true, true]);
            let action = sample_categorical(&probs, rng);
            steps.push(Step::Boundary(fwd, probs.clone(), action));
            action == 1
        };
        if !cut {
            continue;
        }
        let end = t + 1;
        // Option choice, masked to memory-feasible entries.
        let mask = agents.menu.mask_cached(model, start, end, budget, cache);
        if !mask.iter().any(|&m| m) {
            return (steps, None);
        }
        let feats = group_features(model, start, end);
        let fwd = agents.option.forward(&feats);
        let probs = masked_softmax(&fwd.logits, &mask);
        let action = sample_categorical(&probs, rng);
        let option = agents.menu.entries[action];
        steps.push(Step::Option(fwd, probs, action));

        // Placer: master participation, masked by the remaining budget.
        let analysis = cache
            .analysis(model, start, end, option)
            .expect("masked option is analyzable");
        let w0 = analysis.partitions[0].weight_bytes;
        let master_ok = w0 <= remaining;
        let feats = placer_features(model, start, end, w0, remaining, option.parts());
        let fwd = agents.placer.forward(&feats);
        let probs = masked_softmax(&fwd.logits, &[true, master_ok]);
        let action = sample_categorical(&probs, rng);
        steps.push(Step::Placer(fwd, probs, action));
        let placement = if action == 1 {
            remaining -= w0;
            if option.parts() == 1 {
                Placement::Master
            } else {
                Placement::MasterAndWorkers
            }
        } else {
            Placement::Workers
        };
        groups.push(PlannedGroup {
            start,
            end,
            option,
            placement,
        });
        start = end;
    }
    (steps, Some(ExecutionPlan::new(groups)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gillis_core::predict::predict_plan;
    use gillis_faas::PlatformProfile;
    use gillis_model::zoo;

    fn quick_config(t_max_ms: f64) -> SloAwareConfig {
        SloAwareConfig {
            t_max_ms,
            episodes: 120,
            batch: 6,
            seed: 7,
            ..SloAwareConfig::default()
        }
    }

    #[test]
    fn finds_slo_compliant_plan_for_tiny_model() {
        let platform = PlatformProfile::aws_lambda();
        let perf = PerfModel::analytic(&platform);
        let tiny = zoo::tiny_vgg();
        let single = predict_plan(&tiny, &ExecutionPlan::single_function(&tiny), &perf)
            .unwrap()
            .latency_ms;
        let result = slo_aware_partition(&tiny, &perf, &quick_config(single * 2.0)).unwrap();
        assert!(result.predicted.latency_ms <= single * 2.0);
        result
            .plan
            .validate(&tiny, platform.model_memory_budget)
            .unwrap();
        assert!(!result.reward_history.is_empty());
    }

    #[test]
    fn loose_slo_prefers_cheap_plans() {
        // With a very loose SLO the cheapest plan is single-function
        // serving: the learned plan's cost should approach it.
        let platform = PlatformProfile::aws_lambda();
        let perf = PerfModel::analytic(&platform);
        let tiny = zoo::tiny_vgg();
        let single = predict_plan(&tiny, &ExecutionPlan::single_function(&tiny), &perf).unwrap();
        let result =
            slo_aware_partition(&tiny, &perf, &quick_config(single.latency_ms * 10.0)).unwrap();
        assert!(
            result.predicted.billed_ms <= single.billed_ms * 2,
            "learned cost {} vs single {}",
            result.predicted.billed_ms,
            single.billed_ms
        );
    }

    #[test]
    fn impossible_slo_is_reported_infeasible() {
        let platform = PlatformProfile::aws_lambda();
        let perf = PerfModel::analytic(&platform);
        let tiny = zoo::tiny_vgg();
        let err = slo_aware_partition(&tiny, &perf, &quick_config(0.0001));
        assert!(matches!(err, Err(CoreError::Infeasible(_))));
    }

    #[test]
    fn training_is_deterministic_in_seed() {
        let platform = PlatformProfile::aws_lambda();
        let perf = PerfModel::analytic(&platform);
        let tiny = zoo::tiny_vgg();
        let a = slo_aware_partition(&tiny, &perf, &quick_config(500.0)).unwrap();
        let b = slo_aware_partition(&tiny, &perf, &quick_config(500.0)).unwrap();
        assert_eq!(a.plan, b.plan);
        assert_eq!(a.reward_history, b.reward_history);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(3))]

        /// Episodes are seeded individually and reduced in order, so the
        /// trained policy — plan, prediction, and the full reward curve —
        /// is bit-identical for any rollout thread count.
        #[test]
        fn training_is_bit_identical_across_thread_counts(seed in 0u64..100) {
            let platform = PlatformProfile::aws_lambda();
            let perf = PerfModel::analytic(&platform);
            let tiny = zoo::tiny_vgg();
            let config = |threads: usize| SloAwareConfig {
                threads: Some(threads),
                seed,
                ..quick_config(500.0)
            };
            let seq = slo_aware_partition(&tiny, &perf, &config(1)).unwrap();
            for threads in [2usize, 8] {
                let par = slo_aware_partition(&tiny, &perf, &config(threads)).unwrap();
                proptest::prop_assert_eq!(&seq.plan, &par.plan);
                proptest::prop_assert_eq!(seq.predicted.billed_ms, par.predicted.billed_ms);
                proptest::prop_assert_eq!(
                    seq.reward_history.len(),
                    par.reward_history.len()
                );
                for (a, b) in seq.reward_history.iter().zip(&par.reward_history) {
                    proptest::prop_assert_eq!(a.to_bits(), b.to_bits());
                }
            }
        }
    }

    #[test]
    fn pipeline_training_meets_the_pipelined_p99_slo() {
        // Pipeline mode constrains the pipelined steady-state p99, which is
        // dominated by the fill latency — a threshold between the pipelined
        // p99 of the single-function plan and a generous multiple of it
        // must be satisfiable, and the returned plan's pipelined prediction
        // must actually meet it.
        let platform = PlatformProfile::aws_lambda();
        let perf = PerfModel::analytic(&platform);
        let tiny = zoo::tiny_vgg();
        let single = gillis_core::predict_plan_pipelined(
            &tiny,
            &ExecutionPlan::single_function(&tiny),
            &perf,
        )
        .unwrap()
        .p99_ms;
        let config = SloAwareConfig {
            pipeline: true,
            ..quick_config(single * 3.0)
        };
        let result = slo_aware_partition(&tiny, &perf, &config).unwrap();
        let pipelined = gillis_core::predict_plan_pipelined(&tiny, &result.plan, &perf).unwrap();
        assert!(
            pipelined.p99_ms <= single * 3.0,
            "pipelined p99 {:.1} ms vs SLO {:.1} ms",
            pipelined.p99_ms,
            single * 3.0
        );
        // Deterministic like every other mode.
        let again = slo_aware_partition(&tiny, &perf, &config).unwrap();
        assert_eq!(result.plan, again.plan);
    }

    #[test]
    fn rewards_improve_over_training() {
        let platform = PlatformProfile::aws_lambda();
        let perf = PerfModel::analytic(&platform);
        let tiny = zoo::tiny_vgg();
        let config = SloAwareConfig {
            t_max_ms: 400.0,
            episodes: 240,
            batch: 6,
            seed: 3,
            ..SloAwareConfig::default()
        };
        let result = slo_aware_partition(&tiny, &perf, &config).unwrap();
        let h = &result.reward_history;
        let early: f64 = h[..4].iter().sum::<f64>() / 4.0;
        let late: f64 = h[h.len() - 4..].iter().sum::<f64>() / 4.0;
        assert!(
            late >= early,
            "rewards regressed: early {early:.2}, late {late:.2}"
        );
    }
}

#[cfg(test)]
mod tail_tests {
    use super::*;
    use gillis_faas::PlatformProfile;
    use gillis_model::zoo;

    #[test]
    fn tail_slo_is_stricter_than_mean_slo() {
        // For the same threshold, a p99 SLO admits fewer plans than a mean
        // SLO, so the tail-aware result can never be cheaper.
        let platform = PlatformProfile::aws_lambda();
        let perf = PerfModel::analytic(&platform);
        let model = zoo::vgg11();
        let t_max = 400.0;
        let base = SloAwareConfig {
            t_max_ms: t_max,
            episodes: 120,
            batch: 6,
            seed: 11,
            ..SloAwareConfig::default()
        };
        let mean = slo_aware_partition(&model, &perf, &base).unwrap();
        let tail = slo_aware_partition(
            &model,
            &perf,
            &SloAwareConfig {
                tail_quantile: Some(0.99),
                tail_samples: 200,
                ..base
            },
        )
        .unwrap();
        assert!(tail.predicted.billed_ms >= mean.predicted.billed_ms);
        // The tail-aware plan's predicted p99 actually meets the target.
        let p99 = gillis_core::predict_latency_quantile(&model, &tail.plan, &perf, 0.99, 2000, 5)
            .unwrap();
        assert!(p99 <= t_max * 1.02, "p99 {p99} vs target {t_max}");
    }

    #[test]
    fn tail_served_workload_meets_p99() {
        let platform = PlatformProfile::aws_lambda();
        let perf = PerfModel::analytic(&platform);
        let model = zoo::vgg11();
        let t_max = 450.0;
        let result = slo_aware_partition(
            &model,
            &perf,
            &SloAwareConfig {
                t_max_ms: t_max,
                episodes: 120,
                batch: 6,
                seed: 4,
                tail_quantile: Some(0.99),
                tail_samples: 200,
                ..SloAwareConfig::default()
            },
        )
        .unwrap();
        let rt = gillis_core::ForkJoinRuntime::new(&model, &result.plan, platform).unwrap();
        let report = rt
            .serve_workload(
                gillis_faas::workload::ClosedLoop::new(10, 300, gillis_faas::Micros::ZERO).unwrap(),
                6,
            )
            .unwrap();
        let p99 = report.latency.percentile(99.0);
        assert!(p99 <= t_max * 1.05, "served p99 {p99:.0} vs target {t_max}");
    }
}
