//! Categorical stochastic policies over masked action sets.

use rand::RngExt;

/// Softmax probabilities of `logits` restricted to unmasked actions.
/// Masked actions get probability 0.
///
/// # Panics
///
/// Panics if the mask disables every action or lengths differ.
pub fn masked_softmax(logits: &[f64], mask: &[bool]) -> Vec<f64> {
    assert_eq!(logits.len(), mask.len(), "mask length mismatch");
    assert!(mask.iter().any(|&m| m), "all actions masked");
    let max = logits
        .iter()
        .zip(mask.iter())
        .filter(|(_, &m)| m)
        .map(|(&l, _)| l)
        .fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = logits
        .iter()
        .zip(mask.iter())
        .map(|(&l, &m)| if m { (l - max).exp() } else { 0.0 })
        .collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

/// Samples an action index from the probability vector.
pub fn sample_categorical<R: RngExt + ?Sized>(probs: &[f64], rng: &mut R) -> usize {
    let u: f64 = rng.random();
    let mut acc = 0.0;
    for (i, &p) in probs.iter().enumerate() {
        acc += p;
        if u < acc {
            return i;
        }
    }
    // Floating-point slack: return the last unmasked action.
    probs
        .iter()
        .rposition(|&p| p > 0.0)
        .expect("non-degenerate distribution")
}

/// Gradient of `advantage * log p(action)` with respect to the logits:
/// `advantage * (onehot(action) − probs)` — the REINFORCE ascent direction.
pub fn logp_grad(probs: &[f64], action: usize, advantage: f64) -> Vec<f64> {
    probs
        .iter()
        .enumerate()
        .map(|(i, &p)| advantage * ((i == action) as u8 as f64 - p))
        .collect()
}

/// Gradient of the policy entropy `H = -Σ p log p` with respect to the
/// logits: `∂H/∂z_k = -p_k (log p_k + H)`. Added to the REINFORCE ascent
/// direction (scaled by an entropy coefficient) it discourages premature
/// collapse of the policy — a standard exploration aid.
pub fn entropy_grad(probs: &[f64]) -> Vec<f64> {
    let h: f64 = -probs
        .iter()
        .filter(|&&p| p > 0.0)
        .map(|&p| p * p.ln())
        .sum::<f64>();
    probs
        .iter()
        .map(|&p| if p > 0.0 { -p * (p.ln() + h) } else { 0.0 })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn masked_softmax_zeroes_masked_actions() {
        let probs = masked_softmax(&[1.0, 2.0, 3.0], &[true, false, true]);
        assert_eq!(probs[1], 0.0);
        assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(probs[2] > probs[0]);
    }

    #[test]
    fn sampling_respects_probabilities() {
        let mut rng = StdRng::seed_from_u64(3);
        let probs = masked_softmax(&[0.0, 2.0], &[true, true]);
        let n = 20_000;
        let ones = (0..n)
            .filter(|_| sample_categorical(&probs, &mut rng) == 1)
            .count();
        let freq = ones as f64 / n as f64;
        assert!(
            (freq - probs[1]).abs() < 0.02,
            "freq {freq} vs {}",
            probs[1]
        );
    }

    #[test]
    fn sampling_never_picks_masked() {
        let mut rng = StdRng::seed_from_u64(5);
        let probs = masked_softmax(&[5.0, 1.0, 1.0], &[false, true, true]);
        for _ in 0..1000 {
            assert_ne!(sample_categorical(&probs, &mut rng), 0);
        }
    }

    #[test]
    fn logp_grad_points_toward_action() {
        let probs = masked_softmax(&[0.0, 0.0], &[true, true]);
        let g = logp_grad(&probs, 0, 2.0);
        assert!(g[0] > 0.0 && g[1] < 0.0);
        // Negative advantage flips the direction.
        let g = logp_grad(&probs, 0, -2.0);
        assert!(g[0] < 0.0 && g[1] > 0.0);
        // Gradient sums to zero.
        assert!((g[0] + g[1]).abs() < 1e-12);
    }

    #[test]
    fn entropy_grad_matches_finite_differences() {
        let logits = [0.3, -0.8, 1.2];
        let mask = [true, true, true];
        let probs = masked_softmax(&logits, &mask);
        let g = entropy_grad(&probs);
        let entropy = |z: &[f64]| {
            let p = masked_softmax(z, &[true, true, true]);
            -p.iter()
                .filter(|&&x| x > 0.0)
                .map(|&x| x * x.ln())
                .sum::<f64>()
        };
        let eps = 1e-6;
        for k in 0..3 {
            let mut zp = logits;
            zp[k] += eps;
            let mut zm = logits;
            zm[k] -= eps;
            let numeric = (entropy(&zp) - entropy(&zm)) / (2.0 * eps);
            assert!(
                (numeric - g[k]).abs() < 1e-6,
                "k={k}: numeric {numeric} vs analytic {}",
                g[k]
            );
        }
    }

    #[test]
    fn entropy_grad_is_zero_at_uniform() {
        let probs = masked_softmax(&[1.0, 1.0, 1.0, 1.0], &[true; 4]);
        for g in entropy_grad(&probs) {
            assert!(g.abs() < 1e-12);
        }
        // A peaked distribution is pushed toward uniform: the gradient is
        // negative on the dominant action.
        let peaked = masked_softmax(&[5.0, 0.0, 0.0], &[true; 3]);
        let g = entropy_grad(&peaked);
        assert!(g[0] < 0.0 && g[1] > 0.0 && g[2] > 0.0);
    }

    #[test]
    #[should_panic(expected = "all actions masked")]
    fn empty_mask_panics() {
        let _ = masked_softmax(&[1.0], &[false]);
    }
}
