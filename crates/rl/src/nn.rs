//! A two-layer perceptron with manual backpropagation.
//!
//! The paper's agents are "two-layer neural networks" (§IV-C); this module
//! implements exactly that: `logits = W2 · tanh(W1 · x + b1) + b2`, with
//! gradients computed in closed form (no autodiff dependency).

use rand::RngExt;

/// A two-layer MLP with a tanh hidden layer.
#[derive(Debug, Clone)]
pub struct Mlp {
    input: usize,
    hidden: usize,
    output: usize,
    /// Flattened parameters: `[w1 (h×in), b1 (h), w2 (out×h), b2 (out)]`.
    params: Vec<f64>,
}

/// Gradient buffer matching [`Mlp::params`] layout.
#[derive(Debug, Clone)]
pub struct Grads(pub Vec<f64>);

/// Cached forward activations needed by the backward pass.
#[derive(Debug, Clone)]
pub struct Forward {
    /// Input features.
    pub x: Vec<f64>,
    /// Hidden activations (after tanh).
    pub h: Vec<f64>,
    /// Output logits.
    pub logits: Vec<f64>,
}

impl Mlp {
    /// Creates an MLP with small random weights.
    pub fn new<R: RngExt + ?Sized>(
        input: usize,
        hidden: usize,
        output: usize,
        rng: &mut R,
    ) -> Self {
        let n = hidden * input + hidden + output * hidden + output;
        let scale_1 = (1.0 / input.max(1) as f64).sqrt();
        let scale_2 = (1.0 / hidden.max(1) as f64).sqrt();
        let mut params = Vec::with_capacity(n);
        for i in 0..n {
            let scale = if i < hidden * input + hidden {
                scale_1
            } else {
                scale_2
            };
            params.push((rng.random::<f64>() * 2.0 - 1.0) * scale);
        }
        Mlp {
            input,
            hidden,
            output,
            params,
        }
    }

    /// Number of parameters.
    pub fn param_count(&self) -> usize {
        self.params.len()
    }

    /// Immutable parameter view (for the optimizer).
    pub fn params(&self) -> &[f64] {
        &self.params
    }

    /// Mutable parameter view (for the optimizer).
    pub fn params_mut(&mut self) -> &mut [f64] {
        &mut self.params
    }

    /// Zeroed gradient buffer.
    pub fn zero_grads(&self) -> Grads {
        Grads(vec![0.0; self.params.len()])
    }

    fn split(&self) -> (usize, usize, usize) {
        let w1_end = self.hidden * self.input;
        let b1_end = w1_end + self.hidden;
        let w2_end = b1_end + self.output * self.hidden;
        (w1_end, b1_end, w2_end)
    }

    /// Forward pass.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != input`.
    pub fn forward(&self, x: &[f64]) -> Forward {
        assert_eq!(x.len(), self.input, "feature size mismatch");
        let (w1_end, b1_end, w2_end) = self.split();
        let w1 = &self.params[..w1_end];
        let b1 = &self.params[w1_end..b1_end];
        let w2 = &self.params[b1_end..w2_end];
        let b2 = &self.params[w2_end..];
        let mut h = Vec::with_capacity(self.hidden);
        for j in 0..self.hidden {
            let mut a = b1[j];
            for (i, &xi) in x.iter().enumerate() {
                a += w1[j * self.input + i] * xi;
            }
            h.push(a.tanh());
        }
        let mut logits = Vec::with_capacity(self.output);
        for k in 0..self.output {
            let mut a = b2[k];
            for (j, &hj) in h.iter().enumerate() {
                a += w2[k * self.hidden + j] * hj;
            }
            logits.push(a);
        }
        Forward {
            x: x.to_vec(),
            h,
            logits,
        }
    }

    /// Accumulates gradients of `sum(dlogits · logits)` into `grads`.
    pub fn backward(&self, fwd: &Forward, dlogits: &[f64], grads: &mut Grads) {
        assert_eq!(dlogits.len(), self.output, "dlogits size mismatch");
        let (w1_end, b1_end, w2_end) = self.split();
        let w2 = &self.params[b1_end..w2_end];
        let g = &mut grads.0;

        // dW2, db2, and dh.
        let mut dh = vec![0.0; self.hidden];
        for k in 0..self.output {
            let dk = dlogits[k];
            g[w2_end + k] += dk;
            for j in 0..self.hidden {
                g[b1_end + k * self.hidden + j] += dk * fwd.h[j];
                dh[j] += dk * w2[k * self.hidden + j];
            }
        }
        // Through tanh, then dW1, db1.
        for j in 0..self.hidden {
            let da = dh[j] * (1.0 - fwd.h[j] * fwd.h[j]);
            g[w1_end + j] += da;
            for (i, &xi) in fwd.x.iter().enumerate() {
                g[j * self.input + i] += da * xi;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mlp(seed: u64) -> Mlp {
        let mut rng = StdRng::seed_from_u64(seed);
        Mlp::new(3, 5, 2, &mut rng)
    }

    #[test]
    fn forward_shapes_and_determinism() {
        let m = mlp(1);
        let f = m.forward(&[0.1, -0.2, 0.3]);
        assert_eq!(f.h.len(), 5);
        assert_eq!(f.logits.len(), 2);
        let f2 = m.forward(&[0.1, -0.2, 0.3]);
        assert_eq!(f.logits, f2.logits);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut m = mlp(2);
        let x = [0.4, -0.7, 0.9];
        let dlogits = [1.0, -0.5]; // objective = logits[0] - 0.5 * logits[1]
        let fwd = m.forward(&x);
        let mut grads = m.zero_grads();
        m.backward(&fwd, &dlogits, &mut grads);

        let objective = |m: &Mlp| {
            let f = m.forward(&x);
            f.logits[0] - 0.5 * f.logits[1]
        };
        let eps = 1e-6;
        for idx in (0..m.param_count()).step_by(7) {
            let orig = m.params()[idx];
            m.params_mut()[idx] = orig + eps;
            let plus = objective(&m);
            m.params_mut()[idx] = orig - eps;
            let minus = objective(&m);
            m.params_mut()[idx] = orig;
            let numeric = (plus - minus) / (2.0 * eps);
            let analytic = grads.0[idx];
            assert!(
                (numeric - analytic).abs() < 1e-5,
                "param {idx}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn backward_accumulates() {
        let m = mlp(3);
        let fwd = m.forward(&[1.0, 2.0, 3.0]);
        let mut grads = m.zero_grads();
        m.backward(&fwd, &[1.0, 0.0], &mut grads);
        let snapshot = grads.0.clone();
        m.backward(&fwd, &[1.0, 0.0], &mut grads);
        for (a, b) in snapshot.iter().zip(grads.0.iter()) {
            assert!((b - 2.0 * a).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "feature size mismatch")]
    fn forward_validates_input_size() {
        let m = mlp(4);
        let _ = m.forward(&[1.0]);
    }
}
