//! Error type for the performance model.

use std::fmt;

/// Error returned by regression fitting and model construction.
#[derive(Debug, Clone, PartialEq)]
pub enum PerfError {
    /// Not enough samples (or degenerate samples) to fit a model.
    InsufficientData(String),
    /// The normal-equations system was singular.
    SingularSystem,
    /// An argument was structurally invalid.
    InvalidArgument(String),
}

impl fmt::Display for PerfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PerfError::InsufficientData(msg) => write!(f, "insufficient data: {msg}"),
            PerfError::SingularSystem => write!(f, "singular regression system"),
            PerfError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for PerfError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(PerfError::InsufficientData("x".into())
            .to_string()
            .contains('x'));
        assert!(PerfError::SingularSystem.to_string().contains("singular"));
        assert!(PerfError::InvalidArgument("y".into())
            .to_string()
            .contains('y'));
    }
}
