//! Fitting an exGaussian to delay samples by the method of moments.

use gillis_faas::stats::{mean, skewness, variance};
use gillis_faas::ExGaussian;

use crate::error::PerfError;
use crate::Result;

/// Fits an [`ExGaussian`] to samples using moment matching:
/// with sample mean `m`, standard deviation `s`, and skewness `g`,
/// `tau = s * (g/2)^(1/3)`, `mu = m - tau`,
/// `sigma^2 = s^2 * (1 - (g/2)^(2/3))`, `rate = 1/tau`.
///
/// Skewness is clamped into a numerically safe range: an exGaussian cannot
/// represent non-positive skew, and extreme skews would drive `sigma` to 0.
///
/// # Errors
///
/// Returns [`PerfError::InsufficientData`] for fewer than 8 samples or
/// degenerate (zero-variance) data.
pub fn fit_exgaussian(samples: &[f64]) -> Result<ExGaussian> {
    if samples.len() < 8 {
        return Err(PerfError::InsufficientData(format!(
            "{} delay samples",
            samples.len()
        )));
    }
    let m = mean(samples);
    let var = variance(samples);
    if var <= 0.0 {
        return Err(PerfError::InsufficientData(
            "zero-variance delay samples".into(),
        ));
    }
    let s = var.sqrt();
    let g = skewness(samples).clamp(0.02, 1.9);
    let ratio = (g / 2.0).powf(1.0 / 3.0);
    let tau = s * ratio;
    let sigma2 = var * (1.0 - ratio * ratio);
    let sigma = sigma2.max(var * 1e-4).sqrt();
    ExGaussian::new(m - tau, sigma, 1.0 / tau)
        .map_err(|e| PerfError::InvalidArgument(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn recovers_known_parameters() {
        let truth = ExGaussian::new(5.0, 1.5, 1.0 / 7.0).unwrap();
        let mut rng = StdRng::seed_from_u64(17);
        let samples: Vec<f64> = (0..50_000).map(|_| truth.sample(&mut rng)).collect();
        let fitted = fit_exgaussian(&samples).unwrap();
        assert!((fitted.mean() - truth.mean()).abs() / truth.mean() < 0.02);
        assert!(
            (fitted.variance() - truth.variance()).abs() / truth.variance() < 0.1,
            "var {} vs {}",
            fitted.variance(),
            truth.variance()
        );
        assert!((fitted.mu - truth.mu).abs() < 0.8, "mu {}", fitted.mu);
    }

    #[test]
    fn fitted_order_statistics_track_truth() {
        // The property the paper actually uses: E[max of n] predictions.
        let truth = ExGaussian::new(5.0, 1.5, 1.0 / 7.0).unwrap();
        let mut rng = StdRng::seed_from_u64(23);
        let samples: Vec<f64> = (0..30_000).map(|_| truth.sample(&mut rng)).collect();
        let fitted = fit_exgaussian(&samples).unwrap();
        for n in [2usize, 8, 16] {
            let a = truth.expected_max(n);
            let b = fitted.expected_max(n);
            assert!((a - b).abs() / a < 0.05, "n={n}: {a} vs {b}");
        }
    }

    #[test]
    fn rejects_tiny_or_degenerate_samples() {
        assert!(fit_exgaussian(&[1.0, 2.0]).is_err());
        assert!(fit_exgaussian(&[3.0; 20]).is_err());
    }

    #[test]
    fn tolerates_low_skew_data() {
        // Nearly symmetric data still produces a valid distribution.
        let mut rng = StdRng::seed_from_u64(5);
        let samples: Vec<f64> = (0..5000)
            .map(|_| 10.0 + gillis_faas::stats::sample_standard_normal(&mut rng))
            .collect();
        let fitted = fit_exgaussian(&samples).unwrap();
        assert!((fitted.mean() - 10.0).abs() < 0.2);
    }
}
