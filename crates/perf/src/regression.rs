//! Ordinary least squares via normal equations (small feature counts).

use serde::{Deserialize, Serialize};

use crate::error::PerfError;
use crate::Result;

/// A fitted linear model `y = intercept + coeffs · x`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearRegression {
    /// Feature coefficients.
    pub coeffs: Vec<f64>,
    /// Intercept term.
    pub intercept: f64,
}

impl LinearRegression {
    /// Fits by ordinary least squares.
    ///
    /// # Errors
    ///
    /// Returns [`PerfError::InsufficientData`] when there are fewer samples
    /// than parameters (or inconsistent feature lengths), and
    /// [`PerfError::SingularSystem`] for degenerate designs.
    pub fn fit(xs: &[Vec<f64>], ys: &[f64]) -> Result<Self> {
        Self::fit_weighted(xs, ys, None)
    }

    /// Fits by weighted least squares. With `weights = 1/y²` this minimizes
    /// *relative* residuals — appropriate when samples span several orders
    /// of magnitude, as layer-runtime profiling sweeps do.
    ///
    /// # Errors
    ///
    /// Same conditions as [`LinearRegression::fit`]; additionally rejects a
    /// weight vector whose length differs from the sample count.
    pub fn fit_weighted(xs: &[Vec<f64>], ys: &[f64], weights: Option<&[f64]>) -> Result<Self> {
        let n = xs.len();
        if n == 0 || n != ys.len() {
            return Err(PerfError::InsufficientData(format!(
                "{} samples vs {} targets",
                n,
                ys.len()
            )));
        }
        if let Some(w) = weights {
            if w.len() != n {
                return Err(PerfError::InsufficientData(format!(
                    "{} weights for {n} samples",
                    w.len()
                )));
            }
        }
        let d = xs[0].len();
        if xs.iter().any(|x| x.len() != d) {
            return Err(PerfError::InsufficientData(
                "inconsistent feature lengths".into(),
            ));
        }
        let p = d + 1; // + intercept
        if n < p {
            return Err(PerfError::InsufficientData(format!(
                "{n} samples for {p} parameters"
            )));
        }
        // Build X^T X (p x p) and X^T y (p) with an implicit leading 1.
        let mut xtx = vec![vec![0.0; p]; p];
        let mut xty = vec![0.0; p];
        for (k, (x, &y)) in xs.iter().zip(ys.iter()).enumerate() {
            let w = weights.map(|w| w[k]).unwrap_or(1.0);
            let mut row = Vec::with_capacity(p);
            row.push(1.0);
            row.extend_from_slice(x);
            for i in 0..p {
                xty[i] += w * row[i] * y;
                for j in 0..p {
                    xtx[i][j] += w * row[i] * row[j];
                }
            }
        }
        let sol = solve_spd(&mut xtx, &mut xty)?;
        Ok(LinearRegression {
            intercept: sol[0],
            coeffs: sol[1..].to_vec(),
        })
    }

    /// Predicts `y` for features `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the fitted feature count.
    pub fn predict(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.coeffs.len(), "feature count mismatch");
        self.intercept
            + self
                .coeffs
                .iter()
                .zip(x.iter())
                .map(|(c, v)| c * v)
                .sum::<f64>()
    }

    /// Coefficient of determination on a dataset.
    pub fn r_squared(&self, xs: &[Vec<f64>], ys: &[f64]) -> f64 {
        if ys.is_empty() {
            return 0.0;
        }
        let mean = ys.iter().sum::<f64>() / ys.len() as f64;
        let ss_tot: f64 = ys.iter().map(|y| (y - mean) * (y - mean)).sum();
        let ss_res: f64 = xs
            .iter()
            .zip(ys.iter())
            .map(|(x, y)| {
                let e = y - self.predict(x);
                e * e
            })
            .sum();
        if ss_tot == 0.0 {
            if ss_res == 0.0 {
                1.0
            } else {
                0.0
            }
        } else {
            1.0 - ss_res / ss_tot
        }
    }
}

/// Solves a symmetric positive-definite system in place by Cholesky
/// decomposition. Also used by the Gaussian-process baseline.
///
/// # Errors
///
/// Returns [`PerfError::SingularSystem`] when the matrix is not (numerically)
/// positive definite.
pub fn solve_spd(a: &mut [Vec<f64>], b: &mut [f64]) -> Result<Vec<f64>> {
    let n = b.len();
    // Cholesky: A = L L^T, stored in the lower triangle of `a`.
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[i][j];
            for (aik, ajk) in a[i][..j].iter().zip(&a[j][..j]) {
                sum -= aik * ajk;
            }
            if i == j {
                if sum <= 0.0 || !sum.is_finite() {
                    return Err(PerfError::SingularSystem);
                }
                a[i][j] = sum.sqrt();
            } else {
                a[i][j] = sum / a[j][j];
            }
        }
    }
    // Forward solve L z = b.
    for i in 0..n {
        for k in 0..i {
            b[i] -= a[i][k] * b[k];
        }
        b[i] /= a[i][i];
    }
    // Back solve L^T x = z.
    for i in (0..n).rev() {
        for k in i + 1..n {
            b[i] -= a[k][i] * b[k];
        }
        b[i] /= a[i][i];
    }
    Ok(b.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_exact_linear_data() {
        // y = 3 + 2 x0 - x1
        let xs: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![i as f64, (i * i % 7) as f64])
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 + 2.0 * x[0] - x[1]).collect();
        let model = LinearRegression::fit(&xs, &ys).unwrap();
        assert!((model.intercept - 3.0).abs() < 1e-8);
        assert!((model.coeffs[0] - 2.0).abs() < 1e-8);
        assert!((model.coeffs[1] + 1.0).abs() < 1e-8);
        assert!(model.r_squared(&xs, &ys) > 0.999999);
    }

    #[test]
    fn fits_noisy_data_approximately() {
        let xs: Vec<Vec<f64>> = (0..200).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| 5.0 + 0.5 * x[0] + if i % 2 == 0 { 0.3 } else { -0.3 })
            .collect();
        let model = LinearRegression::fit(&xs, &ys).unwrap();
        assert!((model.coeffs[0] - 0.5).abs() < 0.01);
        assert!((model.intercept - 5.0).abs() < 0.5);
        assert!(model.r_squared(&xs, &ys) > 0.99);
    }

    #[test]
    fn rejects_underdetermined_and_singular() {
        assert!(LinearRegression::fit(&[], &[]).is_err());
        assert!(LinearRegression::fit(&[vec![1.0, 2.0]], &[1.0]).is_err());
        // Duplicate feature column -> singular.
        let xs: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64, i as f64]).collect();
        let ys: Vec<f64> = (0..10).map(|i| i as f64).collect();
        assert!(matches!(
            LinearRegression::fit(&xs, &ys),
            Err(PerfError::SingularSystem)
        ));
        // Mismatched lengths.
        assert!(LinearRegression::fit(&[vec![1.0], vec![1.0, 2.0]], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn solve_spd_known_system() {
        // A = [[4, 2], [2, 3]], b = [10, 8] -> x = [1.75, 1.5]
        let mut a = vec![vec![4.0, 2.0], vec![2.0, 3.0]];
        let mut b = vec![10.0, 8.0];
        let x = solve_spd(&mut a, &mut b).unwrap();
        assert!((x[0] - 1.75).abs() < 1e-12);
        assert!((x[1] - 1.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "feature count mismatch")]
    fn predict_validates_arity() {
        let model = LinearRegression {
            coeffs: vec![1.0],
            intercept: 0.0,
        };
        let _ = model.predict(&[1.0, 2.0]);
    }
}
