//! Per-layer-type runtime regression (paper §IV-A, "Model Runtime").
//!
//! "For each type of layer, we run it with various configurations in a
//! single function, profile the execution time, and build a regression model
//! for prediction. Given a DNN, we infer its runtime by summing up all the
//! predicted layer execution times."

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::SeedableRng;

use gillis_faas::compute::EffClass;
use gillis_faas::PlatformProfile;

use gillis_model::{LayerClass, LayerOp, LinearModel, MergedLayer};

use crate::regression::LinearRegression;

/// Which profiling class a layer op belongs to, or `None` for zero-cost ops.
pub fn class_of_op(op: &LayerOp) -> Option<EffClass> {
    match op {
        LayerOp::Conv2d { .. } => Some(EffClass::Conv),
        // Depthwise kernels have low arithmetic intensity (memory-bound):
        // model them with the pooling efficiency class.
        LayerOp::DepthwiseConv2d { .. } => Some(EffClass::Pool),
        LayerOp::Dense { .. } => Some(EffClass::Dense),
        LayerOp::Lstm { .. } => Some(EffClass::Recurrent),
        LayerOp::MaxPool2d { .. } | LayerOp::AvgPool2d { .. } | LayerOp::GlobalAvgPool => {
            Some(EffClass::Pool)
        }
        LayerOp::BatchNorm | LayerOp::Relu | LayerOp::Softmax | LayerOp::Add => {
            Some(EffClass::ElementWise)
        }
        LayerOp::Input { .. } | LayerOp::Flatten | LayerOp::Concat => None,
    }
}

/// The dominant profiling class of a merged layer, used when per-node detail
/// is not needed.
pub fn eff_class_of_layer(layer: &MergedLayer) -> EffClass {
    match layer.class {
        LayerClass::DenseLike => EffClass::Dense,
        LayerClass::Recurrent => EffClass::Recurrent,
        LayerClass::Reduction => EffClass::Pool,
        LayerClass::ConvLike { channel_local, .. } => {
            if channel_local {
                EffClass::Pool
            } else {
                EffClass::Conv
            }
        }
    }
}

/// Emission order of [`flops_by_class`]: alphabetical by debug name, the
/// order the historical `format!("{c:?}")` sort produced.
const CLASS_EMIT_ORDER: [EffClass; 5] = [
    EffClass::Conv,
    EffClass::Dense,
    EffClass::ElementWise,
    EffClass::Pool,
    EffClass::Recurrent,
];

/// Dense index of a class into [`CLASS_EMIT_ORDER`].
fn class_rank(class: EffClass) -> usize {
    match class {
        EffClass::Conv => 0,
        EffClass::Dense => 1,
        EffClass::ElementWise => 2,
        EffClass::Pool => 3,
        EffClass::Recurrent => 4,
    }
}

/// Breaks a merged layer's FLOPs down by profiling class, walking its
/// constituent graph nodes. The partitioner scales these per-class totals by
/// the partition fraction when predicting partition compute times.
///
/// This sits on the planner's innermost path (every group analysis of every
/// DP cell consults it), so totals accumulate into a fixed five-slot array
/// indexed by class rank — no hashing, no allocation beyond the result.
pub fn flops_by_class(model: &LinearModel, layer: &MergedLayer) -> Vec<(EffClass, u64)> {
    let graph = model.graph();
    let mut totals = [0u64; CLASS_EMIT_ORDER.len()];
    let mut seen = [false; CLASS_EMIT_ORDER.len()];
    for &id in &layer.nodes {
        let node = &graph.nodes()[id.0];
        if let Some(class) = class_of_op(&node.op) {
            let in_shapes: Vec<_> = node
                .inputs
                .iter()
                .map(|&i| &graph.nodes()[i.0].output_shape)
                .collect();
            let rank = class_rank(class);
            totals[rank] += node.op.flops(&in_shapes, &node.output_shape);
            seen[rank] = true;
        }
    }
    CLASS_EMIT_ORDER
        .iter()
        .zip(totals)
        .zip(seen)
        .filter(|&(_, s)| s)
        .map(|((&c, f), _)| (c, f))
        .collect()
}

/// Per-class linear runtime models fitted from profiling runs.
#[derive(Debug, Clone)]
pub struct LayerRuntimeModel {
    per_class: HashMap<EffClass, LinearRegression>,
    /// Relative standard deviation of the profiling residuals — an estimate
    /// of the platform's run-to-run compute variance, used by the tail
    /// (quantile) latency predictor.
    noise_rel_std: f64,
}

const ALL_CLASSES: [EffClass; 5] = [
    EffClass::Conv,
    EffClass::Dense,
    EffClass::Recurrent,
    EffClass::Pool,
    EffClass::ElementWise,
];

impl LayerRuntimeModel {
    /// Profiles each layer class on the platform (noisy measurements across
    /// a log-spaced FLOP sweep, several repetitions each) and fits a
    /// per-class regression `time = a · flops + b`.
    pub fn profiled(platform: &PlatformProfile, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut per_class = HashMap::new();
        let mut rel_residuals: Vec<f64> = Vec::new();
        for class in ALL_CLASSES {
            let mut xs = Vec::new();
            let mut ys = Vec::new();
            // Sweep from 1 MFLOP to ~40 GFLOPs: the range real layers span.
            let mut flops = 1_000_000u64;
            while flops <= 40_000_000_000 {
                for _ in 0..5 {
                    xs.push(vec![flops as f64]);
                    ys.push(platform.compute_ms_noisy(flops, class, &mut rng));
                }
                flops = (flops as f64 * 2.3) as u64;
            }
            // 1/y² weights: minimize relative error so small layers are
            // predicted as accurately as large ones.
            let weights: Vec<f64> = ys.iter().map(|y| 1.0 / (y * y).max(1e-12)).collect();
            let model = LinearRegression::fit_weighted(&xs, &ys, Some(&weights))
                .expect("profiling sweep produces a well-posed regression");
            for (x, y) in xs.iter().zip(ys.iter()) {
                let pred = model.predict(x);
                if pred > 0.0 {
                    rel_residuals.push((y - pred) / pred);
                }
            }
            per_class.insert(class, model);
        }
        let noise_rel_std = gillis_faas::stats::variance(&rel_residuals).sqrt();
        LayerRuntimeModel {
            per_class,
            noise_rel_std,
        }
    }

    /// Builds the exact (noise-free) runtime model from the platform's
    /// ground-truth constants.
    pub fn analytic(platform: &PlatformProfile) -> Self {
        let mut per_class = HashMap::new();
        for class in ALL_CLASSES {
            // Ground truth is exactly linear: time = overhead + flops/peak.
            let per_flop =
                platform.compute_ms(1_000_000_000, class) - platform.per_layer_overhead_ms;
            per_class.insert(
                class,
                LinearRegression {
                    coeffs: vec![per_flop / 1e9],
                    intercept: platform.per_layer_overhead_ms,
                },
            );
        }
        LayerRuntimeModel {
            per_class,
            noise_rel_std: platform.compute_noise_rel_std,
        }
    }

    /// Estimated relative standard deviation of compute times (from
    /// profiling residuals, or the ground-truth constant for analytic
    /// models).
    pub fn noise_rel_std(&self) -> f64 {
        self.noise_rel_std
    }

    /// Predicted execution time (ms) of `flops` of `class` work.
    pub fn predict_ms(&self, flops: u64, class: EffClass) -> f64 {
        self.per_class[&class].predict(&[flops as f64]).max(0.0)
    }

    /// Predicted runtime of a whole model in one function: the sum over all
    /// graph nodes of their predicted layer times (paper §IV-A).
    pub fn predict_model_ms(&self, model: &LinearModel) -> f64 {
        let graph = model.graph();
        graph
            .nodes()
            .iter()
            .filter_map(|n| {
                let class = class_of_op(&n.op)?;
                let in_shapes: Vec<_> = n
                    .inputs
                    .iter()
                    .map(|&i| &graph.nodes()[i.0].output_shape)
                    .collect();
                Some(self.predict_ms(n.op.flops(&in_shapes, &n.output_shape), class))
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gillis_model::zoo;

    #[test]
    fn profiled_regression_is_accurate() {
        // Fig 15 (top left): prediction error within a few percent.
        let platform = PlatformProfile::aws_lambda();
        let model = LayerRuntimeModel::profiled(&platform, 7);
        for class in ALL_CLASSES {
            for flops in [50_000_000u64, 2_000_000_000, 20_000_000_000] {
                let truth = platform.compute_ms(flops, class);
                let pred = model.predict_ms(flops, class);
                let rel = (truth - pred).abs() / truth;
                assert!(rel < 0.06, "{class:?}/{flops}: {pred} vs {truth}");
            }
        }
    }

    #[test]
    fn class_mapping_covers_all_ops() {
        assert_eq!(
            class_of_op(&LayerOp::Conv2d {
                out_channels: 1,
                kernel: 1,
                stride: 1,
                padding: 0
            }),
            Some(EffClass::Conv)
        );
        assert_eq!(
            class_of_op(&LayerOp::Dense { out_features: 1 }),
            Some(EffClass::Dense)
        );
        assert_eq!(
            class_of_op(&LayerOp::Lstm { hidden: 1 }),
            Some(EffClass::Recurrent)
        );
        assert_eq!(class_of_op(&LayerOp::Flatten), None);
        assert_eq!(class_of_op(&LayerOp::Relu), Some(EffClass::ElementWise));
        assert_eq!(class_of_op(&LayerOp::GlobalAvgPool), Some(EffClass::Pool));
    }

    #[test]
    fn model_runtime_prediction_sums_layers() {
        let platform = PlatformProfile::aws_lambda();
        let runtime = LayerRuntimeModel::analytic(&platform);
        let vgg = zoo::vgg16();
        let predicted = runtime.predict_model_ms(&vgg);
        // VGG-16 is ~31 GFLOPs of mostly-conv work on a 28 GFLOP/s
        // instance: expect on the order of 1.0–2.0 s.
        assert!(
            predicted > 800.0 && predicted < 2500.0,
            "vgg16 predicted {predicted}"
        );
    }

    #[test]
    fn deeper_models_predict_longer_runtimes() {
        let platform = PlatformProfile::aws_lambda();
        let runtime = LayerRuntimeModel::analytic(&platform);
        let v11 = runtime.predict_model_ms(&zoo::vgg11());
        let v16 = runtime.predict_model_ms(&zoo::vgg16());
        let v19 = runtime.predict_model_ms(&zoo::vgg19());
        assert!(v11 < v16 && v16 < v19);
    }

    #[test]
    fn flops_by_class_emits_debug_alphabetical_order() {
        // The rank table must match the historical `format!("{c:?}")` sort.
        let ranked: Vec<String> = CLASS_EMIT_ORDER.iter().map(|c| format!("{c:?}")).collect();
        let mut sorted = ranked.clone();
        sorted.sort();
        assert_eq!(ranked, sorted);
        for (i, &c) in CLASS_EMIT_ORDER.iter().enumerate() {
            assert_eq!(class_rank(c), i);
        }
        // And real layers come out sorted.
        for model in [zoo::vgg16(), zoo::mobilenet(), zoo::rnn(2)] {
            for layer in model.layers() {
                let names: Vec<String> = flops_by_class(&model, layer)
                    .iter()
                    .map(|(c, _)| format!("{c:?}"))
                    .collect();
                let mut sorted = names.clone();
                sorted.sort();
                assert_eq!(names, sorted, "{}", layer.name);
            }
        }
    }

    #[test]
    fn eff_class_of_merged_layers() {
        let vgg = zoo::vgg11();
        let classes: Vec<EffClass> = vgg.layers().iter().map(eff_class_of_layer).collect();
        assert_eq!(classes[0], EffClass::Conv);
        assert!(classes.contains(&EffClass::Pool));
        assert_eq!(*classes.last().unwrap(), EffClass::Dense);
        let rnn = zoo::rnn(2);
        assert!(rnn
            .layers()
            .iter()
            .all(|l| eff_class_of_layer(l) == EffClass::Recurrent));
    }
}
