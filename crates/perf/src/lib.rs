//! The Gillis performance model (paper §IV-A).
//!
//! Gillis predicts the latency and cost of candidate parallelization schemes
//! from two profiled components:
//!
//! 1. **Model runtime** — for each layer type, layer executions are profiled
//!    in a single function and a regression model is fitted
//!    ([`layer_model::LayerRuntimeModel`]). A DNN's runtime is the sum of its
//!    predicted layer times.
//! 2. **Function communication delay** — transfer delays are profiled across
//!    payload sizes; the jitter follows an exponentially-modified Gaussian,
//!    and the fork delay of `n` concurrent workers is predicted with the
//!    `n`-th order statistic ([`comm_model::CommModel`]).
//!
//! [`PerfModel`] bundles both and is what the partitioning algorithms (DP,
//! RL, BO) consult. [`PerfModel::profiled`] runs the actual profiling
//! workflow against the simulator's ground truth — prediction error is
//! evaluated in the Fig 15 reproduction; [`PerfModel::analytic`] short-cuts
//! to the exact ground-truth surface for tests.

pub mod comm_model;
pub mod error;
pub mod fit;
pub mod layer_model;
pub mod regression;

pub use comm_model::CommModel;
pub use error::PerfError;
pub use layer_model::{class_of_op, eff_class_of_layer, flops_by_class, LayerRuntimeModel};
pub use regression::LinearRegression;

use gillis_faas::compute::EffClass;
use gillis_faas::PlatformProfile;

/// Convenient result alias for fallible performance-model operations.
pub type Result<T> = std::result::Result<T, PerfError>;

/// On-wire encoding of tensor payloads between master and workers.
///
/// The planner prices transfers through [`PerfModel::wire_bytes`], so
/// switching the deployment to the int8 wire shrinks every fork/join payload
/// ~4× and lets the DP/RL/BO searches trade differently between compute
/// splits and communication.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransferFormat {
    /// Raw little-endian `f32` tensors (exact).
    #[default]
    F32,
    /// Per-payload symmetric int8 quantization: one `i8` per element plus a
    /// 4-byte `f32` scale header (see `gillis_tensor::quant`).
    Int8,
}

impl TransferFormat {
    /// Bytes on the wire for a raw `f32` payload of `raw_bytes`.
    pub fn wire_bytes(self, raw_bytes: u64) -> u64 {
        match self {
            TransferFormat::F32 => raw_bytes,
            // One i8 per f32 element, plus the f32 scale header.
            TransferFormat::Int8 => raw_bytes.div_ceil(4) + 4,
        }
    }
}

/// The complete performance model for one platform.
#[derive(Debug, Clone)]
pub struct PerfModel {
    /// Per-layer-class runtime regressions.
    pub layer: LayerRuntimeModel,
    /// Communication delay model.
    pub comm: CommModel,
    /// The platform being modelled (used for billing constants and memory
    /// budgets, which are published, not profiled).
    pub platform: PlatformProfile,
    /// Wire encoding of fork/join payloads (default: raw f32).
    pub transfer_format: TransferFormat,
}

impl PerfModel {
    /// Builds the performance model by *profiling* the platform: running
    /// layer executions and transfers against the simulator's noisy ground
    /// truth and fitting regressions, as the paper does on real functions.
    pub fn profiled(platform: &PlatformProfile, seed: u64) -> Self {
        PerfModel {
            layer: LayerRuntimeModel::profiled(platform, seed),
            comm: CommModel::profiled(platform, seed ^ 0x9e37_79b9_7f4a_7c15),
            platform: platform.clone(),
            transfer_format: TransferFormat::default(),
        }
    }

    /// Builds an exact (noise-free) performance model directly from the
    /// platform's ground-truth constants. Useful in tests and when the
    /// profiling step itself is not under evaluation.
    pub fn analytic(platform: &PlatformProfile) -> Self {
        PerfModel {
            layer: LayerRuntimeModel::analytic(platform),
            comm: CommModel::analytic(platform),
            platform: platform.clone(),
            transfer_format: TransferFormat::default(),
        }
    }

    /// The same model with fork/join payloads priced under `format`.
    pub fn with_transfer_format(mut self, format: TransferFormat) -> Self {
        self.transfer_format = format;
        self
    }

    /// Bytes a raw `f32` payload of `raw_bytes` occupies on the wire under
    /// this model's [`TransferFormat`]. All transfer-size accounting in the
    /// planners and the runtime sampler routes through here.
    pub fn wire_bytes(&self, raw_bytes: u64) -> u64 {
        self.transfer_format.wire_bytes(raw_bytes)
    }

    /// Predicted execution time of `flops` of work of `class` in one
    /// function, in milliseconds.
    pub fn predict_compute_ms(&self, flops: u64, class: EffClass) -> f64 {
        self.layer.predict_ms(flops, class)
    }

    /// Predicted time for the master to fork `n` workers, shipping
    /// `payload_bytes` to each: payload uploads share the master's egress
    /// bandwidth (serialized), while per-invocation jitter overlaps and
    /// costs the expected maximum of `n` draws.
    pub fn fork_ms(&self, payload_bytes: u64, n: usize) -> f64 {
        self.comm.group_transfer_ms(payload_bytes, n)
    }

    /// Predicted time for the master to collect `n` worker responses of
    /// `payload_bytes` each (same structure as [`PerfModel::fork_ms`]).
    pub fn join_ms(&self, payload_bytes: u64, n: usize) -> f64 {
        self.comm.group_transfer_ms(payload_bytes, n)
    }

    /// Predicted time to hand a raw `f32` activation of `raw_bytes` from one
    /// pipeline stage to the next: a single transfer of the wire-encoded
    /// payload, jitter included. This is the inbound-transfer term of the
    /// pipeline stage-time model `t_pipeline` (stage time = hand-off +
    /// group latency).
    pub fn handoff_ms(&self, raw_bytes: u64) -> f64 {
        self.comm.transfer_ms(self.wire_bytes(raw_bytes))
    }
}

/// Expected work wasted per query under **full-restart** recovery, to first
/// order in the per-boundary crash probability `crash_prob`: a crash at the
/// boundary after stage `i` throws away everything computed so far, so the
/// expectation is `p · Σᵢ Σ_{j ≤ i} t_j`. This is the term that grows
/// quadratically with plan depth — the analytical reason deep plans need
/// checkpointed recovery.
#[must_use]
pub fn expected_waste_restart_ms(stage_ms: &[f64], crash_prob: f64) -> f64 {
    let p = crash_prob.clamp(0.0, 1.0);
    let mut cumulative = 0.0;
    let mut waste = 0.0;
    for &t in stage_ms {
        cumulative += t;
        waste += p * cumulative;
    }
    waste
}

/// Expected work wasted per query under **checkpointed resume**: a crash at
/// any of the `n` boundaries costs only the failover replay delay, so the
/// expectation is `p · n · failover_ms` — linear in depth, independent of
/// stage cost.
#[must_use]
pub fn expected_waste_resumed_ms(stage_ms: &[f64], crash_prob: f64, failover_ms: f64) -> f64 {
    crash_prob.clamp(0.0, 1.0) * stage_ms.len() as f64 * failover_ms.max(0.0)
}

/// Marginal cost of re-executing one stage, as a fraction of a full-restart
/// retry: the stage's predicted latency over the whole plan's. This is the
/// price a checkpointed resume debits from the retry budget — a resumed
/// attempt redoes one stage, not the plan — floored at 5% so even a
/// near-free stage pays *something* (retries are never entirely free load).
#[must_use]
pub fn marginal_retry_cost(stage_ms: f64, plan_total_ms: f64) -> f64 {
    // `partial_cmp` (not `!(x > 0.0)`): a NaN plan total must fall through
    // to the conservative full-token price.
    if plan_total_ms.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) || !stage_ms.is_finite()
    {
        return 1.0;
    }
    (stage_ms / plan_total_ms).clamp(0.05, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiled_model_tracks_analytic_within_a_few_percent() {
        let platform = PlatformProfile::aws_lambda();
        let analytic = PerfModel::analytic(&platform);
        let profiled = PerfModel::profiled(&platform, 42);
        for flops in [100_000_000u64, 1_000_000_000, 10_000_000_000] {
            for class in [EffClass::Conv, EffClass::Dense, EffClass::Recurrent] {
                let a = analytic.predict_compute_ms(flops, class);
                let p = profiled.predict_compute_ms(flops, class);
                let rel = (a - p).abs() / a;
                assert!(rel < 0.05, "{class:?} {flops}: analytic {a}, profiled {p}");
            }
        }
    }

    #[test]
    fn fork_cost_grows_with_fanout() {
        let model = PerfModel::analytic(&PlatformProfile::aws_lambda());
        let f1 = model.fork_ms(1_000_000, 1);
        let f4 = model.fork_ms(1_000_000, 4);
        let f16 = model.fork_ms(1_000_000, 16);
        assert!(f1 < f4 && f4 < f16);
        // Payload serialization dominates at high fan-out: at least linear
        // growth in total payload.
        assert!(f16 > 12.0 * (f1 - model.comm.jitter().mean()));
    }

    #[test]
    fn int8_wire_shrinks_payloads_4x() {
        let f32_model = PerfModel::analytic(&PlatformProfile::aws_lambda());
        let int8_model = f32_model.clone().with_transfer_format(TransferFormat::Int8);
        assert_eq!(f32_model.wire_bytes(1_000_000), 1_000_000);
        assert_eq!(int8_model.wire_bytes(1_000_000), 250_004);
        // Odd raw sizes round the element count up.
        assert_eq!(int8_model.wire_bytes(7), 6);
        // The smaller wire makes the same fork strictly cheaper.
        assert!(
            int8_model.fork_ms(int8_model.wire_bytes(1_000_000), 8)
                < f32_model.fork_ms(f32_model.wire_bytes(1_000_000), 8)
        );
    }

    #[test]
    fn wasted_work_terms_behave() {
        let stages = [10.0, 20.0, 30.0];
        // Restart waste telescopes: 0.1 × (10 + 30 + 60) = 10.
        assert!((expected_waste_restart_ms(&stages, 0.1) - 10.0).abs() < 1e-12);
        // Resume waste is linear in depth: 0.1 × 3 × 25 = 7.5.
        assert!((expected_waste_resumed_ms(&stages, 0.1, 25.0) - 7.5).abs() < 1e-12);
        // Resume beats restart whenever failover is cheaper than the mean
        // prefix cost; with these stages that holds up to ~33 ms failover.
        assert!(
            expected_waste_resumed_ms(&stages, 0.1, 25.0) < expected_waste_restart_ms(&stages, 0.1)
        );
        // No crashes, no waste; probabilities are clamped to [0, 1].
        assert_eq!(expected_waste_restart_ms(&stages, 0.0), 0.0);
        assert_eq!(
            expected_waste_restart_ms(&stages, 2.0),
            expected_waste_restart_ms(&stages, 1.0)
        );
        // Deeper plans waste quadratically more under restart, linearly
        // under resume.
        let deep: Vec<f64> = vec![10.0; 8];
        let shallow: Vec<f64> = vec![10.0; 4];
        let r8 = expected_waste_restart_ms(&deep, 0.1);
        let r4 = expected_waste_restart_ms(&shallow, 0.1);
        assert!((r8 / r4 - 3.6).abs() < 1e-9, "36/10 prefix sums");
        let s8 = expected_waste_resumed_ms(&deep, 0.1, 25.0);
        let s4 = expected_waste_resumed_ms(&shallow, 0.1, 25.0);
        assert!((s8 / s4 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn marginal_retry_cost_is_the_stage_share() {
        assert!((marginal_retry_cost(25.0, 100.0) - 0.25).abs() < 1e-12);
        // Floored and capped.
        assert_eq!(marginal_retry_cost(0.1, 1000.0), 0.05);
        assert_eq!(marginal_retry_cost(500.0, 100.0), 1.0);
        // Degenerate totals price conservatively at full cost.
        assert_eq!(marginal_retry_cost(10.0, 0.0), 1.0);
        assert_eq!(marginal_retry_cost(10.0, f64::NAN), 1.0);
        assert_eq!(marginal_retry_cost(f64::NAN, 100.0), 1.0);
    }

    #[test]
    fn knix_forks_much_faster_than_lambda() {
        let lambda = PerfModel::analytic(&PlatformProfile::aws_lambda());
        let knix = PerfModel::analytic(&PlatformProfile::knix());
        assert!(knix.fork_ms(1_000_000, 8) < lambda.fork_ms(1_000_000, 8) / 4.0);
    }
}
