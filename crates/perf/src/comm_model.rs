//! Function communication delay model (paper §IV-A, "Function Communication
//! Delay").
//!
//! The model has two parts, both learned from profiling transfers of varying
//! sizes through REST invocations:
//!
//! - a per-byte streaming cost (the master's bandwidth share), and
//! - an exGaussian per-invocation jitter, whose `n`-th order statistic
//!   predicts the max delay of `n` concurrent worker invocations.

use rand::rngs::StdRng;
use rand::SeedableRng;

use gillis_faas::{ExGaussian, PlatformProfile};

use crate::fit::fit_exgaussian;
use crate::regression::LinearRegression;

/// Fitted communication model.
#[derive(Debug, Clone)]
pub struct CommModel {
    jitter: ExGaussian,
    per_byte_ms: f64,
    /// Precomputed `E[max of n]` for n = 1..=MAX_FANOUT_TABLE (order
    /// statistics are queried on every group prediction; the numerical
    /// integration is too slow to repeat inside the DP/RL/BO loops).
    max_table: Vec<f64>,
}

const MAX_FANOUT_TABLE: usize = 64;

fn build_max_table(jitter: &ExGaussian) -> Vec<f64> {
    (1..=MAX_FANOUT_TABLE)
        .map(|n| jitter.expected_max(n))
        .collect()
}

impl CommModel {
    /// Profiles the platform: transfers payloads of varying sizes, regresses
    /// delay on size to recover the per-byte cost, and fits an exGaussian to
    /// the residual jitter.
    pub fn profiled(platform: &PlatformProfile, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let sizes: [u64; 6] = [
            64 * 1024,
            256 * 1024,
            512 * 1024,
            1024 * 1024,
            2 * 1024 * 1024,
            4 * 1024 * 1024,
        ];
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for &size in &sizes {
            for _ in 0..400 {
                let delay =
                    platform.invoke_latency_ms.sample(&mut rng) + platform.transfer_ms(size);
                xs.push(vec![size as f64]);
                ys.push(delay);
            }
        }
        let line = LinearRegression::fit(&xs, &ys).expect("delay sweep is well-posed");
        let per_byte_ms = line.coeffs[0].max(0.0);
        // Jitter = measured delay minus the size-dependent part.
        let residuals: Vec<f64> = xs
            .iter()
            .zip(ys.iter())
            .map(|(x, y)| y - per_byte_ms * x[0])
            .collect();
        let jitter = fit_exgaussian(&residuals).expect("jitter residuals fit an exGaussian");
        let max_table = build_max_table(&jitter);
        CommModel {
            jitter,
            per_byte_ms,
            max_table,
        }
    }

    /// Builds the exact communication model from ground-truth constants.
    pub fn analytic(platform: &PlatformProfile) -> Self {
        let jitter = platform.invoke_latency_ms;
        CommModel {
            jitter,
            per_byte_ms: 8.0 / platform.network_bandwidth_bps * 1000.0,
            max_table: build_max_table(&jitter),
        }
    }

    /// The fitted invocation-jitter distribution.
    pub fn jitter(&self) -> &ExGaussian {
        &self.jitter
    }

    /// `E[max of n]` of the jitter, from the precomputed table (falling
    /// back to direct integration beyond the table).
    fn expected_max_jitter(&self, n: usize) -> f64 {
        if n >= 1 && n <= self.max_table.len() {
            self.max_table[n - 1]
        } else {
            self.jitter.expected_max(n)
        }
    }

    /// Fitted per-byte streaming cost in milliseconds.
    pub fn per_byte_ms(&self) -> f64 {
        self.per_byte_ms
    }

    /// Predicted mean delay of one transfer of `bytes`.
    pub fn transfer_ms(&self, bytes: u64) -> f64 {
        self.jitter.mean() + self.per_byte_ms * bytes as f64
    }

    /// Predicted delay for the master to exchange `bytes` with each of `n`
    /// workers concurrently: payload streams share the master's bandwidth
    /// (so they serialize), while invocation jitters overlap and cost the
    /// expected maximum of `n` draws — the order-statistic prediction of
    /// §IV-A.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn group_transfer_ms(&self, bytes: u64, n: usize) -> f64 {
        assert!(n > 0, "group transfer needs at least one worker");
        self.expected_max_jitter(n) + self.per_byte_ms * (bytes as f64) * n as f64
    }

    /// Like [`CommModel::group_transfer_ms`] but with per-worker payload
    /// sizes (spatial partitions at the tensor border carry fewer halo rows
    /// than interior ones).
    ///
    /// # Panics
    ///
    /// Panics if `part_bytes` is empty.
    pub fn group_transfer_parts_ms(&self, part_bytes: &[u64]) -> f64 {
        assert!(
            !part_bytes.is_empty(),
            "group transfer needs at least one worker"
        );
        let total: u64 = part_bytes.iter().sum();
        self.expected_max_jitter(part_bytes.len()) + self.per_byte_ms * total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    #[test]
    fn profiled_matches_analytic() {
        let platform = PlatformProfile::aws_lambda();
        let profiled = CommModel::profiled(&platform, 3);
        let analytic = CommModel::analytic(&platform);
        let rel_bw =
            (profiled.per_byte_ms() - analytic.per_byte_ms()).abs() / analytic.per_byte_ms();
        assert!(rel_bw < 0.05, "per-byte rel error {rel_bw}");
        for bytes in [100_000u64, 1_000_000, 4_000_000] {
            let a = analytic.transfer_ms(bytes);
            let p = profiled.transfer_ms(bytes);
            assert!((a - p).abs() / a < 0.08, "{bytes}: {p} vs {a}");
        }
    }

    #[test]
    fn order_statistic_prediction_error_is_small() {
        // Fig 15 (top right): ~6% average error predicting max-of-n delays.
        let platform = PlatformProfile::aws_lambda();
        let profiled = CommModel::profiled(&platform, 11);
        let mut rng = StdRng::seed_from_u64(99);
        let bytes = 1_000_000u64;
        let mut total_rel = 0.0;
        let ns = [1usize, 2, 4, 8, 16];
        for &n in &ns {
            // Monte-Carlo ground truth of the concurrent exchange.
            let mc: f64 = (0..2000)
                .map(|_| {
                    let jitter_max = (0..n)
                        .map(|_| platform.invoke_latency_ms.sample(&mut rng))
                        .fold(f64::NEG_INFINITY, f64::max);
                    jitter_max + platform.transfer_ms(bytes) * n as f64
                })
                .sum::<f64>()
                / 2000.0;
            let pred = profiled.group_transfer_ms(bytes, n);
            total_rel += (pred - mc).abs() / mc;
        }
        let avg_rel = total_rel / ns.len() as f64;
        assert!(avg_rel < 0.08, "average prediction error {avg_rel}");
    }

    #[test]
    fn group_transfer_monotone_in_n_and_bytes() {
        let m = CommModel::analytic(&PlatformProfile::aws_lambda());
        assert!(m.group_transfer_ms(1_000_000, 2) < m.group_transfer_ms(1_000_000, 4));
        assert!(m.group_transfer_ms(1_000_000, 4) < m.group_transfer_ms(2_000_000, 4));
        let _ = rand::rngs::StdRng::seed_from_u64(0).random::<u8>(); // keep RngExt import used
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        let m = CommModel::analytic(&PlatformProfile::aws_lambda());
        let _ = m.group_transfer_ms(1, 0);
    }
}
