//! Property-based tests of receptive-field math and the merging pass.

use proptest::prelude::*;

use gillis_model::{Graph, LayerOp, ReceptiveField};
use gillis_tensor::Shape;

/// A random chain of plausible window geometries.
fn window_strategy() -> impl Strategy<Value = ReceptiveField> {
    (1usize..=7, 1usize..=3, 0usize..=3).prop_map(|(kernel, stride, padding)| ReceptiveField {
        kernel,
        stride,
        padding,
    })
}

proptest! {
    #[test]
    fn rf_composition_matches_sequential_output_counts(
        chain in prop::collection::vec(window_strategy(), 1..6),
        h in 16usize..256,
    ) {
        // Composing receptive fields must predict exactly the same output
        // extent as applying each window in sequence.
        let mut composed = ReceptiveField::identity();
        let mut sequential = h;
        let mut feasible = true;
        for w in &chain {
            if sequential + 2 * w.padding < w.kernel {
                feasible = false;
                break;
            }
            sequential = w.output_rows(sequential);
            composed = composed.then(w);
        }
        prop_assume!(feasible && sequential > 0);
        prop_assert_eq!(composed.output_rows(h), sequential);
    }

    #[test]
    fn rf_input_rows_cover_each_output_window(
        w in window_strategy(),
        h in 8usize..128,
        frac_lo in 0.0f64..1.0,
        frac_len in 0.0f64..1.0,
    ) {
        let out_h = w.output_rows(h);
        prop_assume!(out_h > 0);
        let lo = ((out_h as f64 - 1.0) * frac_lo) as usize;
        let hi = (lo + 1 + ((out_h - lo - 1) as f64 * frac_len) as usize).min(out_h);
        let (rows, pad_top, pad_bottom) = w.input_rows(lo..hi, h);
        // The clamped slice plus synthesized padding must cover the window
        // of every requested output element exactly.
        let need_lo = lo as isize * w.stride as isize - w.padding as isize;
        let need_hi = (hi - 1) as isize * w.stride as isize - w.padding as isize + w.kernel as isize;
        prop_assert_eq!(rows.start as isize - pad_top as isize, need_lo);
        prop_assert_eq!(rows.end as isize + pad_bottom as isize, need_hi);
        prop_assert!(rows.end <= h);
    }

    #[test]
    fn merging_conserves_flops_and_weights_for_random_cnns(
        channels in prop::collection::vec(2usize..12, 1..5),
        use_bn in any::<bool>(),
        pool_every in 1usize..3,
    ) {
        // Build a random VGG-ish chain, merge it, and check the pass neither
        // invents nor drops work.
        let mut g = Graph::new();
        let mut cur = g
            .add(
                "input",
                LayerOp::Input {
                    shape: Shape::new(vec![3, 32, 32]),
                },
                &[],
            )
            .unwrap();
        let mut h = 32usize;
        for (i, &c) in channels.iter().enumerate() {
            cur = g
                .add(
                    format!("conv{i}"),
                    LayerOp::Conv2d {
                        out_channels: c,
                        kernel: 3,
                        stride: 1,
                        padding: 1,
                    },
                    &[cur],
                )
                .unwrap();
            if use_bn {
                cur = g.add(format!("bn{i}"), LayerOp::BatchNorm, &[cur]).unwrap();
            }
            cur = g.add(format!("relu{i}"), LayerOp::Relu, &[cur]).unwrap();
            if i % pool_every == 0 && h >= 4 {
                cur = g
                    .add(
                        format!("pool{i}"),
                        LayerOp::MaxPool2d {
                            kernel: 2,
                            stride: 2,
                            padding: 0,
                        },
                        &[cur],
                    )
                    .unwrap();
                h /= 2;
            }
        }
        let total_flops = g.total_flops();
        let total_weights = 4 * g.total_params();
        let model = gillis_model::merge::merge_graph("random-cnn", g).unwrap();
        prop_assert_eq!(model.total_flops(), total_flops);
        prop_assert_eq!(model.weight_bytes(), total_weights);
        // Shapes chain through the merged layers.
        for pair in model.layers().windows(2) {
            prop_assert_eq!(&pair[0].out_shape, &pair[1].in_shape);
        }
    }
}
