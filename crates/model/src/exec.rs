//! Reference executor: full, row-range, and channel-range forward passes.
//!
//! This module stands in for the paper's MXNet backend. Its row-range and
//! channel-range entry points compute exactly what a fork-join *worker*
//! computes for a spatial or channel partition of a layer group, so the
//! equivalence `concat(partitions) == full forward` can be asserted in tests
//! — the property that makes Gillis's partitioning accuracy-lossless.

use std::collections::HashMap;
use std::ops::Range;

use gillis_tensor::ops::{
    avg_pool2d, batch_norm, conv2d, dense, depthwise_conv2d, global_avg_pool, lstm_sequence,
    max_pool2d, relu, softmax, BatchNormParams, Conv2dParams, Padding, Pool2dParams,
};
use gillis_tensor::{Shape, Tensor};

use crate::error::ModelError;
use crate::graph::{Graph, NodeId};
use crate::linear::{LinearModel, MergedLayer, ReceptiveField};
use crate::op::LayerOp;
use crate::weights::{ModelWeights, NodeWeights};
use crate::Result;

/// Executes (sub-)models against materialized weights.
#[derive(Debug, Clone, Copy)]
pub struct Executor<'a> {
    graph: &'a Graph,
    weights: &'a ModelWeights,
}

impl<'a> Executor<'a> {
    /// Creates an executor over a graph and its weights.
    pub fn new(graph: &'a Graph, weights: &'a ModelWeights) -> Self {
        Executor { graph, weights }
    }

    /// Runs the whole model on a query tensor.
    ///
    /// # Errors
    ///
    /// Propagates kernel and weight errors.
    pub fn forward(&self, model: &LinearModel, input: &Tensor) -> Result<Tensor> {
        self.run_segment(model.layers(), input)
    }

    /// Runs a consecutive segment of merged layers on the segment's input.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Unsupported`] for an empty segment and
    /// propagates kernel and weight errors.
    pub fn run_segment(&self, layers: &[MergedLayer], input: &Tensor) -> Result<Tensor> {
        let seed = self.segment_seed(layers)?;
        let mut values: HashMap<NodeId, Tensor> = HashMap::new();
        values.insert(seed, input.clone());
        let mut last = seed;
        for layer in layers {
            for &id in &layer.nodes {
                let node = self.graph.node(id)?;
                let inputs: Vec<&Tensor> = node
                    .inputs
                    .iter()
                    .map(|i| {
                        values.get(i).ok_or_else(|| {
                            ModelError::BadWiring(format!("value for node {} missing", i.0))
                        })
                    })
                    .collect::<Result<_>>()?;
                let out = self.eval_node(id, &inputs)?;
                values.insert(id, out);
                last = id;
            }
        }
        values
            .remove(&last)
            .ok_or_else(|| ModelError::Unsupported("empty segment".into()))
    }

    /// Computes output rows `rows` of a spatial segment, given the segment's
    /// *full* input — i.e. what one fork-join worker produces for a
    /// height-partition. The worker internally slices the halo it needs.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Unsupported`] if the segment contains an
    /// operation without local spatial response (dense, global pooling,
    /// LSTM), exactly the layers Gillis's grouping rule excludes.
    pub fn run_segment_rows(
        &self,
        layers: &[MergedLayer],
        input: &Tensor,
        rows: Range<usize>,
    ) -> Result<Tensor> {
        let seed = self.segment_seed(layers)?;
        let last = *layers
            .last()
            .and_then(|l| l.nodes.last())
            .ok_or_else(|| ModelError::Unsupported("empty segment".into()))?;
        self.span_of(last, 1, rows, seed, input)
    }

    /// Width-dimension counterpart of [`Executor::run_segment_rows`]:
    /// computes output *columns* `cols` of a spatial segment.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Executor::run_segment_rows`].
    pub fn run_segment_cols(
        &self,
        layers: &[MergedLayer],
        input: &Tensor,
        cols: Range<usize>,
    ) -> Result<Tensor> {
        let seed = self.segment_seed(layers)?;
        let last = *layers
            .last()
            .and_then(|l| l.nodes.last())
            .ok_or_else(|| ModelError::Unsupported("empty segment".into()))?;
        self.span_of(last, 2, cols, seed, input)
    }

    /// Computes output channels `channels` of a segment, given the segment's
    /// full input — the worker-side computation for a channel partition
    /// (Fig 2b): the head layer's filter bank is split, subsequent layers
    /// must be channel-local.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Unsupported`] if the segment head is not
    /// weight-splittable or a downstream layer is not channel-local.
    pub fn run_segment_channels(
        &self,
        layers: &[MergedLayer],
        input: &Tensor,
        channels: Range<usize>,
    ) -> Result<Tensor> {
        let seed = self.segment_seed(layers)?;
        let last = *layers
            .last()
            .and_then(|l| l.nodes.last())
            .ok_or_else(|| ModelError::Unsupported("empty segment".into()))?;
        self.chs_of(last, channels, seed, input)
    }

    /// The node whose output feeds the segment.
    fn segment_seed(&self, layers: &[MergedLayer]) -> Result<NodeId> {
        let first = layers
            .first()
            .and_then(|l| l.nodes.first())
            .ok_or_else(|| ModelError::Unsupported("empty segment".into()))?;
        let node = self.graph.node(*first)?;
        node.inputs.first().copied().ok_or_else(|| {
            ModelError::BadWiring(format!("segment head {} has no input", node.name))
        })
    }

    fn eval_node(&self, id: NodeId, inputs: &[&Tensor]) -> Result<Tensor> {
        let node = self.graph.node(id)?;
        match &node.op {
            LayerOp::Input { .. } => Err(ModelError::Unsupported(
                "input node is seeded, not evaluated".into(),
            )),
            LayerOp::Conv2d {
                kernel,
                stride,
                padding,
                ..
            } => {
                let (w, b) = self.conv_weights(id)?;
                Ok(conv2d(
                    inputs[0],
                    w,
                    Some(b),
                    &Conv2dParams::square(*kernel, *stride, *padding),
                )?)
            }
            LayerOp::DepthwiseConv2d {
                kernel,
                stride,
                padding,
            } => {
                let (w, b) = self.depthwise_weights(id)?;
                Ok(depthwise_conv2d(
                    inputs[0],
                    w,
                    Some(b),
                    &Conv2dParams::square(*kernel, *stride, *padding),
                )?)
            }
            LayerOp::BatchNorm => {
                let params = self.bn_weights(id)?;
                Ok(batch_norm(inputs[0], params)?)
            }
            LayerOp::Relu => Ok(relu(inputs[0])),
            LayerOp::MaxPool2d {
                kernel,
                stride,
                padding,
            } => Ok(max_pool2d(
                inputs[0],
                &Pool2dParams::square(*kernel, *stride, *padding),
            )?),
            LayerOp::AvgPool2d {
                kernel,
                stride,
                padding,
            } => Ok(avg_pool2d(
                inputs[0],
                &Pool2dParams::square(*kernel, *stride, *padding),
            )?),
            LayerOp::GlobalAvgPool => Ok(global_avg_pool(inputs[0])?),
            LayerOp::Flatten => {
                let len = inputs[0].shape().len();
                Ok(inputs[0].clone().reshape(Shape::new(vec![len]))?)
            }
            LayerOp::Dense { .. } => {
                let (w, b) = self.dense_weights(id)?;
                Ok(dense(inputs[0], w, Some(b))?)
            }
            LayerOp::Add => Ok(inputs[0].add(inputs[1])?),
            LayerOp::Concat => Ok(Tensor::concat(inputs, 0)?),
            LayerOp::Lstm { .. } => {
                let params = self.lstm_weights(id)?;
                let seq = inputs[0].shape().dims()[0];
                let feat = inputs[0].shape().dims()[1];
                let steps: Vec<Tensor> = (0..seq)
                    .map(|t| {
                        inputs[0]
                            .slice(0, t..t + 1)
                            .and_then(|s| s.reshape(Shape::new(vec![feat])))
                    })
                    .collect::<std::result::Result<_, _>>()?;
                let (outs, _) = lstm_sequence(&steps, params)?;
                let hidden = params.hidden_size();
                let mut data = Vec::with_capacity(seq * hidden);
                for o in &outs {
                    data.extend_from_slice(o.data());
                }
                Ok(Tensor::from_vec(Shape::new(vec![seq, hidden]), data)?)
            }
            LayerOp::Softmax => Ok(softmax(inputs[0])?),
        }
    }

    /// Demand-driven evaluation of an output span of node `id` along a
    /// spatial dimension (`dim` 1 = height/rows, 2 = width/columns).
    fn span_of(
        &self,
        id: NodeId,
        dim: usize,
        span: Range<usize>,
        seed: NodeId,
        seed_value: &Tensor,
    ) -> Result<Tensor> {
        debug_assert!(dim == 1 || dim == 2, "span dim must be spatial");
        if id == seed {
            return Ok(seed_value.slice(dim, span)?);
        }
        let node = self.graph.node(id)?;
        match &node.op {
            LayerOp::Conv2d {
                kernel,
                stride,
                padding,
                ..
            } => {
                let (input, lo, hi) = self.span_of_window(
                    node.inputs[0],
                    dim,
                    &span,
                    *kernel,
                    *stride,
                    *padding,
                    seed,
                    seed_value,
                )?;
                let (w, b) = self.conv_weights(id)?;
                let params = Conv2dParams {
                    kernel: (*kernel, *kernel),
                    stride: (*stride, *stride),
                    padding: span_padding(dim, lo, hi, *padding),
                };
                Ok(conv2d(&input, w, Some(b), &params)?)
            }
            LayerOp::DepthwiseConv2d {
                kernel,
                stride,
                padding,
            } => {
                let (input, lo, hi) = self.span_of_window(
                    node.inputs[0],
                    dim,
                    &span,
                    *kernel,
                    *stride,
                    *padding,
                    seed,
                    seed_value,
                )?;
                let (w, b) = self.depthwise_weights(id)?;
                let params = Conv2dParams {
                    kernel: (*kernel, *kernel),
                    stride: (*stride, *stride),
                    padding: span_padding(dim, lo, hi, *padding),
                };
                Ok(depthwise_conv2d(&input, w, Some(b), &params)?)
            }
            LayerOp::MaxPool2d {
                kernel,
                stride,
                padding,
            }
            | LayerOp::AvgPool2d {
                kernel,
                stride,
                padding,
            } => {
                let (input, lo, hi) = self.span_of_window(
                    node.inputs[0],
                    dim,
                    &span,
                    *kernel,
                    *stride,
                    *padding,
                    seed,
                    seed_value,
                )?;
                let params = Pool2dParams {
                    kernel: (*kernel, *kernel),
                    stride: (*stride, *stride),
                    padding: span_padding(dim, lo, hi, *padding),
                };
                match node.op {
                    LayerOp::MaxPool2d { .. } => Ok(max_pool2d(&input, &params)?),
                    _ => Ok(avg_pool2d(&input, &params)?),
                }
            }
            LayerOp::BatchNorm => {
                let input = self.span_of(node.inputs[0], dim, span, seed, seed_value)?;
                Ok(batch_norm(&input, self.bn_weights(id)?)?)
            }
            LayerOp::Relu => {
                let input = self.span_of(node.inputs[0], dim, span, seed, seed_value)?;
                Ok(relu(&input))
            }
            LayerOp::Add => {
                let a = self.span_of(node.inputs[0], dim, span.clone(), seed, seed_value)?;
                let b = self.span_of(node.inputs[1], dim, span, seed, seed_value)?;
                Ok(a.add(&b)?)
            }
            LayerOp::Concat => {
                let parts: Vec<Tensor> = node
                    .inputs
                    .iter()
                    .map(|&i| self.span_of(i, dim, span.clone(), seed, seed_value))
                    .collect::<Result<_>>()?;
                Ok(Tensor::concat(&parts, 0)?)
            }
            other => Err(ModelError::Unsupported(format!(
                "spatial-range execution of {other:?} (no local spatial response)"
            ))),
        }
    }

    /// Fetches the input span a windowed op needs for an output span along
    /// `dim`, returning the tensor plus the leading/trailing zero-padding
    /// the partition must apply on that dimension.
    #[allow(clippy::too_many_arguments)]
    fn span_of_window(
        &self,
        input_id: NodeId,
        dim: usize,
        span: &Range<usize>,
        kernel: usize,
        stride: usize,
        padding: usize,
        seed: NodeId,
        seed_value: &Tensor,
    ) -> Result<(Tensor, usize, usize)> {
        let extent = if input_id == seed {
            seed_value.shape().dim(dim)?
        } else {
            self.graph.node(input_id)?.output_shape.dim(dim)?
        };
        let rf = ReceptiveField {
            kernel,
            stride,
            padding,
        };
        let (in_span, lo, hi) = rf.input_rows(span.clone(), extent);
        let input = self.span_of(input_id, dim, in_span, seed, seed_value)?;
        Ok((input, lo, hi))
    }

    /// Demand-driven evaluation of output channels `channels` of node `id`.
    fn chs_of(
        &self,
        id: NodeId,
        channels: Range<usize>,
        seed: NodeId,
        seed_value: &Tensor,
    ) -> Result<Tensor> {
        if id == seed {
            // Channel-local group: the head slices its input channels.
            return Ok(seed_value.slice(0, channels)?);
        }
        let node = self.graph.node(id)?;
        match &node.op {
            LayerOp::Conv2d {
                kernel,
                stride,
                padding,
                ..
            } => {
                // Weight-split head: full input, filter subset.
                let input = self.full_of(node.inputs[0], seed, seed_value)?;
                let (w, b) = self.conv_weights(id)?;
                let w = w.slice(0, channels.clone())?;
                let b = b.slice(0, channels)?;
                Ok(conv2d(
                    &input,
                    &w,
                    Some(&b),
                    &Conv2dParams::square(*kernel, *stride, *padding),
                )?)
            }
            LayerOp::Dense { .. } => {
                let input = self.full_of(node.inputs[0], seed, seed_value)?;
                let (w, b) = self.dense_weights(id)?;
                let w = w.slice(0, channels.clone())?;
                let b = b.slice(0, channels)?;
                Ok(dense(&input, &w, Some(&b))?)
            }
            LayerOp::BatchNorm => {
                let input = self.chs_of(node.inputs[0], channels.clone(), seed, seed_value)?;
                let p = self.bn_weights(id)?;
                let sliced = BatchNormParams {
                    gamma: p.gamma.slice(0, channels.clone())?,
                    beta: p.beta.slice(0, channels.clone())?,
                    mean: p.mean.slice(0, channels.clone())?,
                    var: p.var.slice(0, channels)?,
                    eps: p.eps,
                };
                Ok(batch_norm(&input, &sliced)?)
            }
            LayerOp::Relu => {
                let input = self.chs_of(node.inputs[0], channels, seed, seed_value)?;
                Ok(relu(&input))
            }
            LayerOp::DepthwiseConv2d {
                kernel,
                stride,
                padding,
            } => {
                // Channel-local: slice both the input channels and the
                // per-channel filters.
                let input = self.chs_of(node.inputs[0], channels.clone(), seed, seed_value)?;
                let (w, b) = self.depthwise_weights(id)?;
                let w = w.slice(0, channels.clone())?;
                let b = b.slice(0, channels)?;
                Ok(depthwise_conv2d(
                    &input,
                    &w,
                    Some(&b),
                    &Conv2dParams::square(*kernel, *stride, *padding),
                )?)
            }
            LayerOp::MaxPool2d {
                kernel,
                stride,
                padding,
            } => {
                let input = self.chs_of(node.inputs[0], channels, seed, seed_value)?;
                Ok(max_pool2d(
                    &input,
                    &Pool2dParams::square(*kernel, *stride, *padding),
                )?)
            }
            LayerOp::AvgPool2d {
                kernel,
                stride,
                padding,
            } => {
                let input = self.chs_of(node.inputs[0], channels, seed, seed_value)?;
                Ok(avg_pool2d(
                    &input,
                    &Pool2dParams::square(*kernel, *stride, *padding),
                )?)
            }
            LayerOp::GlobalAvgPool => {
                let input = self.chs_of(node.inputs[0], channels, seed, seed_value)?;
                Ok(global_avg_pool(&input)?)
            }
            LayerOp::Flatten => {
                let input = self.chs_of(node.inputs[0], channels, seed, seed_value)?;
                let len = input.shape().len();
                Ok(input.reshape(Shape::new(vec![len]))?)
            }
            other => Err(ModelError::Unsupported(format!(
                "channel-range execution of {other:?}"
            ))),
        }
    }

    /// Full value of a node — only permitted for the seed and `Flatten`s of
    /// the seed, i.e. the inputs a weight-split head consumes whole.
    fn full_of(&self, id: NodeId, seed: NodeId, seed_value: &Tensor) -> Result<Tensor> {
        if id == seed {
            return Ok(seed_value.clone());
        }
        let node = self.graph.node(id)?;
        match node.op {
            LayerOp::Flatten => {
                let input = self.full_of(node.inputs[0], seed, seed_value)?;
                let len = input.shape().len();
                Ok(input.reshape(Shape::new(vec![len]))?)
            }
            _ => Err(ModelError::Unsupported(
                "channel partition requires the weight-split layer at the group head".into(),
            )),
        }
    }

    fn conv_weights(&self, id: NodeId) -> Result<(&Tensor, &Tensor)> {
        match self.weights.get(id)? {
            NodeWeights::Conv { weight, bias } => Ok((weight, bias)),
            _ => Err(ModelError::BadWeights(format!(
                "node {} expected conv weights",
                id.0
            ))),
        }
    }

    fn depthwise_weights(&self, id: NodeId) -> Result<(&Tensor, &Tensor)> {
        match self.weights.get(id)? {
            NodeWeights::Depthwise { weight, bias } => Ok((weight, bias)),
            _ => Err(ModelError::BadWeights(format!(
                "node {} expected depthwise weights",
                id.0
            ))),
        }
    }

    fn bn_weights(&self, id: NodeId) -> Result<&BatchNormParams> {
        match self.weights.get(id)? {
            NodeWeights::Bn(p) => Ok(p),
            _ => Err(ModelError::BadWeights(format!(
                "node {} expected batch-norm weights",
                id.0
            ))),
        }
    }

    fn dense_weights(&self, id: NodeId) -> Result<(&Tensor, &Tensor)> {
        match self.weights.get(id)? {
            NodeWeights::Dense { weight, bias } => Ok((weight, bias)),
            _ => Err(ModelError::BadWeights(format!(
                "node {} expected dense weights",
                id.0
            ))),
        }
    }

    fn lstm_weights(&self, id: NodeId) -> Result<&gillis_tensor::ops::LstmParams> {
        match self.weights.get(id)? {
            NodeWeights::Lstm(p) => Ok(p),
            _ => Err(ModelError::BadWeights(format!(
                "node {} expected lstm weights",
                id.0
            ))),
        }
    }
}

/// Builds the asymmetric padding for a span partition: the partition pads
/// `lo`/`hi` on the partitioned dimension and keeps the full symmetric
/// padding on the other spatial dimension.
pub(crate) fn span_padding(dim: usize, lo: usize, hi: usize, full: usize) -> Padding {
    if dim == 1 {
        Padding {
            top: lo,
            bottom: hi,
            left: full,
            right: full,
        }
    } else {
        Padding {
            top: full,
            bottom: full,
            left: lo,
            right: hi,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weights::init_weights;
    use crate::zoo;

    fn query(shape: &Shape, seed: u64) -> Tensor {
        let mut x = seed;
        Tensor::from_fn(shape.clone(), |_| {
            // xorshift for a cheap deterministic pattern
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            ((x % 1000) as f32 / 500.0) - 1.0
        })
    }

    #[test]
    fn full_forward_produces_logits() {
        let model = zoo::tiny_vgg();
        let weights = init_weights(model.graph(), 3).unwrap();
        let exec = Executor::new(model.graph(), &weights);
        let input = query(model.input_shape(), 11);
        let out = exec.forward(&model, &input).unwrap();
        assert_eq!(out.shape().dims(), &[10]);
        assert!(out.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn segment_composition_equals_full_forward() {
        let model = zoo::tiny_vgg();
        let weights = init_weights(model.graph(), 5).unwrap();
        let exec = Executor::new(model.graph(), &weights);
        let input = query(model.input_shape(), 4);
        let full = exec.forward(&model, &input).unwrap();
        // Split the merged-layer chain at every point and compose.
        let layers = model.layers();
        for split in 1..layers.len() {
            let mid = exec.run_segment(&layers[..split], &input).unwrap();
            let out = exec.run_segment(&layers[split..], &mid).unwrap();
            assert!(
                full.max_abs_diff(&out).unwrap() < 1e-4,
                "split at {split} diverged"
            );
        }
    }

    #[test]
    fn row_partitioned_segment_equals_full() {
        let model = zoo::tiny_vgg();
        let weights = init_weights(model.graph(), 9).unwrap();
        let exec = Executor::new(model.graph(), &weights);
        let input = query(model.input_shape(), 2);
        // First two merged layers (conv group + pool) are spatial.
        let spatial: Vec<_> = model
            .layers()
            .iter()
            .take_while(|l| l.class.supports_spatial())
            .cloned()
            .collect();
        assert!(spatial.len() >= 2);
        let seg = &spatial[..2];
        let full = exec.run_segment(seg, &input).unwrap();
        let out_h = seg.last().unwrap().out_shape.dims()[1];
        for n in [2usize, 4] {
            let mut parts = Vec::new();
            for p in 0..n {
                let lo = p * out_h / n;
                let hi = (p + 1) * out_h / n;
                parts.push(exec.run_segment_rows(seg, &input, lo..hi).unwrap());
            }
            let stitched = Tensor::concat(&parts, 1).unwrap();
            assert!(
                full.max_abs_diff(&stitched).unwrap() < 1e-4,
                "{n}-way row partition diverged"
            );
        }
    }

    #[test]
    fn row_partitioned_residual_blocks_equal_full() {
        let model = zoo::tiny_resnet();
        let weights = init_weights(model.graph(), 13).unwrap();
        let exec = Executor::new(model.graph(), &weights);
        let input = query(model.input_shape(), 8);
        let spatial: Vec<_> = model
            .layers()
            .iter()
            .take_while(|l| l.class.supports_spatial())
            .cloned()
            .collect();
        // Group three consecutive spatial layers including a residual block.
        let seg = &spatial[1..4];
        let seg_input = exec.run_segment(&spatial[..1], &input).unwrap();
        let full = exec.run_segment(seg, &seg_input).unwrap();
        let out_h = seg.last().unwrap().out_shape.dims()[1];
        let mut parts = Vec::new();
        let n = 4;
        for p in 0..n {
            let lo = p * out_h / n;
            let hi = (p + 1) * out_h / n;
            parts.push(exec.run_segment_rows(seg, &seg_input, lo..hi).unwrap());
        }
        let stitched = Tensor::concat(&parts, 1).unwrap();
        assert!(full.max_abs_diff(&stitched).unwrap() < 1e-3);
    }

    #[test]
    fn col_partitioned_segment_equals_full() {
        // Width partitioning must match height partitioning in rigor: same
        // halo math along dimension 2.
        let model = zoo::tiny_vgg();
        let weights = init_weights(model.graph(), 14).unwrap();
        let exec = Executor::new(model.graph(), &weights);
        let input = query(model.input_shape(), 12);
        let spatial: Vec<_> = model
            .layers()
            .iter()
            .take_while(|l| l.class.supports_spatial())
            .cloned()
            .collect();
        let seg = &spatial[..2];
        let full = exec.run_segment(seg, &input).unwrap();
        let out_w = seg.last().unwrap().out_shape.dims()[2];
        for n in [2usize, 4] {
            let mut parts = Vec::new();
            for p in 0..n {
                let lo = p * out_w / n;
                let hi = (p + 1) * out_w / n;
                parts.push(exec.run_segment_cols(seg, &input, lo..hi).unwrap());
            }
            let stitched = Tensor::concat(&parts, 2).unwrap();
            assert!(
                full.max_abs_diff(&stitched).unwrap() < 1e-4,
                "{n}-way column partition diverged"
            );
        }
    }

    #[test]
    fn channel_partitioned_conv_group_equals_full() {
        let model = zoo::tiny_vgg();
        let weights = init_weights(model.graph(), 21).unwrap();
        let exec = Executor::new(model.graph(), &weights);
        let input = query(model.input_shape(), 5);
        // Head conv merged layer is channel-splittable.
        let seg = &model.layers()[..1];
        assert!(seg[0].class.channel_splittable());
        let full = exec.run_segment(seg, &input).unwrap();
        let out_c = seg[0].out_shape.dims()[0];
        let mut parts = Vec::new();
        for p in 0..2 {
            let lo = p * out_c / 2;
            let hi = (p + 1) * out_c / 2;
            parts.push(exec.run_segment_channels(seg, &input, lo..hi).unwrap());
        }
        let stitched = Tensor::concat(&parts, 0).unwrap();
        assert!(full.max_abs_diff(&stitched).unwrap() < 1e-4);
    }

    #[test]
    fn channel_partitioned_dense_equals_full() {
        let model = zoo::tiny_vgg();
        let weights = init_weights(model.graph(), 22).unwrap();
        let exec = Executor::new(model.graph(), &weights);
        let layers = model.layers();
        // Last merged layer is flatten+fc2 (DenseLike).
        let dense_idx = layers.len() - 1;
        let seg = &layers[dense_idx..];
        let input = exec
            .run_segment(&layers[..dense_idx], &query(model.input_shape(), 6))
            .unwrap();
        let full = exec.run_segment(seg, &input).unwrap();
        let out_n = seg[0].out_shape.dims()[0];
        let parts: Vec<Tensor> = (0..2)
            .map(|p| {
                exec.run_segment_channels(seg, &input, p * out_n / 2..(p + 1) * out_n / 2)
                    .unwrap()
            })
            .collect();
        let stitched = Tensor::concat(&parts, 0).unwrap();
        assert!(full.max_abs_diff(&stitched).unwrap() < 1e-4);
    }

    #[test]
    fn rnn_segment_placement_equals_full() {
        // Split a 3-layer RNN between functions: output must be identical.
        let mut g = Graph::new();
        let input = g
            .add(
                "input",
                LayerOp::Input {
                    shape: Shape::new(vec![4, 8]),
                },
                &[],
            )
            .unwrap();
        let l1 = g
            .add("lstm1", LayerOp::Lstm { hidden: 8 }, &[input])
            .unwrap();
        let l2 = g.add("lstm2", LayerOp::Lstm { hidden: 8 }, &[l1]).unwrap();
        g.add("lstm3", LayerOp::Lstm { hidden: 8 }, &[l2]).unwrap();
        let model = crate::merge::merge_graph("rnn3", g).unwrap();
        let weights = init_weights(model.graph(), 30).unwrap();
        let exec = Executor::new(model.graph(), &weights);
        let input = query(model.input_shape(), 3);
        let full = exec.forward(&model, &input).unwrap();
        let mid = exec.run_segment(&model.layers()[..2], &input).unwrap();
        let out = exec.run_segment(&model.layers()[2..], &mid).unwrap();
        assert!(full.max_abs_diff(&out).unwrap() < 1e-5);
    }

    #[test]
    fn row_range_of_dense_is_unsupported() {
        let model = zoo::tiny_vgg();
        let weights = init_weights(model.graph(), 1).unwrap();
        let exec = Executor::new(model.graph(), &weights);
        let layers = model.layers();
        let dense_seg = &layers[layers.len() - 1..];
        let fake_input = Tensor::zeros(dense_seg[0].in_shape.clone());
        assert!(matches!(
            exec.run_segment_rows(dense_seg, &fake_input, 0..1),
            Err(ModelError::Unsupported(_))
        ));
    }

    #[test]
    fn channel_range_rejects_non_head_conv() {
        let model = zoo::tiny_vgg();
        let weights = init_weights(model.graph(), 1).unwrap();
        let exec = Executor::new(model.graph(), &weights);
        // Segment of two conv merged layers: second conv is not channel-local,
        // so channel partitioning the pair must fail.
        let layers = model.layers();
        let conv_indices: Vec<usize> = layers
            .iter()
            .enumerate()
            .filter(|(_, l)| l.class.channel_splittable() && l.class.supports_spatial())
            .map(|(i, _)| i)
            .collect();
        // tiny-vgg: conv2 (idx 2) and conv3 (idx 3) are adjacent convs.
        let adjacent = conv_indices.windows(2).find(|w| w[1] == w[0] + 1);
        let (a, b) = match adjacent {
            Some(w) => (w[0], w[1]),
            None => panic!("expected adjacent convs in tiny-vgg"),
        };
        let seg = &layers[a..=b];
        let input = Tensor::zeros(seg[0].in_shape.clone());
        assert!(matches!(
            exec.run_segment_channels(seg, &input, 0..4),
            Err(ModelError::Unsupported(_))
        ));
    }
}
