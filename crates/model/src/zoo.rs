//! The benchmark model zoo: every model family the paper evaluates.
//!
//! Builders return merged [`LinearModel`]s ready for partitioning:
//!
//! - VGG-11/16/19 (paper Figs 9, 10, 13, 15)
//! - ResNet-34/50/101 (Fig 10)
//! - Wide ResNet `WRN-{34,50}-{3,4,5}` (Figs 1, 9, 10, 11, 13, 14)
//! - `RNN-k`: stacked LSTM layers with 2K hidden size (Figs 12, 15)
//!
//! Wide ResNet follows §II-B: every convolution's input *and* output channel
//! counts are multiplied by the widening scalar `k`, growing the model
//! quadratically in `k`. The RNN family uses a 4096-dim input embedding
//! feeding 2048-unit LSTM layers, which places the single-function memory
//! cliff at 10+ layers exactly as the paper reports (§V-B: "a single function
//! can only support RNN models with up to 9 layers" under the 1.4 GB budget).
//!
//! Model weights are *not* materialized here — the zoo describes topology and
//! cost. Use [`crate::weights::init_weights`] to generate weights for the
//! small test models.

use gillis_tensor::Shape;

use crate::graph::{Graph, NodeId};
use crate::linear::LinearModel;
use crate::merge::merge_graph;
use crate::op::LayerOp;

/// Standard ImageNet-style input resolution used by the paper's CNNs.
pub const CNN_RESOLUTION: usize = 224;
/// Sequence length used for the RNN family.
pub const RNN_SEQ_LEN: usize = 10;
/// Hidden size of the RNN family ("2K hidden size", §V-A).
pub const RNN_HIDDEN: usize = 2048;
/// Input embedding dimension feeding the first LSTM layer.
pub const RNN_EMBED: usize = 4096;

fn conv(out_channels: usize, kernel: usize, stride: usize, padding: usize) -> LayerOp {
    LayerOp::Conv2d {
        out_channels,
        kernel,
        stride,
        padding,
    }
}

/// Builds a VGG model from its per-stage convolution plan.
/// `None` entries are 2×2/2 max-pool markers.
fn vgg_from_plan(name: &str, plan: &[Option<usize>], resolution: usize) -> LinearModel {
    let mut g = Graph::new();
    let mut cur = g
        .add(
            "input",
            LayerOp::Input {
                shape: Shape::new(vec![3, resolution, resolution]),
            },
            &[],
        )
        .expect("input node");
    let (mut ci, mut pi) = (0, 0);
    for step in plan {
        match step {
            Some(channels) => {
                ci += 1;
                cur = g
                    .add(format!("conv{ci}"), conv(*channels, 3, 1, 1), &[cur])
                    .expect("conv node");
                cur = g
                    .add(format!("relu{ci}"), LayerOp::Relu, &[cur])
                    .expect("relu node");
            }
            None => {
                pi += 1;
                cur = g
                    .add(
                        format!("pool{pi}"),
                        LayerOp::MaxPool2d {
                            kernel: 2,
                            stride: 2,
                            padding: 0,
                        },
                        &[cur],
                    )
                    .expect("pool node");
            }
        }
    }
    cur = g.add("flatten", LayerOp::Flatten, &[cur]).expect("flatten");
    for (i, out) in [4096usize, 4096, 1000].iter().enumerate() {
        cur = g
            .add(
                format!("fc{}", i + 6),
                LayerOp::Dense { out_features: *out },
                &[cur],
            )
            .expect("dense node");
        if i < 2 {
            cur = g
                .add(format!("fc{}_relu", i + 6), LayerOp::Relu, &[cur])
                .expect("relu node");
        }
    }
    merge_graph(name, g).expect("vgg graphs are mergeable")
}

/// VGG-11 ("configuration A").
pub fn vgg11() -> LinearModel {
    let c = |n| Some(n);
    vgg_from_plan(
        "vgg11",
        &[
            c(64),
            None,
            c(128),
            None,
            c(256),
            c(256),
            None,
            c(512),
            c(512),
            None,
            c(512),
            c(512),
            None,
        ],
        CNN_RESOLUTION,
    )
}

/// VGG-16 ("configuration D").
pub fn vgg16() -> LinearModel {
    let c = |n| Some(n);
    vgg_from_plan(
        "vgg16",
        &[
            c(64),
            c(64),
            None,
            c(128),
            c(128),
            None,
            c(256),
            c(256),
            c(256),
            None,
            c(512),
            c(512),
            c(512),
            None,
            c(512),
            c(512),
            c(512),
            None,
        ],
        CNN_RESOLUTION,
    )
}

/// VGG-19 ("configuration E").
pub fn vgg19() -> LinearModel {
    let c = |n| Some(n);
    vgg_from_plan(
        "vgg19",
        &[
            c(64),
            c(64),
            None,
            c(128),
            c(128),
            None,
            c(256),
            c(256),
            c(256),
            c(256),
            None,
            c(512),
            c(512),
            c(512),
            c(512),
            None,
            c(512),
            c(512),
            c(512),
            c(512),
            None,
        ],
        CNN_RESOLUTION,
    )
}

/// Which residual block structure a ResNet uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BlockKind {
    /// Two 3×3 convolutions (ResNet-18/34).
    Basic,
    /// 1×1 reduce, 3×3, 1×1 expand (×4) (ResNet-50/101/152).
    Bottleneck,
}

/// Builds a (wide) ResNet. `width_mult = 1` is the classical model.
fn resnet_impl(
    name: &str,
    kind: BlockKind,
    stage_blocks: [usize; 4],
    width_mult: usize,
    resolution: usize,
) -> LinearModel {
    let mut g = Graph::new();
    let mut cur = g
        .add(
            "input",
            LayerOp::Input {
                shape: Shape::new(vec![3, resolution, resolution]),
            },
            &[],
        )
        .expect("input node");
    let w = |c: usize| c * width_mult;

    // Stem: 7x7/2 conv + BN + ReLU + 3x3/2 max pool.
    cur = g
        .add("stem_conv", conv(w(64), 7, 2, 3), &[cur])
        .expect("stem");
    cur = g
        .add("stem_bn", LayerOp::BatchNorm, &[cur])
        .expect("stem bn");
    cur = g
        .add("stem_relu", LayerOp::Relu, &[cur])
        .expect("stem relu");
    cur = g
        .add(
            "stem_pool",
            LayerOp::MaxPool2d {
                kernel: 3,
                stride: 2,
                padding: 1,
            },
            &[cur],
        )
        .expect("stem pool");

    let expansion = match kind {
        BlockKind::Basic => 1,
        BlockKind::Bottleneck => 4,
    };
    let mut in_channels = w(64);
    for (stage, &blocks) in stage_blocks.iter().enumerate() {
        let base = w(64 << stage);
        let out_channels = base * expansion;
        for block in 0..blocks {
            let stride = if stage > 0 && block == 0 { 2 } else { 1 };
            let tag = format!("s{}b{}", stage + 1, block + 1);
            let branch_input = cur;

            // Main branch.
            let mut b = branch_input;
            match kind {
                BlockKind::Basic => {
                    b = g
                        .add(format!("{tag}_conv1"), conv(base, 3, stride, 1), &[b])
                        .expect("conv1");
                    b = g
                        .add(format!("{tag}_bn1"), LayerOp::BatchNorm, &[b])
                        .expect("bn1");
                    b = g
                        .add(format!("{tag}_relu1"), LayerOp::Relu, &[b])
                        .expect("relu1");
                    b = g
                        .add(format!("{tag}_conv2"), conv(base, 3, 1, 1), &[b])
                        .expect("conv2");
                    b = g
                        .add(format!("{tag}_bn2"), LayerOp::BatchNorm, &[b])
                        .expect("bn2");
                }
                BlockKind::Bottleneck => {
                    b = g
                        .add(format!("{tag}_conv1"), conv(base, 1, 1, 0), &[b])
                        .expect("conv1");
                    b = g
                        .add(format!("{tag}_bn1"), LayerOp::BatchNorm, &[b])
                        .expect("bn1");
                    b = g
                        .add(format!("{tag}_relu1"), LayerOp::Relu, &[b])
                        .expect("relu1");
                    b = g
                        .add(format!("{tag}_conv2"), conv(base, 3, stride, 1), &[b])
                        .expect("conv2");
                    b = g
                        .add(format!("{tag}_bn2"), LayerOp::BatchNorm, &[b])
                        .expect("bn2");
                    b = g
                        .add(format!("{tag}_relu2"), LayerOp::Relu, &[b])
                        .expect("relu2");
                    b = g
                        .add(format!("{tag}_conv3"), conv(out_channels, 1, 1, 0), &[b])
                        .expect("conv3");
                    b = g
                        .add(format!("{tag}_bn3"), LayerOp::BatchNorm, &[b])
                        .expect("bn3");
                }
            }

            // Shortcut: identity, or projection when shape changes.
            let shortcut = if stride != 1 || in_channels != out_channels {
                let sc = g
                    .add(
                        format!("{tag}_sc_conv"),
                        conv(out_channels, 1, stride, 0),
                        &[branch_input],
                    )
                    .expect("shortcut conv");
                g.add(format!("{tag}_sc_bn"), LayerOp::BatchNorm, &[sc])
                    .expect("shortcut bn")
            } else {
                branch_input
            };

            let add = g
                .add(format!("{tag}_add"), LayerOp::Add, &[b, shortcut])
                .expect("add");
            cur = g
                .add(format!("{tag}_relu"), LayerOp::Relu, &[add])
                .expect("block relu");
            in_channels = out_channels;
        }
    }

    cur = g.add("gap", LayerOp::GlobalAvgPool, &[cur]).expect("gap");
    cur = g.add("flatten", LayerOp::Flatten, &[cur]).expect("flatten");
    g.add("fc", LayerOp::Dense { out_features: 1000 }, &[cur])
        .expect("fc");
    merge_graph(name, g).expect("resnet graphs are mergeable")
}

/// ResNet-34.
pub fn resnet34() -> LinearModel {
    resnet_impl(
        "resnet34",
        BlockKind::Basic,
        [3, 4, 6, 3],
        1,
        CNN_RESOLUTION,
    )
}

/// ResNet-50.
pub fn resnet50() -> LinearModel {
    resnet_impl(
        "resnet50",
        BlockKind::Bottleneck,
        [3, 4, 6, 3],
        1,
        CNN_RESOLUTION,
    )
}

/// ResNet-101.
pub fn resnet101() -> LinearModel {
    resnet_impl(
        "resnet101",
        BlockKind::Bottleneck,
        [3, 4, 23, 3],
        1,
        CNN_RESOLUTION,
    )
}

/// Wide ResNet `WRN-34-k`: ResNet-34 with every convolution widened `k`×.
///
/// # Panics
///
/// Panics if `widen == 0`.
pub fn wrn34(widen: usize) -> LinearModel {
    assert!(widen > 0, "widening scalar must be positive");
    resnet_impl(
        &format!("wrn-34-{widen}"),
        BlockKind::Basic,
        [3, 4, 6, 3],
        widen,
        CNN_RESOLUTION,
    )
}

/// Wide ResNet `WRN-50-k`: ResNet-50 with every convolution widened `k`×.
///
/// # Panics
///
/// Panics if `widen == 0`.
pub fn wrn50(widen: usize) -> LinearModel {
    assert!(widen > 0, "widening scalar must be positive");
    resnet_impl(
        &format!("wrn-50-{widen}"),
        BlockKind::Bottleneck,
        [3, 4, 6, 3],
        widen,
        CNN_RESOLUTION,
    )
}

/// `RNN-k`: `k` stacked LSTM layers (hidden 2048) over a 4096-dim embedded
/// sequence of length 10.
///
/// # Panics
///
/// Panics if `layers == 0`.
pub fn rnn(layers: usize) -> LinearModel {
    assert!(layers > 0, "rnn needs at least one layer");
    let mut g = Graph::new();
    let mut cur = g
        .add(
            "input",
            LayerOp::Input {
                shape: Shape::new(vec![RNN_SEQ_LEN, RNN_EMBED]),
            },
            &[],
        )
        .expect("input node");
    for i in 0..layers {
        cur = g
            .add(
                format!("lstm{}", i + 1),
                LayerOp::Lstm { hidden: RNN_HIDDEN },
                &[cur],
            )
            .expect("lstm node");
    }
    merge_graph(format!("rnn-{layers}"), g).expect("rnn graphs are mergeable")
}

/// A small VGG-style CNN over 3×16×16 inputs — used by tests that execute
/// models with real weights.
pub fn tiny_vgg() -> LinearModel {
    let c = |n| Some(n);
    vgg_from_plan("tiny-vgg", &[c(8), None, c(16), c(16), None], 16).rename_fc_for_tiny()
}

/// A small two-stage ResNet over 3×16×16 inputs — used by tests that execute
/// models with real weights.
pub fn tiny_resnet() -> LinearModel {
    resnet_impl("tiny-resnet", BlockKind::Basic, [1, 1, 1, 1], 1, 64)
}

/// MobileNet-V1-style network: a strided stem convolution followed by
/// depthwise-separable blocks (depthwise 3×3 + BN + ReLU, pointwise 1×1 +
/// BN + ReLU), global pooling, and a classifier.
///
/// Not in the paper's benchmark zoo — included because depthwise layers are
/// *channel-local*, giving Gillis channel-partitionable chains
/// (`[pointwise conv, depthwise conv]` groups) that the paper's models
/// lack.
fn mobilenet_impl(name: &str, resolution: usize, width: usize, classes: usize) -> LinearModel {
    let mut g = Graph::new();
    let mut cur = g
        .add(
            "input",
            LayerOp::Input {
                shape: Shape::new(vec![3, resolution, resolution]),
            },
            &[],
        )
        .expect("input");
    cur = g.add("stem", conv(width, 3, 2, 1), &[cur]).expect("stem");
    cur = g.add("stem_bn", LayerOp::BatchNorm, &[cur]).expect("bn");
    cur = g.add("stem_relu", LayerOp::Relu, &[cur]).expect("relu");
    // (out_channels multiplier over `width`, stride) per separable block.
    let blocks: [(usize, usize); 7] = [(2, 1), (4, 2), (4, 1), (8, 2), (8, 1), (16, 2), (16, 1)];
    for (i, (mult, stride)) in blocks.iter().enumerate() {
        let tag = format!("b{}", i + 1);
        cur = g
            .add(
                format!("{tag}_dw"),
                LayerOp::DepthwiseConv2d {
                    kernel: 3,
                    stride: *stride,
                    padding: 1,
                },
                &[cur],
            )
            .expect("dw");
        cur = g
            .add(format!("{tag}_dw_bn"), LayerOp::BatchNorm, &[cur])
            .expect("bn");
        cur = g
            .add(format!("{tag}_dw_relu"), LayerOp::Relu, &[cur])
            .expect("relu");
        cur = g
            .add(format!("{tag}_pw"), conv(width * mult, 1, 1, 0), &[cur])
            .expect("pw");
        cur = g
            .add(format!("{tag}_pw_bn"), LayerOp::BatchNorm, &[cur])
            .expect("bn");
        cur = g
            .add(format!("{tag}_pw_relu"), LayerOp::Relu, &[cur])
            .expect("relu");
    }
    cur = g.add("gap", LayerOp::GlobalAvgPool, &[cur]).expect("gap");
    cur = g.add("flatten", LayerOp::Flatten, &[cur]).expect("flatten");
    g.add(
        "fc",
        LayerOp::Dense {
            out_features: classes,
        },
        &[cur],
    )
    .expect("fc");
    merge_graph(name, g).expect("mobilenet graphs are mergeable")
}

/// A MobileNet-style separable-convolution network at ImageNet resolution.
pub fn mobilenet() -> LinearModel {
    mobilenet_impl("mobilenet", CNN_RESOLUTION, 32, 1000)
}

/// A small MobileNet-style network over 3×32×32 inputs — used by tests that
/// execute depthwise-separable models with real weights.
pub fn tiny_mobilenet() -> LinearModel {
    mobilenet_impl("tiny-mobilenet", 32, 4, 10)
}

/// A small Inception-style CNN over 3×16×16 inputs: two inception modules
/// (parallel 1×1 / 3×3 / 5×5 branches joined by channel concatenation, as in
/// paper Fig 5 left) followed by a classifier. Exercises `Concat` branch
/// merging and its spatial partitioning.
pub fn tiny_inception() -> LinearModel {
    let mut g = Graph::new();
    let mut cur = g
        .add(
            "input",
            LayerOp::Input {
                shape: Shape::new(vec![3, 16, 16]),
            },
            &[],
        )
        .expect("input");
    cur = g.add("stem", conv(8, 3, 1, 1), &[cur]).expect("stem");
    cur = g.add("stem_relu", LayerOp::Relu, &[cur]).expect("relu");
    for m in 0..2 {
        let tag = format!("inc{}", m + 1);
        let b1 = g
            .add(format!("{tag}_b1_conv"), conv(4, 1, 1, 0), &[cur])
            .expect("1x1 branch");
        let b1 = g
            .add(format!("{tag}_b1_relu"), LayerOp::Relu, &[b1])
            .expect("relu");
        let b3 = g
            .add(format!("{tag}_b3_conv"), conv(6, 3, 1, 1), &[cur])
            .expect("3x3 branch");
        let b3 = g
            .add(format!("{tag}_b3_relu"), LayerOp::Relu, &[b3])
            .expect("relu");
        let b5 = g
            .add(format!("{tag}_b5_conv"), conv(2, 5, 1, 2), &[cur])
            .expect("5x5 branch");
        let b5 = g
            .add(format!("{tag}_b5_relu"), LayerOp::Relu, &[b5])
            .expect("relu");
        cur = g
            .add(format!("{tag}_concat"), LayerOp::Concat, &[b1, b3, b5])
            .expect("concat join");
    }
    cur = g
        .add(
            "pool",
            LayerOp::MaxPool2d {
                kernel: 2,
                stride: 2,
                padding: 0,
            },
            &[cur],
        )
        .expect("pool");
    cur = g.add("gap", LayerOp::GlobalAvgPool, &[cur]).expect("gap");
    cur = g.add("flatten", LayerOp::Flatten, &[cur]).expect("flatten");
    g.add("fc", LayerOp::Dense { out_features: 10 }, &[cur])
        .expect("fc");
    merge_graph("tiny-inception", g).expect("inception graphs are mergeable")
}

impl LinearModel {
    /// Replaces the tiny-VGG classifier head (4096-wide FC layers are
    /// enormous relative to a 16×16 model) with a compact one.
    fn rename_fc_for_tiny(self) -> LinearModel {
        // Rebuild with small dense layers instead of the ImageNet head.
        let mut g = Graph::new();
        let mut cur = g
            .add(
                "input",
                LayerOp::Input {
                    shape: Shape::new(vec![3, 16, 16]),
                },
                &[],
            )
            .expect("input");
        cur = g.add("conv1", conv(8, 3, 1, 1), &[cur]).expect("conv");
        cur = g.add("relu1", LayerOp::Relu, &[cur]).expect("relu");
        cur = g
            .add(
                "pool1",
                LayerOp::MaxPool2d {
                    kernel: 2,
                    stride: 2,
                    padding: 0,
                },
                &[cur],
            )
            .expect("pool");
        cur = g.add("conv2", conv(16, 3, 1, 1), &[cur]).expect("conv");
        cur = g.add("relu2", LayerOp::Relu, &[cur]).expect("relu");
        cur = g.add("conv3", conv(16, 3, 1, 1), &[cur]).expect("conv");
        cur = g.add("relu3", LayerOp::Relu, &[cur]).expect("relu");
        cur = g
            .add(
                "pool2",
                LayerOp::MaxPool2d {
                    kernel: 2,
                    stride: 2,
                    padding: 0,
                },
                &[cur],
            )
            .expect("pool");
        cur = g.add("flatten", LayerOp::Flatten, &[cur]).expect("flatten");
        cur = g
            .add("fc1", LayerOp::Dense { out_features: 32 }, &[cur])
            .expect("fc1");
        cur = g.add("fc1_relu", LayerOp::Relu, &[cur]).expect("relu");
        g.add("fc2", LayerOp::Dense { out_features: 10 }, &[cur])
            .expect("fc2");
        crate::merge::merge_graph("tiny-vgg", g).expect("tiny vgg merges")
    }
}

/// Returns the node id of the graph input — convenience for executors.
pub fn input_node(model: &LinearModel) -> NodeId {
    model.graph().nodes()[0].id
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LayerClass;

    const MB: f64 = 1024.0 * 1024.0;

    fn weight_mb(m: &LinearModel) -> f64 {
        m.weight_bytes() as f64 / MB
    }

    #[test]
    fn vgg_parameter_counts_match_literature() {
        // Known totals: VGG-11 ~132.9M, VGG-16 ~138.4M, VGG-19 ~143.7M.
        let v11 = vgg11().graph().total_params() as f64 / 1e6;
        let v16 = vgg16().graph().total_params() as f64 / 1e6;
        let v19 = vgg19().graph().total_params() as f64 / 1e6;
        assert!((v11 - 132.9).abs() < 1.0, "vgg11 params {v11}M");
        assert!((v16 - 138.4).abs() < 1.0, "vgg16 params {v16}M");
        assert!((v19 - 143.7).abs() < 1.0, "vgg19 params {v19}M");
    }

    #[test]
    fn resnet_parameter_counts_match_literature() {
        let r34 = resnet34().graph().total_params() as f64 / 1e6;
        let r50 = resnet50().graph().total_params() as f64 / 1e6;
        let r101 = resnet101().graph().total_params() as f64 / 1e6;
        assert!((r34 - 21.8).abs() < 0.5, "resnet34 params {r34}M");
        assert!((r50 - 25.6).abs() < 1.0, "resnet50 params {r50}M");
        assert!((r101 - 44.5).abs() < 1.5, "resnet101 params {r101}M");
    }

    #[test]
    fn wrn_grows_quadratically() {
        let base = resnet50().graph().total_params() as f64;
        let w3 = wrn50(3).graph().total_params() as f64;
        let w5 = wrn50(5).graph().total_params() as f64;
        // Conv-dominated: ratios close to k^2.
        assert!(w3 / base > 7.5 && w3 / base < 9.5, "ratio {}", w3 / base);
        assert!(w5 / base > 20.0 && w5 / base < 26.0, "ratio {}", w5 / base);
    }

    /// The paper's model-memory budget: 1.4 GB (decimal), §V-A.
    const BUDGET_MB: f64 = 1.4e9 / MB;

    #[test]
    fn memory_cliffs_match_paper_claims() {
        let m = BUDGET_MB;
        // Fits in a single Lambda function (paper Fig 9).
        assert!(weight_mb(&vgg19()) < m);
        assert!(weight_mb(&wrn34(4)) < m, "{}", weight_mb(&wrn34(4)));
        assert!(weight_mb(&wrn50(3)) < m, "{}", weight_mb(&wrn50(3)));
        // Too large for a single function (paper Fig 11).
        assert!(weight_mb(&wrn34(5)) > m);
        assert!(weight_mb(&wrn50(4)) > m);
        assert!(weight_mb(&wrn50(5)) > m);
    }

    #[test]
    fn rnn_cliff_is_at_nine_layers() {
        // Paper §V-B: a single function supports RNNs up to 9 layers.
        let m = BUDGET_MB;
        assert!(weight_mb(&rnn(9)) < m, "{}", weight_mb(&rnn(9)));
        assert!(weight_mb(&rnn(10)) > m, "{}", weight_mb(&rnn(10)));
    }

    #[test]
    fn rnn_layers_are_recurrent_merged_layers() {
        let model = rnn(4);
        assert_eq!(model.layers().len(), 4);
        assert!(model
            .layers()
            .iter()
            .all(|l| l.class == LayerClass::Recurrent));
    }

    #[test]
    fn resnet_merges_blocks_into_single_layers() {
        let model = resnet34();
        // stem conv, stem pool, 16 blocks, gap, fc = 20 merged layers.
        assert_eq!(model.layers().len(), 20);
        let spatial = model
            .layers()
            .iter()
            .filter(|l| l.class.supports_spatial())
            .count();
        assert_eq!(spatial, 18); // everything except gap + fc
    }

    #[test]
    fn vgg_merges_to_expected_layer_count() {
        // VGG-11: 8 conv layers + 5 pools + 3 fc = 16 merged layers.
        assert_eq!(vgg11().layers().len(), 16);
        // VGG-16: 13 conv + 5 pools + 3 fc = 21.
        assert_eq!(vgg16().layers().len(), 21);
        // VGG-19: 16 conv + 5 pools + 3 fc = 24.
        assert_eq!(vgg19().layers().len(), 24);
    }

    #[test]
    fn vgg_shapes_flow_to_classifier() {
        let model = vgg16();
        let last_spatial = model
            .layers()
            .iter()
            .rev()
            .find(|l| l.class.supports_spatial())
            .unwrap();
        assert_eq!(last_spatial.out_shape.dims(), &[512, 7, 7]);
        assert_eq!(model.layers().last().unwrap().out_shape.dims(), &[1000]);
    }

    #[test]
    fn tiny_models_are_small_and_mergeable() {
        let v = tiny_vgg();
        assert!(v.weight_bytes() < 2 * 1024 * 1024);
        assert_eq!(v.input_shape().dims(), &[3, 16, 16]);
        let r = tiny_resnet();
        assert!(r.weight_bytes() < 60 * 1024 * 1024);
        assert_eq!(r.layers().last().unwrap().out_shape.dims(), &[1000]);
    }

    #[test]
    #[should_panic(expected = "widening scalar")]
    fn zero_widening_panics() {
        let _ = wrn50(0);
    }

    #[test]
    fn mobilenet_depthwise_layers_are_channel_local_and_spatial() {
        let model = mobilenet();
        // stem + 7 x (dw, pw) + gap + fc = 17 merged layers.
        assert_eq!(model.layers().len(), 17);
        let dw_layers: Vec<_> = model
            .layers()
            .iter()
            .filter(|l| l.name.ends_with("_dw"))
            .collect();
        assert_eq!(dw_layers.len(), 7);
        for l in &dw_layers {
            assert!(l.class.supports_spatial(), "{} not spatial", l.name);
            assert!(l.class.channel_local(), "{} not channel-local", l.name);
            assert!(!l.class.channel_splittable());
        }
        // Pointwise layers are classic single-conv heads.
        let pw = model
            .layers()
            .iter()
            .find(|l| l.name.ends_with("_pw"))
            .unwrap();
        assert!(pw.class.channel_splittable());
        // MobileNet is small: ~a few million parameters.
        let params = model.graph().total_params() as f64 / 1e6;
        assert!(params > 0.5 && params < 10.0, "{params}M params");
    }

    #[test]
    fn tiny_inception_merges_modules() {
        let model = tiny_inception();
        // stem, 2 inception modules, pool, gap, fc = 6 merged layers.
        assert_eq!(model.layers().len(), 6);
        let inc = &model.layers()[1];
        // 3 branches x (conv + relu) + concat = 7 nodes.
        assert_eq!(inc.nodes.len(), 7);
        match inc.class {
            LayerClass::ConvLike {
                rf,
                channel_splittable,
                channel_local,
            } => {
                // Widest branch: 5x5 stride-1 pad-2.
                assert_eq!(rf.kernel, 5);
                assert_eq!(rf.stride, 1);
                assert_eq!(rf.padding, 2);
                // Multi-conv modules are not channel-splittable.
                assert!(!channel_splittable);
                assert!(!channel_local);
            }
            other => panic!("expected ConvLike inception module, got {other:?}"),
        }
        // Concat sums branch channels: 4 + 6 + 2 = 12.
        assert_eq!(inc.out_shape.dims(), &[12, 16, 16]);
    }
}
