//! The compute graph: a DAG of layer operations built in topological order.

use serde::{Deserialize, Serialize};

use gillis_tensor::Shape;

use crate::error::ModelError;
use crate::op::LayerOp;
use crate::Result;

/// Identifier of a node within a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub usize);

/// A node: an operation plus the ids of its inputs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// Node id (equals its index in the graph).
    pub id: NodeId,
    /// Human-readable name, e.g. `conv1_1`.
    pub name: String,
    /// The operation.
    pub op: LayerOp,
    /// Input node ids (construction order guarantees these precede `id`).
    pub inputs: Vec<NodeId>,
    /// Inferred output shape.
    pub output_shape: Shape,
}

/// A DNN compute graph.
///
/// Nodes are added in topological order (an input may only reference earlier
/// nodes), so node index order *is* a valid evaluation order. The graph is
/// single-output: the last node added is the model output.
///
/// # Examples
///
/// ```
/// use gillis_model::{Graph, LayerOp};
/// use gillis_tensor::Shape;
///
/// # fn main() -> Result<(), gillis_model::ModelError> {
/// let mut g = Graph::new();
/// let input = g.add("input", LayerOp::Input { shape: Shape::new(vec![3, 32, 32]) }, &[])?;
/// let conv = g.add(
///     "conv1",
///     LayerOp::Conv2d { out_channels: 8, kernel: 3, stride: 1, padding: 1 },
///     &[input],
/// )?;
/// assert_eq!(g.node(conv)?.output_shape.dims(), &[8, 32, 32]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Graph {
    nodes: Vec<Node>,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Adds a node, inferring its output shape, and returns its id.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownNode`] if an input id is out of range and
    /// [`ModelError::BadWiring`] if shape inference fails.
    pub fn add(
        &mut self,
        name: impl Into<String>,
        op: LayerOp,
        inputs: &[NodeId],
    ) -> Result<NodeId> {
        let id = NodeId(self.nodes.len());
        let mut in_shapes = Vec::with_capacity(inputs.len());
        for &i in inputs {
            if i.0 >= self.nodes.len() {
                return Err(ModelError::UnknownNode(i.0));
            }
            in_shapes.push(&self.nodes[i.0].output_shape);
        }
        let output_shape = op.infer_shape(&in_shapes)?;
        self.nodes.push(Node {
            id,
            name: name.into(),
            op,
            inputs: inputs.to_vec(),
            output_shape,
        });
        Ok(id)
    }

    /// The nodes in topological (construction) order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Looks up a node by id.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownNode`] for an out-of-range id.
    pub fn node(&self, id: NodeId) -> Result<&Node> {
        self.nodes.get(id.0).ok_or(ModelError::UnknownNode(id.0))
    }

    /// The output node (last added).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::BadWiring`] for an empty graph.
    pub fn output(&self) -> Result<&Node> {
        self.nodes
            .last()
            .ok_or_else(|| ModelError::BadWiring("empty graph".into()))
    }

    /// Ids of nodes that consume `id`'s output.
    pub fn consumers(&self, id: NodeId) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| n.inputs.contains(&id))
            .map(|n| n.id)
            .collect()
    }

    /// Total forward-pass FLOPs of the graph.
    pub fn total_flops(&self) -> u64 {
        self.nodes
            .iter()
            .map(|n| {
                let in_shapes: Vec<&Shape> = n
                    .inputs
                    .iter()
                    .map(|&i| &self.nodes[i.0].output_shape)
                    .collect();
                n.op.flops(&in_shapes, &n.output_shape)
            })
            .sum()
    }

    /// Total trainable parameters of the graph.
    pub fn total_params(&self) -> u64 {
        self.nodes
            .iter()
            .map(|n| {
                let in_shapes: Vec<&Shape> = n
                    .inputs
                    .iter()
                    .map(|&i| &self.nodes[i.0].output_shape)
                    .collect();
                n.op.param_count(&in_shapes, &n.output_shape)
            })
            .sum()
    }

    /// Input shapes of a node (borrowed from the producing nodes).
    pub(crate) fn input_shapes(&self, node: &Node) -> Vec<&Shape> {
        node.inputs
            .iter()
            .map(|&i| &self.nodes[i.0].output_shape)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_graph() -> (Graph, NodeId, NodeId, NodeId) {
        let mut g = Graph::new();
        let input = g
            .add(
                "input",
                LayerOp::Input {
                    shape: Shape::new(vec![3, 8, 8]),
                },
                &[],
            )
            .unwrap();
        let conv = g
            .add(
                "conv",
                LayerOp::Conv2d {
                    out_channels: 4,
                    kernel: 3,
                    stride: 1,
                    padding: 1,
                },
                &[input],
            )
            .unwrap();
        let relu = g.add("relu", LayerOp::Relu, &[conv]).unwrap();
        (g, input, conv, relu)
    }

    #[test]
    fn construction_infers_shapes() {
        let (g, _, conv, relu) = tiny_graph();
        assert_eq!(g.node(conv).unwrap().output_shape.dims(), &[4, 8, 8]);
        assert_eq!(g.node(relu).unwrap().output_shape.dims(), &[4, 8, 8]);
        assert_eq!(g.output().unwrap().id, relu);
    }

    #[test]
    fn unknown_input_is_rejected() {
        let mut g = Graph::new();
        let err = g.add("bad", LayerOp::Relu, &[NodeId(7)]);
        assert!(matches!(err, Err(ModelError::UnknownNode(7))));
    }

    #[test]
    fn consumers_are_tracked() {
        let (g, input, conv, _) = tiny_graph();
        assert_eq!(g.consumers(input), vec![conv]);
        assert_eq!(g.consumers(conv).len(), 1);
    }

    #[test]
    fn totals_accumulate_over_nodes() {
        let (g, ..) = tiny_graph();
        // conv params: 4 * 3 * 3 * 3 + 4 = 112
        assert_eq!(g.total_params(), 112);
        // conv flops + relu flops
        let conv_flops = 2 * (4 * 8 * 8) * 3 * 3 * 3;
        assert_eq!(g.total_flops(), conv_flops + 4 * 8 * 8);
    }

    #[test]
    fn empty_graph_has_no_output() {
        let g = Graph::new();
        assert!(g.output().is_err());
        assert!(g.node(NodeId(0)).is_err());
    }
}
