//! Deployment-time compiled execution: pre-sliced weights, packed GEMM
//! panels, and preallocated intermediate buffers.
//!
//! The reference [`Executor`](crate::exec::Executor) re-derives everything on
//! every query: it slices weight subsets for channel partitions, recomputes
//! halo spans for spatial partitions, and allocates a fresh tensor per layer.
//! None of that work depends on the query — only on the `(plan, model)` pair,
//! which is fixed at deployment time. This module hoists all of it into a
//! one-time compile step:
//!
//! - [`CompiledSegment`] — one fork-join piece of one layer group, lowered to
//!   a flat list of steps with precomputed shapes, asymmetric paddings,
//!   folded batch-norm constants, pre-sliced weight subsets, and packed
//!   convolution panels. Running a step writes into a buffer allocated at
//!   compile time, so the warm path performs no heap allocation.
//! - [`CompiledPartition`] — all pieces of one group plus the join geometry
//!   (concat axis, per-piece extents) needed to gather piece outputs into a
//!   caller-owned buffer in exactly [`Tensor::concat`]'s memory order.
//! - [`PanelCache`] — shares packed conv panels between pieces: spatial
//!   pieces of the same group use the *full* filter bank and therefore the
//!   same panel; channel pieces pack their filter subset once.
//!
//! Compilation is deliberately restricted to single-input layer chains (the
//! shape of every VGG-style benchmark model). Graphs with `Add`, `Concat`,
//! or `Lstm` nodes fail to compile with [`ModelError::Unsupported`]; callers
//! fall back to the uncompiled executor, which supports everything.
//!
//! Every compiled fast path is bit-identical to the reference executor: the
//! packed GEMM kernel preserves the accumulation order of the unpacked one,
//! batch-norm folding uses the executor's exact expressions, and gathers
//! copy in [`Tensor::concat`]'s loop order. Property tests at the bottom of
//! this module (and in `gillis-core`) compare outputs with `f32::to_bits`.

use std::collections::HashMap;
use std::ops::Range;
use std::sync::Arc;

use gillis_tensor::gemm::PackedA;
use gillis_tensor::ops::{
    avg_pool2d_into, batch_norm_fold, batch_norm_folded_into, conv2d_output_hw,
    conv2d_packed_batched_into, conv2d_packed_into, conv2d_quantized_into, dense_into,
    dense_multi_into, depthwise_conv2d_batched_into, depthwise_conv2d_into, global_avg_pool_into,
    max_pool2d_into, relu_into, softmax_into, BatchNormParams, Conv2dParams, Pool2dParams,
};
use gillis_tensor::quant::{self, QuantizedMatrix};
use gillis_tensor::{Shape, Tensor};

use crate::error::ModelError;
use crate::exec::span_padding;
use crate::graph::{Graph, NodeId};
use crate::linear::{MergedLayer, ReceptiveField};
use crate::op::LayerOp;
use crate::weights::{ModelWeights, NodeWeights};
use crate::Result;

/// What slice of a layer group's output one compiled piece computes.
///
/// Mirrors the reference executor's entry points: `Full` ↔ `run_segment`,
/// `Rows` ↔ `run_segment_rows`, `Cols` ↔ `run_segment_cols`, `Channels` ↔
/// `run_segment_channels`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PieceSpec {
    /// The whole group output (an unpartitioned group).
    Full,
    /// Output rows (height dimension) of a spatial partition.
    Rows(Range<usize>),
    /// Output columns (width dimension) of a spatial partition.
    Cols(Range<usize>),
    /// Output channels of a weight-split or channel-local partition.
    Channels(Range<usize>),
}

/// Cache of packed convolution weight panels, keyed by conv node and filter
/// subset (`None` = the full filter bank).
///
/// Spatial pieces of the same group all convolve with the full filter bank,
/// so they share one panel; channel pieces pack their row subset once and
/// reuse it across recompiles (e.g. several plans over one model).
/// Panel-cache key: conv node plus optional filter-row subset.
type PanelKey = (NodeId, Option<(usize, usize)>);

#[derive(Debug, Default)]
pub struct PanelCache {
    panels: HashMap<PanelKey, Arc<PackedA>>,
    /// int8 per-channel weight panels (conv filter banks and dense weight
    /// matrices), quantized once at deployment compile time.
    qpanels: HashMap<PanelKey, Arc<QuantizedMatrix>>,
}

impl PanelCache {
    /// An empty cache.
    pub fn new() -> Self {
        PanelCache::default()
    }

    fn key(id: NodeId, channels: Option<&Range<usize>>) -> PanelKey {
        (id, channels.map(|r| (r.start, r.end)))
    }

    fn lookup(&self, id: NodeId, channels: Option<&Range<usize>>) -> Option<Arc<PackedA>> {
        self.panels.get(&Self::key(id, channels)).map(Arc::clone)
    }

    fn insert(
        &mut self,
        id: NodeId,
        channels: Option<&Range<usize>>,
        panel: PackedA,
    ) -> Arc<PackedA> {
        let panel = Arc::new(panel);
        self.panels
            .insert(Self::key(id, channels), Arc::clone(&panel));
        panel
    }

    fn lookup_q(
        &self,
        id: NodeId,
        channels: Option<&Range<usize>>,
    ) -> Option<Arc<QuantizedMatrix>> {
        self.qpanels.get(&Self::key(id, channels)).map(Arc::clone)
    }

    fn insert_q(
        &mut self,
        id: NodeId,
        channels: Option<&Range<usize>>,
        panel: QuantizedMatrix,
    ) -> Arc<QuantizedMatrix> {
        let panel = Arc::new(panel);
        self.qpanels
            .insert(Self::key(id, channels), Arc::clone(&panel));
        panel
    }

    /// Number of distinct panels held (packed f32 plus quantized).
    pub fn len(&self) -> usize {
        self.panels.len() + self.qpanels.len()
    }

    /// Whether the cache holds no panels.
    pub fn is_empty(&self) -> bool {
        self.panels.is_empty() && self.qpanels.is_empty()
    }

    /// Total bytes of packed panel data (for capacity reporting).
    pub fn bytes(&self) -> usize {
        self.panels.values().map(|p| p.bytes()).sum::<usize>()
            + self.qpanels.values().map(|p| p.bytes()).sum::<usize>()
    }
}

/// Deployment-time compilation options.
///
/// The default compiles the f32 fast path (bit-identical to the reference
/// executor). Quantized options trade bounded accuracy for ~4× smaller
/// weights and transfer payloads — see `gillis_tensor::quant` for the error
/// bounds and DESIGN.md §12 for when the planner sees the smaller bytes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompileOptions {
    /// Quantize conv filter banks and dense weight matrices to int8 with
    /// per-output-channel scales at compile time; kernels accumulate in
    /// exact i32.
    pub quantize_weights: bool,
    /// Simulate the int8 wire format on partitioned joins: each worker
    /// piece's output takes a quantize→dequantize round trip into the
    /// existing join-buffer slot (no extra buffers on the warm path).
    pub wire_int8: bool,
}

impl CompileOptions {
    /// Full int8 deployment: quantized weights and quantized transfers.
    pub fn int8() -> Self {
        CompileOptions {
            quantize_weights: true,
            wire_int8: true,
        }
    }
}

/// Weights a step either resolves from the live weight map (full subsets —
/// no copy, no allocation) or owns outright (channel-sliced subsets,
/// materialized once at compile time).
#[derive(Debug)]
enum StepWeights {
    /// Resolve the node's full weights from `ModelWeights` at run time.
    Node(NodeId),
    /// Pre-sliced weight/bias pair owned by the step.
    Owned { weight: Tensor, bias: Tensor },
}

/// One lowered operation with every parameter pre-resolved.
#[derive(Debug)]
enum StepKind {
    /// Copy `range` of the segment input along a dimension with the given
    /// slice geometry (the seed slice of a partitioned piece).
    SliceInput {
        outer: usize,
        size: usize,
        inner: usize,
        range: Range<usize>,
    },
    /// Verbatim copy of the input (flatten-only chains).
    Copy,
    Conv {
        packed: Arc<PackedA>,
        bias: Vec<f32>,
        params: Conv2dParams,
        in_c: usize,
        in_h: usize,
        in_w: usize,
        out_hw: (usize, usize),
    },
    /// Conv with an int8 per-channel quantized filter bank.
    QConv {
        q: Arc<QuantizedMatrix>,
        bias: Vec<f32>,
        params: Conv2dParams,
        in_c: usize,
        in_h: usize,
        in_w: usize,
        out_hw: (usize, usize),
    },
    Depthwise {
        weights: StepWeights,
        params: Conv2dParams,
        c: usize,
        in_h: usize,
        in_w: usize,
        out_hw: (usize, usize),
    },
    /// Batch norm folded to `y = x·scale + shift` at compile time.
    Bn {
        scale: Vec<f32>,
        shift: Vec<f32>,
        plane: usize,
    },
    Relu,
    Pool {
        params: Pool2dParams,
        is_max: bool,
        c: usize,
        in_hw: (usize, usize),
        out_hw: (usize, usize),
    },
    GlobalAvgPool {
        c: usize,
        plane: usize,
    },
    Dense {
        weights: StepWeights,
    },
    /// Dense with an int8 per-channel quantized weight matrix.
    QDense {
        q: Arc<QuantizedMatrix>,
        bias: Vec<f32>,
    },
    Softmax,
}

/// A lowered op plus its preallocated output buffer.
#[derive(Debug)]
struct Step {
    kind: StepKind,
    buf: Vec<f32>,
    /// Widened output for batched runs (`n × buf.len()`, item-major). Empty
    /// until the first batched run; capacity grows monotonically, so batches
    /// up to the largest `n` seen (or declared via `reserve_batch`) execute
    /// allocation-free.
    batch_buf: Vec<f32>,
}

impl Step {
    fn new(kind: StepKind, out_len: usize) -> Self {
        Step {
            kind,
            buf: vec![0.0; out_len],
            batch_buf: Vec::new(),
        }
    }
}

fn resolve_depthwise<'a>(
    weights: &'a StepWeights,
    map: &'a ModelWeights,
) -> Result<(&'a [f32], &'a [f32])> {
    match weights {
        StepWeights::Owned { weight, bias } => Ok((weight.data(), bias.data())),
        StepWeights::Node(id) => match map.get(*id)? {
            NodeWeights::Depthwise { weight, bias } => Ok((weight.data(), bias.data())),
            _ => Err(ModelError::BadWeights(format!(
                "node {} expected depthwise weights",
                id.0
            ))),
        },
    }
}

fn resolve_dense<'a>(
    weights: &'a StepWeights,
    map: &'a ModelWeights,
) -> Result<(&'a [f32], &'a [f32])> {
    match weights {
        StepWeights::Owned { weight, bias } => Ok((weight.data(), bias.data())),
        StepWeights::Node(id) => match map.get(*id)? {
            NodeWeights::Dense { weight, bias } => Ok((weight.data(), bias.data())),
            _ => Err(ModelError::BadWeights(format!(
                "node {} expected dense weights",
                id.0
            ))),
        },
    }
}

/// Executes one lowered op from `input` into `out`. On the warm path every
/// arm is allocation-free: buffers are caller-owned, kernel temporaries come
/// from the per-thread scratch arena, and weight lookups borrow.
fn exec_step(kind: &StepKind, map: &ModelWeights, input: &[f32], out: &mut [f32]) -> Result<()> {
    match kind {
        StepKind::SliceInput {
            outer,
            size,
            inner,
            range,
        } => {
            let rlen = range.len() * inner;
            for o in 0..*outer {
                let src = o * size * inner + range.start * inner;
                out[o * rlen..(o + 1) * rlen].copy_from_slice(&input[src..src + rlen]);
            }
        }
        StepKind::Copy => out.copy_from_slice(input),
        StepKind::Conv {
            packed,
            bias,
            params,
            in_c,
            in_h,
            in_w,
            out_hw,
        } => conv2d_packed_into(
            input, *in_c, *in_h, *in_w, packed, bias, params, *out_hw, out,
        ),
        StepKind::QConv {
            q,
            bias,
            params,
            in_c,
            in_h,
            in_w,
            out_hw,
        } => conv2d_quantized_into(input, *in_c, *in_h, *in_w, q, bias, params, *out_hw, out),
        StepKind::Depthwise {
            weights,
            params,
            c,
            in_h,
            in_w,
            out_hw,
        } => {
            let (w, b) = resolve_depthwise(weights, map)?;
            depthwise_conv2d_into(input, *c, *in_h, *in_w, w, Some(b), params, *out_hw, out);
        }
        StepKind::Bn {
            scale,
            shift,
            plane,
        } => batch_norm_folded_into(input, *plane, scale, shift, out),
        StepKind::Relu => relu_into(input, out),
        StepKind::Pool {
            params,
            is_max,
            c,
            in_hw,
            out_hw,
        } => {
            if *is_max {
                max_pool2d_into(input, *c, *in_hw, *out_hw, params, out);
            } else {
                avg_pool2d_into(input, *c, *in_hw, *out_hw, params, out);
            }
        }
        StepKind::GlobalAvgPool { c, plane } => global_avg_pool_into(input, *c, *plane, out),
        StepKind::Dense { weights } => {
            let (w, b) = resolve_dense(weights, map)?;
            dense_into(w, input, Some(b), out);
        }
        StepKind::QDense { q, bias } => {
            out.copy_from_slice(bias);
            quant::qgemv(q, input, out);
        }
        StepKind::Softmax => softmax_into(input, out),
    }
    Ok(())
}

/// Executes one lowered op for a batch of `n` item-major activations.
///
/// Conv, dense, and depthwise steps dispatch to their widened-B batched
/// kernels so the whole batch shares one traversal of the (packed) weights;
/// every other step — including the int8 quantized ops, whose per-payload
/// activation scales must be computed per item — loops the exact per-query
/// [`exec_step`] body over the item slices. Either way the per-item output
/// is bit-identical to running [`exec_step`] once per item (the batched
/// kernels' bit-identity is proptest-enforced in `gillis-tensor`).
fn exec_step_batched(
    kind: &StepKind,
    map: &ModelWeights,
    n: usize,
    input: &[f32],
    out: &mut [f32],
) -> Result<()> {
    match kind {
        StepKind::Conv {
            packed,
            bias,
            params,
            in_c,
            in_h,
            in_w,
            out_hw,
        } => conv2d_packed_batched_into(
            input, n, *in_c, *in_h, *in_w, packed, bias, params, *out_hw, out,
        ),
        StepKind::Dense { weights } => {
            let (w, b) = resolve_dense(weights, map)?;
            dense_multi_into(w, input, Some(b), out, n);
        }
        StepKind::Depthwise {
            weights,
            params,
            c,
            in_h,
            in_w,
            out_hw,
        } => {
            let (w, b) = resolve_depthwise(weights, map)?;
            depthwise_conv2d_batched_into(
                input,
                n,
                *c,
                *in_h,
                *in_w,
                w,
                Some(b),
                params,
                *out_hw,
                out,
            );
        }
        _ => {
            let in_len = input.len() / n;
            let out_len = out.len() / n;
            for (x, y) in input
                .chunks_exact(in_len)
                .zip(out.chunks_exact_mut(out_len))
            {
                exec_step(kind, map, x, y)?;
            }
        }
    }
    Ok(())
}

/// One fork-join piece of one layer group, compiled to a step list with
/// preallocated buffers.
///
/// Compile once per `(plan, model)`; run once per query. The run is
/// bit-identical to the corresponding reference-executor entry point and,
/// once buffers and per-thread scratch are warm, allocation-free.
///
/// `run` must be called with the same weights the segment was compiled
/// against: packed panels, folded batch-norm constants, and channel slices
/// are materialized from them at compile time.
#[derive(Debug)]
pub struct CompiledSegment {
    in_len: usize,
    out_shape: Shape,
    steps: Vec<Step>,
}

impl CompiledSegment {
    /// Compiles one piece of the group `layers` (a consecutive run of merged
    /// layers of `graph`). `spec` selects which slice of the group output
    /// this piece computes; conv panels are packed through `cache`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Unsupported`] for anything the compiled path
    /// does not model — multi-input nodes (`Add`, `Concat`), `Lstm`, specs
    /// the reference executor itself rejects (e.g. `Rows` of a dense layer),
    /// or empty pieces. Callers are expected to fall back to the uncompiled
    /// executor on error.
    pub fn compile(
        graph: &Graph,
        weights: &ModelWeights,
        layers: &[MergedLayer],
        spec: &PieceSpec,
        cache: &mut PanelCache,
    ) -> Result<Self> {
        Self::compile_with(
            graph,
            weights,
            layers,
            spec,
            cache,
            CompileOptions::default(),
        )
    }

    /// [`CompiledSegment::compile`] with explicit [`CompileOptions`] —
    /// `quantize_weights` lowers conv/dense layers to int8 steps.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CompiledSegment::compile`].
    pub fn compile_with(
        graph: &Graph,
        weights: &ModelWeights,
        layers: &[MergedLayer],
        spec: &PieceSpec,
        cache: &mut PanelCache,
        opts: CompileOptions,
    ) -> Result<Self> {
        let mut chain: Vec<NodeId> = Vec::new();
        for layer in layers {
            chain.extend(layer.nodes.iter().copied());
        }
        let first = *chain
            .first()
            .ok_or_else(|| ModelError::Unsupported("empty segment".into()))?;
        let seed = graph
            .node(first)?
            .inputs
            .first()
            .copied()
            .ok_or_else(|| ModelError::BadWiring("segment head has no input".into()))?;
        // Compiled execution only models single-input chains: every node
        // consumes exactly the previous node's output (the first consumes the
        // seed). Branching graphs fall back to the reference executor.
        let mut prev = seed;
        for &id in &chain {
            let node = graph.node(id)?;
            if node.inputs.len() != 1 || node.inputs[0] != prev {
                return Err(ModelError::Unsupported(
                    "compiled execution requires a single-input layer chain".into(),
                ));
            }
            prev = id;
        }
        let seed_shape = graph.node(seed)?.output_shape.clone();
        let mut b = Builder {
            graph,
            weights,
            cache,
            seed_shape,
            chain,
            steps: Vec::new(),
            opts,
        };
        let out_dims = match spec {
            PieceSpec::Full => b.build_full()?,
            PieceSpec::Rows(r) => b.build_span(1, r)?,
            PieceSpec::Cols(r) => b.build_span(2, r)?,
            PieceSpec::Channels(r) => b.build_channels(r)?,
        };
        if b.steps.is_empty() {
            // Flatten-only chain: keep one copy step so `run` has a buffer
            // to hand out.
            let len = b.seed_shape.len();
            b.steps.push(Step::new(StepKind::Copy, len));
        }
        Ok(CompiledSegment {
            in_len: b.seed_shape.len(),
            out_shape: Shape::new(out_dims),
            steps: b.steps,
        })
    }

    /// Expected input length (the seed tensor's element count).
    pub fn in_len(&self) -> usize {
        self.in_len
    }

    /// Shape of this piece's output.
    pub fn out_shape(&self) -> &Shape {
        &self.out_shape
    }

    /// Runs the piece, returning a borrow of its output buffer.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::BadWeights`] if `weights` no longer matches the
    /// node ids compiled against; shape errors cannot occur (shapes were
    /// fixed at compile time).
    ///
    /// # Panics
    ///
    /// Panics if `input.len()` differs from [`CompiledSegment::in_len`].
    pub fn run(&mut self, weights: &ModelWeights, input: &[f32]) -> Result<&[f32]> {
        assert_eq!(input.len(), self.in_len, "compiled segment input length");
        for i in 0..self.steps.len() {
            let (done, rest) = self.steps.split_at_mut(i);
            let cur: &[f32] = if i == 0 { input } else { &done[i - 1].buf };
            let step = &mut rest[0];
            exec_step(&step.kind, weights, cur, &mut step.buf)?;
        }
        Ok(self.output())
    }

    /// Like [`CompiledSegment::run`], but writes the final step's output into
    /// `out` — used to write a piece directly into its disjoint slice of a
    /// join buffer.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CompiledSegment::run`].
    ///
    /// # Panics
    ///
    /// Panics if `input.len()` or `out.len()` disagree with the compiled
    /// geometry.
    pub fn run_into(
        &mut self,
        weights: &ModelWeights,
        input: &[f32],
        out: &mut [f32],
    ) -> Result<()> {
        assert_eq!(input.len(), self.in_len, "compiled segment input length");
        assert_eq!(
            out.len(),
            self.out_shape.len(),
            "compiled segment output length"
        );
        let n = self.steps.len();
        for i in 0..n - 1 {
            let (done, rest) = self.steps.split_at_mut(i);
            let cur: &[f32] = if i == 0 { input } else { &done[i - 1].buf };
            let step = &mut rest[0];
            exec_step(&step.kind, weights, cur, &mut step.buf)?;
        }
        let cur: &[f32] = if n == 1 {
            input
        } else {
            &self.steps[n - 2].buf
        };
        exec_step(&self.steps[n - 1].kind, weights, cur, out)
    }

    /// Pre-grows the widened per-step buffers so batched runs with up to
    /// `n` items allocate nothing — the batch-range declaration of the
    /// 0-alloc warm-path contract.
    pub fn reserve_batch(&mut self, n: usize) {
        for step in &mut self.steps {
            let need = step.buf.len() * n;
            if step.batch_buf.capacity() < need {
                step.batch_buf.reserve(need - step.batch_buf.len());
            }
        }
    }

    /// Runs the piece over a batch of `n` item-major inputs (`n × in_len`
    /// contiguous), returning a borrow of the widened output (`n × out_len`,
    /// item-major).
    ///
    /// Per-item results are bit-identical to `n` [`CompiledSegment::run`]
    /// calls for any thread count (see [`exec_step_batched`]). `n == 1`
    /// delegates to [`CompiledSegment::run`] — the batch-1 fast path touches
    /// no widened buffer and is byte-for-byte the pre-batching code path.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CompiledSegment::run`].
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != n * in_len` or `n == 0`.
    pub fn run_batch(
        &mut self,
        weights: &ModelWeights,
        inputs: &[f32],
        n: usize,
    ) -> Result<&[f32]> {
        assert!(n > 0, "batch must be non-empty");
        assert_eq!(
            inputs.len(),
            n * self.in_len,
            "batched segment input length"
        );
        if n == 1 {
            return self.run(weights, inputs);
        }
        for i in 0..self.steps.len() {
            let (done, rest) = self.steps.split_at_mut(i);
            let cur: &[f32] = if i == 0 {
                inputs
            } else {
                &done[i - 1].batch_buf
            };
            let step = &mut rest[0];
            step.batch_buf.clear();
            step.batch_buf.resize(n * step.buf.len(), 0.0);
            exec_step_batched(&step.kind, weights, n, cur, &mut step.batch_buf)?;
        }
        Ok(self.batch_output())
    }

    /// The widened output of the latest [`CompiledSegment::run_batch`] with
    /// `n >= 2` (item-major). For a batch of one, use
    /// [`CompiledSegment::output`] — the batch-1 path writes the per-query
    /// buffer.
    pub fn batch_output(&self) -> &[f32] {
        &self
            .steps
            .last()
            .expect("compiled segment has at least one step")
            .batch_buf
    }

    /// Applies the int8 wire round trip to each item slice of the widened
    /// output — the batched counterpart of
    /// [`CompiledSegment::wire_roundtrip_output`]. Quantization scales are
    /// per item, exactly as if each item had been sent separately.
    pub fn wire_roundtrip_batch_output(&mut self) {
        let step = self
            .steps
            .last_mut()
            .expect("compiled segment has at least one step");
        let out_len = step.buf.len();
        for item in step.batch_buf.chunks_exact_mut(out_len) {
            quant::wire_roundtrip_in_place(item);
        }
    }

    /// The piece's output buffer (valid after the latest [`CompiledSegment::run`]).
    pub fn output(&self) -> &[f32] {
        &self
            .steps
            .last()
            .expect("compiled segment has at least one step")
            .buf
    }

    /// Applies the int8 wire round trip to the piece's own output buffer —
    /// the worker-side quantize of a non-contiguous join (the master then
    /// gathers the dequantized values). Allocation-free after warmup.
    pub fn wire_roundtrip_output(&mut self) {
        let buf = &mut self
            .steps
            .last_mut()
            .expect("compiled segment has at least one step")
            .buf;
        quant::wire_roundtrip_in_place(buf);
    }
}

/// Compile-time state shared by the per-spec builders.
struct Builder<'a> {
    graph: &'a Graph,
    weights: &'a ModelWeights,
    cache: &'a mut PanelCache,
    seed_shape: Shape,
    chain: Vec<NodeId>,
    steps: Vec<Step>,
    opts: CompileOptions,
}

impl Builder<'_> {
    fn conv_weights(&self, id: NodeId) -> Result<(&Tensor, &Tensor)> {
        match self.weights.get(id)? {
            NodeWeights::Conv { weight, bias } => Ok((weight, bias)),
            _ => Err(ModelError::BadWeights(format!(
                "node {} expected conv weights",
                id.0
            ))),
        }
    }

    fn depthwise_weights(&self, id: NodeId) -> Result<(&Tensor, &Tensor)> {
        match self.weights.get(id)? {
            NodeWeights::Depthwise { weight, bias } => Ok((weight, bias)),
            _ => Err(ModelError::BadWeights(format!(
                "node {} expected depthwise weights",
                id.0
            ))),
        }
    }

    fn bn_weights(&self, id: NodeId) -> Result<&BatchNormParams> {
        match self.weights.get(id)? {
            NodeWeights::Bn(p) => Ok(p),
            _ => Err(ModelError::BadWeights(format!(
                "node {} expected batch-norm weights",
                id.0
            ))),
        }
    }

    fn dense_weights(&self, id: NodeId) -> Result<(&Tensor, &Tensor)> {
        match self.weights.get(id)? {
            NodeWeights::Dense { weight, bias } => Ok((weight, bias)),
            _ => Err(ModelError::BadWeights(format!(
                "node {} expected dense weights",
                id.0
            ))),
        }
    }

    /// Packs (or fetches) the panel for a conv node's filter rows.
    fn conv_panel(&mut self, id: NodeId, channels: Option<&Range<usize>>) -> Result<Arc<PackedA>> {
        if let Some(p) = self.cache.lookup(id, channels) {
            return Ok(p);
        }
        let (w, _) = self.conv_weights(id)?;
        let dims = w.shape().dims();
        if dims.len() != 4 {
            return Err(ModelError::BadWeights(format!(
                "conv weight must be rank 4, got rank {}",
                dims.len()
            )));
        }
        let k = dims[1] * dims[2] * dims[3];
        let panel = match channels {
            None => PackedA::pack(dims[0], k, w.data()),
            Some(r) => {
                let rows = w.slice(0, r.clone())?;
                PackedA::pack(r.len(), k, rows.data())
            }
        };
        Ok(self.cache.insert(id, channels, panel))
    }

    /// Quantizes (or fetches) the int8 panel for a conv node's filter rows.
    fn conv_qpanel(
        &mut self,
        id: NodeId,
        channels: Option<&Range<usize>>,
    ) -> Result<Arc<QuantizedMatrix>> {
        if let Some(p) = self.cache.lookup_q(id, channels) {
            return Ok(p);
        }
        let (w, _) = self.conv_weights(id)?;
        let dims = w.shape().dims();
        if dims.len() != 4 {
            return Err(ModelError::BadWeights(format!(
                "conv weight must be rank 4, got rank {}",
                dims.len()
            )));
        }
        let k = dims[1] * dims[2] * dims[3];
        let panel = match channels {
            None => QuantizedMatrix::quantize(dims[0], k, w.data()),
            Some(r) => {
                let rows = w.slice(0, r.clone())?;
                QuantizedMatrix::quantize(r.len(), k, rows.data())
            }
        };
        Ok(self.cache.insert_q(id, channels, panel))
    }

    /// Quantizes (or fetches) the int8 panel for a dense node's weight rows.
    fn dense_qpanel(
        &mut self,
        id: NodeId,
        channels: Option<&Range<usize>>,
    ) -> Result<Arc<QuantizedMatrix>> {
        if let Some(p) = self.cache.lookup_q(id, channels) {
            return Ok(p);
        }
        let (w, _) = self.dense_weights(id)?;
        let wd = w.shape().dims();
        let panel = match channels {
            None => QuantizedMatrix::quantize(wd[0], wd[1], w.data()),
            Some(r) => {
                let rows = w.slice(0, r.clone())?;
                QuantizedMatrix::quantize(r.len(), wd[1], rows.data())
            }
        };
        Ok(self.cache.insert_q(id, channels, panel))
    }

    /// Folds a node's batch-norm parameters, optionally restricted to a
    /// channel range. Slicing before folding equals folding before slicing —
    /// the fold is per-channel — so this matches the reference executor's
    /// slice-then-normalize exactly.
    fn bn_fold(&self, id: NodeId, channels: Option<&Range<usize>>) -> Result<(Vec<f32>, Vec<f32>)> {
        let p = self.bn_weights(id)?;
        match channels {
            None => Ok(batch_norm_fold(p)),
            Some(r) => {
                let sliced = BatchNormParams {
                    gamma: p.gamma.slice(0, r.clone())?,
                    beta: p.beta.slice(0, r.clone())?,
                    mean: p.mean.slice(0, r.clone())?,
                    var: p.var.slice(0, r.clone())?,
                    eps: p.eps,
                };
                Ok(batch_norm_fold(&sliced))
            }
        }
    }

    fn push(&mut self, kind: StepKind, out_len: usize) {
        self.steps.push(Step::new(kind, out_len));
    }

    fn require_chw(dims: &[usize], what: &str) -> Result<(usize, usize, usize)> {
        if dims.len() != 3 {
            return Err(ModelError::Unsupported(format!(
                "{what} requires a CHW input, got rank {}",
                dims.len()
            )));
        }
        Ok((dims[0], dims[1], dims[2]))
    }

    /// Appends the conv step for `id` over a `dims` input with the given
    /// padding and optional filter subset; returns the output dims.
    fn push_conv(
        &mut self,
        id: NodeId,
        dims: &[usize],
        params: Conv2dParams,
        channels: Option<&Range<usize>>,
    ) -> Result<Vec<usize>> {
        let (in_c, in_h, in_w) = Self::require_chw(dims, "conv2d")?;
        let (w, b) = self.conv_weights(id)?;
        let wd = w.shape().dims();
        if wd.len() != 4 || wd[1] != in_c || (wd[2], wd[3]) != params.kernel {
            return Err(ModelError::BadWeights(format!(
                "conv weight {wd:?} does not match input {dims:?} / kernel {:?}",
                params.kernel
            )));
        }
        let out_hw = conv2d_output_hw((in_h, in_w), &params).ok_or_else(|| {
            ModelError::Unsupported("conv kernel larger than padded input".into())
        })?;
        let bias = match channels {
            None => b.data().to_vec(),
            Some(r) => b.slice(0, r.clone())?.data().to_vec(),
        };
        if self.opts.quantize_weights {
            let q = self.conv_qpanel(id, channels)?;
            let out_c = q.rows();
            let out_dims = vec![out_c, out_hw.0, out_hw.1];
            let out_len = out_c * out_hw.0 * out_hw.1;
            self.push(
                StepKind::QConv {
                    q,
                    bias,
                    params,
                    in_c,
                    in_h,
                    in_w,
                    out_hw,
                },
                out_len,
            );
            return Ok(out_dims);
        }
        let packed = self.conv_panel(id, channels)?;
        let out_c = packed.m();
        let out_dims = vec![out_c, out_hw.0, out_hw.1];
        let out_len = out_c * out_hw.0 * out_hw.1;
        self.push(
            StepKind::Conv {
                packed,
                bias,
                params,
                in_c,
                in_h,
                in_w,
                out_hw,
            },
            out_len,
        );
        Ok(out_dims)
    }

    /// Appends the depthwise step for `id`; `channels` selects a pre-sliced
    /// filter subset (channel partitions) or the live full weights.
    fn push_depthwise(
        &mut self,
        id: NodeId,
        dims: &[usize],
        params: Conv2dParams,
        channels: Option<&Range<usize>>,
    ) -> Result<Vec<usize>> {
        let (c, in_h, in_w) = Self::require_chw(dims, "depthwise conv2d")?;
        let weights = match channels {
            None => StepWeights::Node(id),
            Some(r) => {
                let (w, b) = self.depthwise_weights(id)?;
                StepWeights::Owned {
                    weight: w.slice(0, r.clone())?,
                    bias: b.slice(0, r.clone())?,
                }
            }
        };
        let out_hw = conv2d_output_hw((in_h, in_w), &params).ok_or_else(|| {
            ModelError::Unsupported("depthwise kernel larger than padded input".into())
        })?;
        let out_dims = vec![c, out_hw.0, out_hw.1];
        let out_len = c * out_hw.0 * out_hw.1;
        self.push(
            StepKind::Depthwise {
                weights,
                params,
                c,
                in_h,
                in_w,
                out_hw,
            },
            out_len,
        );
        Ok(out_dims)
    }

    fn push_pool(
        &mut self,
        dims: &[usize],
        params: Pool2dParams,
        is_max: bool,
    ) -> Result<Vec<usize>> {
        let (c, in_h, in_w) = Self::require_chw(dims, "pool2d")?;
        let conv_params = Conv2dParams {
            kernel: params.kernel,
            stride: params.stride,
            padding: params.padding,
        };
        let out_hw = conv2d_output_hw((in_h, in_w), &conv_params).ok_or_else(|| {
            ModelError::Unsupported("pooling window larger than padded input".into())
        })?;
        let out_dims = vec![c, out_hw.0, out_hw.1];
        let out_len = c * out_hw.0 * out_hw.1;
        self.push(
            StepKind::Pool {
                params,
                is_max,
                c,
                in_hw: (in_h, in_w),
                out_hw,
            },
            out_len,
        );
        Ok(out_dims)
    }

    fn push_bn(
        &mut self,
        id: NodeId,
        dims: &[usize],
        channels: Option<&Range<usize>>,
    ) -> Result<Vec<usize>> {
        let (_, h, w) = Self::require_chw(dims, "batch norm")?;
        let (scale, shift) = self.bn_fold(id, channels)?;
        if scale.len() != dims[0] {
            return Err(ModelError::BadWeights(format!(
                "batch-norm channels {} != input channels {}",
                scale.len(),
                dims[0]
            )));
        }
        let len: usize = dims.iter().product();
        self.push(
            StepKind::Bn {
                scale,
                shift,
                plane: h * w,
            },
            len,
        );
        Ok(dims.to_vec())
    }

    /// Full-output compilation: the step list mirrors `run_segment` on a
    /// linear chain.
    fn build_full(&mut self) -> Result<Vec<usize>> {
        let mut dims = self.seed_shape.dims().to_vec();
        for i in 0..self.chain.len() {
            let id = self.chain[i];
            let op = self.graph.node(id)?.op.clone();
            dims = match op {
                LayerOp::Conv2d {
                    kernel,
                    stride,
                    padding,
                    ..
                } => self.push_conv(
                    id,
                    &dims,
                    Conv2dParams::square(kernel, stride, padding),
                    None,
                )?,
                LayerOp::DepthwiseConv2d {
                    kernel,
                    stride,
                    padding,
                } => self.push_depthwise(
                    id,
                    &dims,
                    Conv2dParams::square(kernel, stride, padding),
                    None,
                )?,
                LayerOp::BatchNorm => self.push_bn(id, &dims, None)?,
                LayerOp::Relu => {
                    let len: usize = dims.iter().product();
                    self.push(StepKind::Relu, len);
                    dims
                }
                LayerOp::MaxPool2d {
                    kernel,
                    stride,
                    padding,
                } => self.push_pool(&dims, Pool2dParams::square(kernel, stride, padding), true)?,
                LayerOp::AvgPool2d {
                    kernel,
                    stride,
                    padding,
                } => self.push_pool(&dims, Pool2dParams::square(kernel, stride, padding), false)?,
                LayerOp::GlobalAvgPool => {
                    let (c, h, w) = Self::require_chw(&dims, "global average pool")?;
                    self.push(StepKind::GlobalAvgPool { c, plane: h * w }, c);
                    vec![c]
                }
                LayerOp::Flatten => {
                    // Reshape only: the data stream is unchanged.
                    vec![dims.iter().product()]
                }
                LayerOp::Dense { .. } => self.push_dense(id, &dims, None)?,
                LayerOp::Softmax => {
                    if dims.len() != 1 {
                        return Err(ModelError::Unsupported(
                            "softmax requires a rank-1 input".into(),
                        ));
                    }
                    self.push(StepKind::Softmax, dims[0]);
                    dims
                }
                other => {
                    return Err(ModelError::Unsupported(format!(
                        "compiled execution of {other:?}"
                    )))
                }
            };
        }
        Ok(dims)
    }

    fn push_dense(
        &mut self,
        id: NodeId,
        dims: &[usize],
        channels: Option<&Range<usize>>,
    ) -> Result<Vec<usize>> {
        if dims.len() != 1 {
            return Err(ModelError::Unsupported(
                "dense requires a rank-1 input".into(),
            ));
        }
        let in_n = dims[0];
        let (w, b) = self.dense_weights(id)?;
        let wd = w.shape().dims();
        if wd.len() != 2 || wd[1] != in_n {
            return Err(ModelError::BadWeights(format!(
                "dense weight {wd:?} does not match input length {in_n}"
            )));
        }
        if self.opts.quantize_weights {
            let bias = match channels {
                None => b.data().to_vec(),
                Some(r) => b.slice(0, r.clone())?.data().to_vec(),
            };
            let q = self.dense_qpanel(id, channels)?;
            let out_n = q.rows();
            self.push(StepKind::QDense { q, bias }, out_n);
            return Ok(vec![out_n]);
        }
        let (weights, out_n) = match channels {
            None => (StepWeights::Node(id), wd[0]),
            Some(r) => (
                StepWeights::Owned {
                    weight: w.slice(0, r.clone())?,
                    bias: b.slice(0, r.clone())?,
                },
                r.len(),
            ),
        };
        self.push(StepKind::Dense { weights }, out_n);
        Ok(vec![out_n])
    }

    /// Spatial-span compilation along `dim` (1 = rows, 2 = cols): a backward
    /// pass derives each node's required output span via the receptive-field
    /// arithmetic (exactly `Executor::span_of`), then the forward step list
    /// is emitted with the resulting halo paddings.
    fn build_span(&mut self, dim: usize, span: &Range<usize>) -> Result<Vec<usize>> {
        if span.is_empty() {
            return Err(ModelError::Unsupported("empty spatial piece".into()));
        }
        // Backward: required span, plus (lo, hi) halo padding per windowed op.
        let mut cur = span.clone();
        let mut halos: Vec<Option<(usize, usize)>> = vec![None; self.chain.len()];
        for i in (0..self.chain.len()).rev() {
            let id = self.chain[i];
            let node = self.graph.node(id)?;
            match &node.op {
                LayerOp::Conv2d {
                    kernel,
                    stride,
                    padding,
                    ..
                }
                | LayerOp::DepthwiseConv2d {
                    kernel,
                    stride,
                    padding,
                }
                | LayerOp::MaxPool2d {
                    kernel,
                    stride,
                    padding,
                }
                | LayerOp::AvgPool2d {
                    kernel,
                    stride,
                    padding,
                } => {
                    let input_id = node.inputs[0];
                    let extent = if i == 0 {
                        self.seed_shape.dim(dim)?
                    } else {
                        self.graph.node(input_id)?.output_shape.dim(dim)?
                    };
                    let rf = ReceptiveField {
                        kernel: *kernel,
                        stride: *stride,
                        padding: *padding,
                    };
                    let (in_span, lo, hi) = rf.input_rows(cur.clone(), extent);
                    halos[i] = Some((lo, hi));
                    cur = in_span;
                }
                LayerOp::BatchNorm | LayerOp::Relu => {}
                other => {
                    return Err(ModelError::Unsupported(format!(
                        "spatial-range execution of {other:?} (no local spatial response)"
                    )))
                }
            }
        }
        // Forward: slice the seed span, then emit each op with its halo
        // padding.
        let seed_dims = self.seed_shape.dims().to_vec();
        if seed_dims.len() != 3 {
            return Err(ModelError::Unsupported(
                "spatial partition requires a CHW segment input".into(),
            ));
        }
        let outer: usize = seed_dims[..dim].iter().product();
        let inner: usize = seed_dims[dim + 1..].iter().product();
        let mut dims = seed_dims.clone();
        dims[dim] = cur.len();
        let in_slice_len: usize = dims.iter().product();
        self.push(
            StepKind::SliceInput {
                outer,
                size: seed_dims[dim],
                inner,
                range: cur,
            },
            in_slice_len,
        );
        for (i, halo) in halos.iter().copied().enumerate() {
            let id = self.chain[i];
            let op = self.graph.node(id)?.op.clone();
            dims = match op {
                LayerOp::Conv2d {
                    kernel,
                    stride,
                    padding,
                    ..
                } => {
                    let (lo, hi) = halo.expect("windowed op recorded a halo");
                    let params = Conv2dParams {
                        kernel: (kernel, kernel),
                        stride: (stride, stride),
                        padding: span_padding(dim, lo, hi, padding),
                    };
                    self.push_conv(id, &dims, params, None)?
                }
                LayerOp::DepthwiseConv2d {
                    kernel,
                    stride,
                    padding,
                } => {
                    let (lo, hi) = halo.expect("windowed op recorded a halo");
                    let params = Conv2dParams {
                        kernel: (kernel, kernel),
                        stride: (stride, stride),
                        padding: span_padding(dim, lo, hi, padding),
                    };
                    self.push_depthwise(id, &dims, params, None)?
                }
                LayerOp::MaxPool2d {
                    kernel,
                    stride,
                    padding,
                }
                | LayerOp::AvgPool2d {
                    kernel,
                    stride,
                    padding,
                } => {
                    let (lo, hi) = halo.expect("windowed op recorded a halo");
                    let params = Pool2dParams {
                        kernel: (kernel, kernel),
                        stride: (stride, stride),
                        padding: span_padding(dim, lo, hi, padding),
                    };
                    self.push_pool(&dims, params, matches!(op, LayerOp::MaxPool2d { .. }))?
                }
                LayerOp::BatchNorm => self.push_bn(id, &dims, None)?,
                LayerOp::Relu => {
                    let len: usize = dims.iter().product();
                    self.push(StepKind::Relu, len);
                    dims
                }
                _ => unreachable!("backward pass rejected unsupported spatial ops"),
            };
        }
        Ok(dims)
    }

    /// Channel-range compilation: mirrors `Executor::chs_of`. The chain is
    /// scanned from the output down; the first weight-split layer (conv or
    /// dense) becomes the head, consumes the full group input, and slices
    /// its filter rows. Everything above it must be channel-local;
    /// everything below it must be `Flatten`. Without a head the group is
    /// channel-local and the seed itself is sliced along dimension 0.
    fn build_channels(&mut self, channels: &Range<usize>) -> Result<Vec<usize>> {
        if channels.is_empty() {
            return Err(ModelError::Unsupported("empty channel piece".into()));
        }
        let mut head: Option<usize> = None;
        for i in (0..self.chain.len()).rev() {
            let id = self.chain[i];
            match &self.graph.node(id)?.op {
                LayerOp::BatchNorm
                | LayerOp::Relu
                | LayerOp::DepthwiseConv2d { .. }
                | LayerOp::MaxPool2d { .. }
                | LayerOp::AvgPool2d { .. }
                | LayerOp::GlobalAvgPool
                | LayerOp::Flatten => continue,
                LayerOp::Conv2d { .. } | LayerOp::Dense { .. } => {
                    head = Some(i);
                    break;
                }
                other => {
                    return Err(ModelError::Unsupported(format!(
                        "channel-range execution of {other:?}"
                    )))
                }
            }
        }
        let mut dims;
        let start;
        match head {
            Some(i) => {
                // Everything below the head must be Flatten-of-seed (the
                // weight-split head consumes the full group input).
                for &pid in &self.chain[..i] {
                    if !matches!(self.graph.node(pid)?.op, LayerOp::Flatten) {
                        return Err(ModelError::Unsupported(
                            "channel partition requires the weight-split layer at the group head"
                                .into(),
                        ));
                    }
                }
                let id = self.chain[i];
                let op = self.graph.node(id)?.op.clone();
                dims = match op {
                    LayerOp::Conv2d {
                        kernel,
                        stride,
                        padding,
                        ..
                    } => {
                        if i != 0 {
                            return Err(ModelError::Unsupported(
                                "conv head cannot consume a flattened input".into(),
                            ));
                        }
                        let seed_dims = self.seed_shape.dims().to_vec();
                        self.push_conv(
                            id,
                            &seed_dims,
                            Conv2dParams::square(kernel, stride, padding),
                            Some(channels),
                        )?
                    }
                    LayerOp::Dense { .. } => {
                        if i == 0 && self.seed_shape.rank() != 1 {
                            return Err(ModelError::Unsupported(
                                "dense requires a rank-1 input".into(),
                            ));
                        }
                        // Flattens below the head leave the data untouched.
                        let flat = vec![self.seed_shape.len()];
                        self.push_dense(id, &flat, Some(channels))?
                    }
                    _ => unreachable!("head is conv or dense"),
                };
                start = i + 1;
            }
            None => {
                // Channel-local group: slice the seed's channel dimension.
                let seed_dims = self.seed_shape.dims().to_vec();
                if seed_dims.is_empty() {
                    return Err(ModelError::Unsupported(
                        "channel partition of a scalar input".into(),
                    ));
                }
                let inner: usize = seed_dims[1..].iter().product();
                dims = seed_dims.clone();
                dims[0] = channels.len();
                let out_len: usize = dims.iter().product();
                self.push(
                    StepKind::SliceInput {
                        outer: 1,
                        size: seed_dims[0],
                        inner,
                        range: channels.clone(),
                    },
                    out_len,
                );
                start = 0;
            }
        }
        for idx in start..self.chain.len() {
            let id = self.chain[idx];
            let op = self.graph.node(id)?.op.clone();
            dims = match op {
                LayerOp::BatchNorm => self.push_bn(id, &dims, Some(channels))?,
                LayerOp::Relu => {
                    let len: usize = dims.iter().product();
                    self.push(StepKind::Relu, len);
                    dims
                }
                LayerOp::DepthwiseConv2d {
                    kernel,
                    stride,
                    padding,
                } => self.push_depthwise(
                    id,
                    &dims,
                    Conv2dParams::square(kernel, stride, padding),
                    Some(channels),
                )?,
                LayerOp::MaxPool2d {
                    kernel,
                    stride,
                    padding,
                } => self.push_pool(&dims, Pool2dParams::square(kernel, stride, padding), true)?,
                LayerOp::AvgPool2d {
                    kernel,
                    stride,
                    padding,
                } => self.push_pool(&dims, Pool2dParams::square(kernel, stride, padding), false)?,
                LayerOp::GlobalAvgPool => {
                    let (c, h, w) = Self::require_chw(&dims, "global average pool")?;
                    self.push(StepKind::GlobalAvgPool { c, plane: h * w }, c);
                    vec![c]
                }
                LayerOp::Flatten => vec![dims.iter().product()],
                _ => unreachable!("backward scan rejected unsupported channel ops"),
            };
        }
        Ok(dims)
    }
}

/// All compiled pieces of one layer group plus the join geometry needed to
/// gather their outputs in [`Tensor::concat`]'s memory order.
#[derive(Debug)]
pub struct CompiledPartition {
    pieces: Vec<CompiledSegment>,
    axis: usize,
    out_shape: Shape,
    /// Product of output dims before / after `axis`.
    outer: usize,
    inner: usize,
    /// Each piece's extent along `axis`.
    piece_sizes: Vec<usize>,
    /// Whether worker piece outputs take the int8 wire round trip before
    /// landing in the join buffer (multi-piece groups only — an
    /// unpartitioned group never crosses the wire).
    wire_int8: bool,
}

impl CompiledPartition {
    /// Compiles every piece of a group. `axis` is the output dimension the
    /// piece outputs are concatenated along (0 = channel, 1 = height,
    /// 2 = width); `specs` carries one [`PieceSpec`] per piece in join
    /// order.
    ///
    /// # Errors
    ///
    /// Propagates piece-compilation errors; rejects empty groups and pieces
    /// whose output shapes disagree off-axis.
    pub fn compile(
        graph: &Graph,
        weights: &ModelWeights,
        layers: &[MergedLayer],
        specs: &[PieceSpec],
        axis: usize,
        cache: &mut PanelCache,
    ) -> Result<Self> {
        Self::compile_with(
            graph,
            weights,
            layers,
            specs,
            axis,
            cache,
            CompileOptions::default(),
        )
    }

    /// [`CompiledPartition::compile`] with explicit [`CompileOptions`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`CompiledPartition::compile`].
    pub fn compile_with(
        graph: &Graph,
        weights: &ModelWeights,
        layers: &[MergedLayer],
        specs: &[PieceSpec],
        axis: usize,
        cache: &mut PanelCache,
        opts: CompileOptions,
    ) -> Result<Self> {
        if specs.is_empty() {
            return Err(ModelError::Unsupported("group with zero pieces".into()));
        }
        let pieces: Vec<CompiledSegment> = specs
            .iter()
            .map(|s| CompiledSegment::compile_with(graph, weights, layers, s, cache, opts))
            .collect::<Result<_>>()?;
        let first = pieces[0].out_shape().clone();
        let rank = first.rank();
        if axis >= rank {
            return Err(ModelError::Unsupported(format!(
                "join axis {axis} out of range for rank {rank}"
            )));
        }
        let mut total = 0;
        let mut piece_sizes = Vec::with_capacity(pieces.len());
        for p in &pieces {
            let d = p.out_shape().dims();
            if d.len() != rank
                || d.iter()
                    .enumerate()
                    .any(|(i, &v)| i != axis && v != first.dims()[i])
            {
                return Err(ModelError::Unsupported(
                    "piece output shapes disagree off the join axis".into(),
                ));
            }
            piece_sizes.push(d[axis]);
            total += d[axis];
        }
        let out_shape = first.with_dim(axis, total)?;
        let outer: usize = first.dims()[..axis].iter().product();
        let inner: usize = first.dims()[axis + 1..].iter().product();
        // A single Full piece runs on the master and never crosses the
        // wire, so the int8 transfer simulation only applies to real
        // fork-join groups.
        let wire_int8 = opts.wire_int8 && specs.len() > 1;
        Ok(CompiledPartition {
            pieces,
            axis,
            out_shape,
            outer,
            inner,
            piece_sizes,
            wire_int8,
        })
    }

    /// Whether worker piece outputs take the int8 wire round trip on their
    /// way into the join buffer. Parallel callers that drive
    /// [`CompiledPartition::pieces_mut`] themselves must honour this by
    /// calling [`CompiledSegment::wire_roundtrip_output`] (or round-tripping
    /// the piece's join slot) after each piece runs.
    pub fn wire_int8(&self) -> bool {
        self.wire_int8
    }

    /// Shape of the gathered group output.
    pub fn out_shape(&self) -> &Shape {
        &self.out_shape
    }

    /// Expected input length for every piece (they share the group input).
    pub fn in_len(&self) -> usize {
        self.pieces[0].in_len()
    }

    /// The join axis pieces are concatenated along.
    pub fn axis(&self) -> usize {
        self.axis
    }

    /// The compiled pieces, for callers that dispatch them in parallel.
    pub fn pieces_mut(&mut self) -> &mut [CompiledSegment] {
        &mut self.pieces
    }

    /// When the join is contiguous (each piece owns one contiguous region of
    /// the output — true iff `outer == 1`, e.g. any channel join), returns
    /// each piece's output range so pieces can [`CompiledSegment::run_into`]
    /// disjoint `&mut` slices of the join buffer directly.
    pub fn contiguous_ranges(&self) -> Option<Vec<Range<usize>>> {
        if self.outer != 1 {
            return None;
        }
        let mut ofs = 0;
        Some(
            self.piece_sizes
                .iter()
                .map(|&s| {
                    let r = ofs..ofs + s * self.inner;
                    ofs = r.end;
                    r
                })
                .collect(),
        )
    }

    /// Gathers the piece outputs (valid after each piece ran) into `out`,
    /// in exactly [`Tensor::concat`]'s memory order: outer blocks first,
    /// pieces in order within each block. Allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if `out.len()` differs from the gathered output length.
    pub fn gather(&self, out: &mut [f32]) {
        assert_eq!(out.len(), self.out_shape.len(), "join buffer length");
        let mut dst = 0;
        for o in 0..self.outer {
            for (p, &psize) in self.pieces.iter().zip(self.piece_sizes.iter()) {
                let rows = psize * self.inner;
                let src = o * rows;
                out[dst..dst + rows].copy_from_slice(&p.output()[src..src + rows]);
                dst += rows;
            }
        }
    }

    /// Runs every piece sequentially and gathers into `out`. Parallel
    /// callers drive [`CompiledPartition::pieces_mut`] /
    /// [`CompiledPartition::gather`] themselves.
    ///
    /// # Errors
    ///
    /// Propagates piece errors (see [`CompiledSegment::run`]).
    pub fn run_into(
        &mut self,
        weights: &ModelWeights,
        input: &[f32],
        out: &mut [f32],
    ) -> Result<()> {
        if self.outer == 1 {
            // Contiguous join: pieces write their slice of `out` directly,
            // with no per-call range allocation (the warm path must not
            // touch the heap). The int8 wire round trip dequantizes into
            // the same join-buffer slot the piece just wrote — no extra
            // per-query buffers.
            let mut ofs = 0;
            for (piece, &psize) in self.pieces.iter_mut().zip(self.piece_sizes.iter()) {
                let end = ofs + psize * self.inner;
                piece.run_into(weights, input, &mut out[ofs..end])?;
                if self.wire_int8 {
                    quant::wire_roundtrip_in_place(&mut out[ofs..end]);
                }
                ofs = end;
            }
            return Ok(());
        }
        for piece in &mut self.pieces {
            piece.run(weights, input)?;
            if self.wire_int8 {
                // Worker-side quantize: round-trip the piece's own output
                // buffer before the master gathers it.
                piece.wire_roundtrip_output();
            }
        }
        self.gather(out);
        Ok(())
    }

    /// Pre-grows every piece's widened buffers for batches up to `n` (see
    /// [`CompiledSegment::reserve_batch`]).
    pub fn reserve_batch(&mut self, n: usize) {
        for piece in &mut self.pieces {
            piece.reserve_batch(n);
        }
    }

    /// Gathers the widened piece outputs of the latest batched run into
    /// `outs` (`n × out_len`, item-major), each item in exactly
    /// [`Tensor::concat`]'s memory order. Allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if `outs.len()` differs from `n` gathered outputs.
    pub fn gather_batch(&self, n: usize, outs: &mut [f32]) {
        let out_len = self.out_shape.len();
        assert_eq!(outs.len(), n * out_len, "batched join buffer length");
        for (i, out) in outs.chunks_exact_mut(out_len).enumerate() {
            let mut dst = 0;
            for o in 0..self.outer {
                for (p, &psize) in self.pieces.iter().zip(self.piece_sizes.iter()) {
                    let rows = psize * self.inner;
                    let plen = p.out_shape().len();
                    let src = i * plen + o * rows;
                    out[dst..dst + rows].copy_from_slice(&p.batch_output()[src..src + rows]);
                    dst += rows;
                }
            }
        }
    }

    /// Batched [`CompiledPartition::run_into`]: runs every piece over the
    /// `n` item-major inputs and gathers each item's join into its slice of
    /// `outs` (`n × out_len`). The int8 wire round trip is applied per
    /// `(piece, item)` slice — the same payloads (and thus the same
    /// quantization scales) as `n` separate queries, so per-item outputs are
    /// bit-identical to `n` [`CompiledPartition::run_into`] calls. `n == 1`
    /// delegates to the per-query path untouched.
    ///
    /// # Errors
    ///
    /// Propagates piece errors (see [`CompiledSegment::run`]).
    pub fn run_batch_into(
        &mut self,
        weights: &ModelWeights,
        inputs: &[f32],
        n: usize,
        outs: &mut [f32],
    ) -> Result<()> {
        assert!(n > 0, "batch must be non-empty");
        let out_len = self.out_shape.len();
        assert_eq!(outs.len(), n * out_len, "batched join buffer length");
        if n == 1 {
            return self.run_into(weights, inputs, outs);
        }
        if self.outer == 1 {
            // Contiguous join: scatter each item's piece slice straight into
            // its join buffer slot, round-tripping the slot in place.
            let mut ofs = 0;
            for (piece, &psize) in self.pieces.iter_mut().zip(self.piece_sizes.iter()) {
                let plen = psize * self.inner;
                let got = piece.run_batch(weights, inputs, n)?;
                for (i, item) in got.chunks_exact(plen).enumerate() {
                    let dst = &mut outs[i * out_len + ofs..i * out_len + ofs + plen];
                    dst.copy_from_slice(item);
                    if self.wire_int8 {
                        quant::wire_roundtrip_in_place(dst);
                    }
                }
                ofs += plen;
            }
            return Ok(());
        }
        for piece in &mut self.pieces {
            piece.run_batch(weights, inputs, n)?;
            if self.wire_int8 {
                piece.wire_roundtrip_batch_output();
            }
        }
        self.gather_batch(n, outs);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Executor;
    use crate::weights::init_weights;
    use crate::zoo;

    fn query(shape: &Shape, seed: u64) -> Tensor {
        let mut x = seed;
        Tensor::from_fn(shape.clone(), |_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            ((x % 1000) as f32 / 500.0) - 1.0
        })
    }

    fn assert_bits_eq(a: &[f32], b: &[f32], what: &str) {
        assert_eq!(a.len(), b.len(), "{what}: length");
        for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{what}: element {i}: {x} vs {y}");
        }
    }

    #[test]
    fn full_compiled_forward_is_bit_identical() {
        let model = zoo::tiny_vgg();
        let weights = init_weights(model.graph(), 3).unwrap();
        let exec = Executor::new(model.graph(), &weights);
        let input = query(model.input_shape(), 11);
        let reference = exec.forward(&model, &input).unwrap();

        let mut cache = PanelCache::new();
        let mut seg = CompiledSegment::compile(
            model.graph(),
            &weights,
            model.layers(),
            &PieceSpec::Full,
            &mut cache,
        )
        .unwrap();
        assert_eq!(seg.out_shape(), reference.shape());
        let out = seg.run(&weights, input.data()).unwrap();
        assert_bits_eq(out, reference.data(), "full forward");
    }

    #[test]
    fn row_and_col_pieces_are_bit_identical() {
        let model = zoo::tiny_vgg();
        let weights = init_weights(model.graph(), 9).unwrap();
        let exec = Executor::new(model.graph(), &weights);
        let input = query(model.input_shape(), 2);
        let spatial: Vec<_> = model
            .layers()
            .iter()
            .take_while(|l| l.class.supports_spatial())
            .cloned()
            .collect();
        let seg_layers = &spatial[..2];
        let mut cache = PanelCache::new();
        for (dim, make) in [
            (1usize, (|r: Range<usize>| PieceSpec::Rows(r)) as fn(_) -> _),
            (2usize, |r: Range<usize>| PieceSpec::Cols(r)),
        ] {
            let total = seg_layers.last().unwrap().out_shape.dims()[dim];
            for p in 0..3usize {
                let lo = p * total / 3;
                let hi = (p + 1) * total / 3;
                let reference = match dim {
                    1 => exec.run_segment_rows(seg_layers, &input, lo..hi).unwrap(),
                    _ => exec.run_segment_cols(seg_layers, &input, lo..hi).unwrap(),
                };
                let mut seg = CompiledSegment::compile(
                    model.graph(),
                    &weights,
                    seg_layers,
                    &make(lo..hi),
                    &mut cache,
                )
                .unwrap();
                assert_eq!(seg.out_shape(), reference.shape());
                let out = seg.run(&weights, input.data()).unwrap();
                assert_bits_eq(out, reference.data(), "spatial piece");
            }
        }
        // Spatial pieces all use the full filter bank: one panel per conv in
        // the segment, shared by all six pieces.
        let convs = seg_layers
            .iter()
            .flat_map(|l| l.nodes.iter())
            .filter(|&&id| matches!(model.graph().node(id).unwrap().op, LayerOp::Conv2d { .. }))
            .count();
        assert_eq!(cache.len(), convs);
    }

    #[test]
    fn channel_pieces_are_bit_identical() {
        let model = zoo::tiny_vgg();
        let weights = init_weights(model.graph(), 21).unwrap();
        let exec = Executor::new(model.graph(), &weights);
        let input = query(model.input_shape(), 5);
        let mut cache = PanelCache::new();
        // Head conv group (weight-split conv head).
        let seg_layers = &model.layers()[..1];
        let out_c = seg_layers[0].out_shape.dims()[0];
        for p in 0..2usize {
            let r = p * out_c / 2..(p + 1) * out_c / 2;
            let reference = exec
                .run_segment_channels(seg_layers, &input, r.clone())
                .unwrap();
            let mut seg = CompiledSegment::compile(
                model.graph(),
                &weights,
                seg_layers,
                &PieceSpec::Channels(r),
                &mut cache,
            )
            .unwrap();
            assert_eq!(seg.out_shape(), reference.shape());
            let out = seg.run(&weights, input.data()).unwrap();
            assert_bits_eq(out, reference.data(), "channel piece");
        }

        // Dense tail group (weight-split dense head behind a flatten).
        let layers = model.layers();
        let dense_idx = layers.len() - 1;
        let seg_layers = &layers[dense_idx..];
        let seg_input = exec.run_segment(&layers[..dense_idx], &input).unwrap();
        let out_n = seg_layers[0].out_shape.dims()[0];
        for p in 0..2usize {
            let r = p * out_n / 2..(p + 1) * out_n / 2;
            let reference = exec
                .run_segment_channels(seg_layers, &seg_input, r.clone())
                .unwrap();
            let mut seg = CompiledSegment::compile(
                model.graph(),
                &weights,
                seg_layers,
                &PieceSpec::Channels(r),
                &mut cache,
            )
            .unwrap();
            let out = seg.run(&weights, seg_input.data()).unwrap();
            assert_bits_eq(out, reference.data(), "dense channel piece");
        }
    }

    #[test]
    fn compiled_partition_gather_matches_concat() {
        let model = zoo::tiny_vgg();
        let weights = init_weights(model.graph(), 9).unwrap();
        let exec = Executor::new(model.graph(), &weights);
        let input = query(model.input_shape(), 7);
        let spatial: Vec<_> = model
            .layers()
            .iter()
            .take_while(|l| l.class.supports_spatial())
            .cloned()
            .collect();
        let seg_layers = &spatial[..2];
        let out_h = seg_layers.last().unwrap().out_shape.dims()[1];
        let specs: Vec<PieceSpec> = (0..4)
            .map(|p| PieceSpec::Rows(p * out_h / 4..(p + 1) * out_h / 4))
            .collect();
        let mut cache = PanelCache::new();
        let mut part =
            CompiledPartition::compile(model.graph(), &weights, seg_layers, &specs, 1, &mut cache)
                .unwrap();
        let reference = {
            let parts: Vec<Tensor> = (0..4)
                .map(|p| {
                    exec.run_segment_rows(seg_layers, &input, p * out_h / 4..(p + 1) * out_h / 4)
                        .unwrap()
                })
                .collect();
            Tensor::concat(&parts, 1).unwrap()
        };
        let mut out = vec![0.0f32; part.out_shape().len()];
        part.run_into(&weights, input.data(), &mut out).unwrap();
        assert_eq!(part.out_shape(), reference.shape());
        assert_bits_eq(&out, reference.data(), "spatial gather");
        // Spatial join along height is strided (outer = channels > 1).
        assert!(part.contiguous_ranges().is_none());

        // Channel join is contiguous: pieces write the join buffer directly.
        let head = &model.layers()[..1];
        let out_c = head[0].out_shape.dims()[0];
        let specs: Vec<PieceSpec> = (0..2)
            .map(|p| PieceSpec::Channels(p * out_c / 2..(p + 1) * out_c / 2))
            .collect();
        let mut part =
            CompiledPartition::compile(model.graph(), &weights, head, &specs, 0, &mut cache)
                .unwrap();
        assert!(part.contiguous_ranges().is_some());
        let reference = {
            let parts: Vec<Tensor> = (0..2)
                .map(|p| {
                    exec.run_segment_channels(head, &input, p * out_c / 2..(p + 1) * out_c / 2)
                        .unwrap()
                })
                .collect();
            Tensor::concat(&parts, 0).unwrap()
        };
        let mut out = vec![0.0f32; part.out_shape().len()];
        part.run_into(&weights, input.data(), &mut out).unwrap();
        assert_bits_eq(&out, reference.data(), "channel gather");
    }

    #[test]
    fn batched_partition_bit_identical_to_sequential() {
        // Batched runs must reproduce N independent per-query runs to the
        // bit, for both join geometries and with the int8 wire enabled.
        let model = zoo::tiny_vgg();
        let weights = init_weights(model.graph(), 9).unwrap();
        let input_len = model.input_shape().len();
        let spatial: Vec<_> = model
            .layers()
            .iter()
            .take_while(|l| l.class.supports_spatial())
            .cloned()
            .collect();
        let seg_layers = &spatial[..2];
        let out_h = seg_layers.last().unwrap().out_shape.dims()[1];
        let row_specs: Vec<PieceSpec> = (0..4)
            .map(|p| PieceSpec::Rows(p * out_h / 4..(p + 1) * out_h / 4))
            .collect();
        let head = &model.layers()[..1];
        let out_c = head[0].out_shape.dims()[0];
        let chan_specs: Vec<PieceSpec> = (0..2)
            .map(|p| PieceSpec::Channels(p * out_c / 2..(p + 1) * out_c / 2))
            .collect();
        let cases: [(
            &[crate::linear::MergedLayer],
            &[PieceSpec],
            usize,
            CompileOptions,
        ); 3] = [
            (seg_layers, &row_specs, 1, CompileOptions::default()),
            (head, &chan_specs, 0, CompileOptions::default()),
            (head, &chan_specs, 0, CompileOptions::int8()),
        ];
        for (layers, specs, axis, opts) in cases {
            let mut cache = PanelCache::new();
            let mut part = CompiledPartition::compile_with(
                model.graph(),
                &weights,
                layers,
                specs,
                axis,
                &mut cache,
                opts,
            )
            .unwrap();
            for n in [1usize, 2, 3, 8] {
                let queries: Vec<Tensor> = (0..n)
                    .map(|i| query(model.input_shape(), 40 + i as u64))
                    .collect();
                let out_len = part.out_shape().len();
                let mut seq = vec![0.0f32; n * out_len];
                for (q, out) in queries.iter().zip(seq.chunks_mut(out_len)) {
                    part.run_into(&weights, q.data(), out).unwrap();
                }
                let mut inputs = vec![0.0f32; n * input_len];
                for (q, dst) in queries.iter().zip(inputs.chunks_mut(input_len)) {
                    dst.copy_from_slice(q.data());
                }
                let mut batched = vec![0.0f32; n * out_len];
                part.run_batch_into(&weights, &inputs, n, &mut batched)
                    .unwrap();
                assert_bits_eq(&seq, &batched, &format!("batched join n={n}"));
            }
        }
    }

    #[test]
    fn batched_segment_warm_runs_reuse_widened_buffers() {
        let model = zoo::tiny_vgg();
        let weights = init_weights(model.graph(), 3).unwrap();
        let mut cache = PanelCache::new();
        let mut seg = CompiledSegment::compile(
            model.graph(),
            &weights,
            model.layers(),
            &PieceSpec::Full,
            &mut cache,
        )
        .unwrap();
        seg.reserve_batch(4);
        let in_len = model.input_shape().len();
        let inputs: Vec<f32> = (0..4 * in_len).map(|i| (i as f32 * 0.01).sin()).collect();
        let ptr_a = seg.run_batch(&weights, &inputs, 4).unwrap().as_ptr();
        let ptr_b = seg.run_batch(&weights, &inputs, 4).unwrap().as_ptr();
        assert_eq!(ptr_a, ptr_b, "widened buffers are reused across batches");
        // Batch-1 runs stay on the per-query buffers.
        let one = &inputs[..in_len];
        let p1 = seg.run(&weights, one).unwrap().as_ptr();
        let p2 = seg.run_batch(&weights, one, 1).unwrap().as_ptr();
        assert_eq!(p1, p2, "batch-1 delegates to the per-query path");
    }

    #[test]
    fn branching_graphs_fail_to_compile() {
        let model = zoo::tiny_resnet();
        let weights = init_weights(model.graph(), 13).unwrap();
        let mut cache = PanelCache::new();
        let err = CompiledSegment::compile(
            model.graph(),
            &weights,
            model.layers(),
            &PieceSpec::Full,
            &mut cache,
        );
        assert!(matches!(err, Err(ModelError::Unsupported(_))));
    }

    #[test]
    fn spatial_piece_of_dense_fails_to_compile() {
        let model = zoo::tiny_vgg();
        let weights = init_weights(model.graph(), 1).unwrap();
        let layers = model.layers();
        let mut cache = PanelCache::new();
        let err = CompiledSegment::compile(
            model.graph(),
            &weights,
            &layers[layers.len() - 1..],
            &PieceSpec::Rows(0..1),
            &mut cache,
        );
        assert!(matches!(err, Err(ModelError::Unsupported(_))));
    }

    #[test]
    fn channel_piece_rejects_non_head_conv() {
        let model = zoo::tiny_vgg();
        let weights = init_weights(model.graph(), 1).unwrap();
        let layers = model.layers();
        let conv_indices: Vec<usize> = layers
            .iter()
            .enumerate()
            .filter(|(_, l)| l.class.channel_splittable() && l.class.supports_spatial())
            .map(|(i, _)| i)
            .collect();
        let adjacent = conv_indices
            .windows(2)
            .find(|w| w[1] == w[0] + 1)
            .expect("adjacent convs in tiny-vgg");
        let seg = &layers[adjacent[0]..=adjacent[1]];
        let mut cache = PanelCache::new();
        let err = CompiledSegment::compile(
            model.graph(),
            &weights,
            seg,
            &PieceSpec::Channels(0..4),
            &mut cache,
        );
        assert!(matches!(err, Err(ModelError::Unsupported(_))));
    }

    #[test]
    fn warm_queries_reuse_buffers() {
        let model = zoo::tiny_vgg();
        let weights = init_weights(model.graph(), 3).unwrap();
        let mut cache = PanelCache::new();
        let mut seg = CompiledSegment::compile(
            model.graph(),
            &weights,
            model.layers(),
            &PieceSpec::Full,
            &mut cache,
        )
        .unwrap();
        let a = query(model.input_shape(), 1);
        let b = query(model.input_shape(), 2);
        let ptr_a = seg.run(&weights, a.data()).unwrap().as_ptr();
        let out_a: Vec<f32> = seg.run(&weights, a.data()).unwrap().to_vec();
        let ptr_b = seg.run(&weights, b.data()).unwrap().as_ptr();
        // Same output storage across queries; different inputs change values.
        assert_eq!(ptr_a, ptr_b);
        let out_b = seg.run(&weights, b.data()).unwrap();
        assert_ne!(out_a, out_b);
    }

    /// Relative L2 distance between a quantized output and its f32 reference.
    fn rel_l2(a: &[f32], b: &[f32]) -> f32 {
        let num: f32 = a.iter().zip(b.iter()).map(|(x, y)| (x - y) * (x - y)).sum();
        let den: f32 = b.iter().map(|y| y * y).sum();
        (num / den.max(f32::MIN_POSITIVE)).sqrt()
    }

    #[test]
    fn quantized_forward_tracks_f32_within_bound() {
        let model = zoo::tiny_vgg();
        let weights = init_weights(model.graph(), 3).unwrap();
        let exec = Executor::new(model.graph(), &weights);
        let input = query(model.input_shape(), 11);
        let reference = exec.forward(&model, &input).unwrap();

        let mut cache = PanelCache::new();
        let mut seg = CompiledSegment::compile_with(
            model.graph(),
            &weights,
            model.layers(),
            &PieceSpec::Full,
            &mut cache,
            CompileOptions::int8(),
        )
        .unwrap();
        assert_eq!(seg.out_shape(), reference.shape());
        let out = seg.run(&weights, input.data()).unwrap();
        let err = rel_l2(out, reference.data());
        assert!(err < 0.05, "quantized forward drifted: rel l2 {err}");

        // Int8 panels are ~4x smaller than packed f32 panels. Compare over
        // the conv prefix only: the f32 path never caches dense panels (gemv
        // reads the live weight map), so the full-model caches hold
        // different node sets.
        let spatial: Vec<_> = model
            .layers()
            .iter()
            .take_while(|l| l.class.supports_spatial())
            .cloned()
            .collect();
        let mut f32_cache = PanelCache::new();
        CompiledSegment::compile(
            model.graph(),
            &weights,
            &spatial,
            &PieceSpec::Full,
            &mut f32_cache,
        )
        .unwrap();
        let mut q_cache = PanelCache::new();
        CompiledSegment::compile_with(
            model.graph(),
            &weights,
            &spatial,
            &PieceSpec::Full,
            &mut q_cache,
            CompileOptions::int8(),
        )
        .unwrap();
        assert!(
            q_cache.bytes() * 3 < f32_cache.bytes(),
            "quantized conv panels {} not ~4x below f32 panels {}",
            q_cache.bytes(),
            f32_cache.bytes()
        );
    }

    #[test]
    fn wire_int8_partition_tracks_f32_within_bound() {
        let model = zoo::tiny_vgg();
        let weights = init_weights(model.graph(), 9).unwrap();
        let exec = Executor::new(model.graph(), &weights);
        let input = query(model.input_shape(), 7);
        let spatial: Vec<_> = model
            .layers()
            .iter()
            .take_while(|l| l.class.supports_spatial())
            .cloned()
            .collect();
        let seg_layers = &spatial[..2];
        let out_h = seg_layers.last().unwrap().out_shape.dims()[1];
        let specs: Vec<PieceSpec> = (0..4)
            .map(|p| PieceSpec::Rows(p * out_h / 4..(p + 1) * out_h / 4))
            .collect();
        let reference = {
            let parts: Vec<Tensor> = (0..4)
                .map(|p| {
                    exec.run_segment_rows(seg_layers, &input, p * out_h / 4..(p + 1) * out_h / 4)
                        .unwrap()
                })
                .collect();
            Tensor::concat(&parts, 1).unwrap()
        };

        // Float weights over an int8 wire: the only error is the per-piece
        // payload round trip, which is bounded by half a quantization step.
        let opts = CompileOptions {
            quantize_weights: false,
            wire_int8: true,
        };
        let mut cache = PanelCache::new();
        let mut part = CompiledPartition::compile_with(
            model.graph(),
            &weights,
            seg_layers,
            &specs,
            1,
            &mut cache,
            opts,
        )
        .unwrap();
        assert!(part.wire_int8());
        let mut out = vec![0.0f32; part.out_shape().len()];
        part.run_into(&weights, input.data(), &mut out).unwrap();
        let max_ref = reference.data().iter().fold(0.0f32, |m, v| m.max(v.abs()));
        let step = max_ref / 127.0;
        for (i, (x, y)) in out.iter().zip(reference.data().iter()).enumerate() {
            assert!(
                (x - y).abs() <= step,
                "wire roundtrip element {i}: {x} vs {y} (step {step})"
            );
        }

        // A single-piece "partition" never crosses the wire: exact output.
        let mut part = CompiledPartition::compile_with(
            model.graph(),
            &weights,
            seg_layers,
            &[PieceSpec::Full],
            1,
            &mut cache,
            opts,
        )
        .unwrap();
        assert!(!part.wire_int8());
        let full_ref = exec.run_segment(seg_layers, &input).unwrap();
        let mut out = vec![0.0f32; part.out_shape().len()];
        part.run_into(&weights, input.data(), &mut out).unwrap();
        assert_bits_eq(&out, full_ref.data(), "single-piece wire");
    }
}
