//! The merging pass: element-wise folding and branch merging (paper §III-C).
//!
//! Gillis transforms an arbitrary DNN graph into a *linear* chain before
//! partitioning: element-wise layers (ReLU, batch norm, softmax) are folded
//! into the preceding weight-intensive layer, and branch modules (residual
//! blocks, inception modules) are merged into a single layer (paper Fig 5).
//! This pass implements exactly that transformation and additionally derives
//! each merged layer's partitioning class from tensor dependencies (Fig 6).

use gillis_tensor::Shape;

use crate::error::ModelError;
use crate::graph::{Graph, Node, NodeId};
use crate::linear::{LayerClass, LinearModel, MergedLayer, ReceptiveField};
use crate::op::LayerOp;
use crate::Result;

/// Runs the merging pass over `graph`, producing a linear model.
///
/// # Errors
///
/// Returns [`ModelError::Unmergeable`] when the graph violates the pass's
/// structural assumptions: the first node must be the unique [`LayerOp::Input`],
/// branch modules must be single-entry/single-exit with chain-shaped arms
/// reconverging on one `Add`/`Concat`, and nested branches are not supported
/// (none of the paper's benchmark models need them).
pub fn merge_graph(name: impl Into<String>, graph: Graph) -> Result<LinearModel> {
    let nodes = graph.nodes();
    let first = nodes
        .first()
        .ok_or_else(|| ModelError::Unmergeable("empty graph".into()))?;
    let input_shape = match &first.op {
        LayerOp::Input { shape } => shape.clone(),
        _ => {
            return Err(ModelError::Unmergeable(
                "first node must be the model input".into(),
            ))
        }
    };
    if nodes
        .iter()
        .skip(1)
        .any(|n| matches!(n.op, LayerOp::Input { .. }))
    {
        return Err(ModelError::Unmergeable("multiple input nodes".into()));
    }

    let output_id = graph.output()?.id;
    let mut layers = Vec::new();
    let mut spine = first.id;

    while spine != output_id {
        let merged = next_merged_layer(&graph, spine)?;
        spine = *merged.nodes.last().expect("merged layer is non-empty");
        layers.push(merged);
    }

    Ok(LinearModel::new(name, graph, layers, input_shape))
}

/// Parses the next merged layer starting after spine node `prev`.
fn next_merged_layer(graph: &Graph, prev: NodeId) -> Result<MergedLayer> {
    let consumers = graph.consumers(prev);
    let merged_nodes = match consumers.len() {
        0 => {
            return Err(ModelError::Unmergeable(format!(
                "node {} has no consumers but is not the output",
                prev.0
            )))
        }
        1 => parse_chain(graph, consumers[0])?,
        _ => parse_branch_module(graph, prev, &consumers)?,
    };
    build_merged(graph, prev, merged_nodes)
}

/// Parses a chain-shaped merged layer: one head compute node plus any
/// following single-consumer element-wise nodes. A `Flatten` head is fused
/// forward into the dense layer it feeds.
fn parse_chain(graph: &Graph, head: NodeId) -> Result<Vec<NodeId>> {
    let head_node = graph.node(head)?;
    if head_node.inputs.len() > 1 {
        return Err(ModelError::Unmergeable(format!(
            "unexpected join node {} on the spine",
            head_node.name
        )));
    }
    let mut nodes = vec![head];
    let mut tail = head;
    if matches!(head_node.op, LayerOp::Flatten) {
        // Flatten must feed exactly one dense layer; fuse them.
        let cs = graph.consumers(head);
        let dense = match cs.as_slice() {
            [only] => *only,
            _ => {
                return Err(ModelError::Unmergeable(
                    "flatten must have exactly one consumer".into(),
                ))
            }
        };
        if !matches!(graph.node(dense)?.op, LayerOp::Dense { .. }) {
            return Err(ModelError::Unmergeable(
                "flatten must feed a dense layer".into(),
            ));
        }
        nodes.push(dense);
        tail = dense;
    }
    absorb_element_wise(graph, &mut nodes, &mut tail)?;
    Ok(nodes)
}

/// Parses a branch module: `prev`'s consumers fan out into chain-shaped arms
/// that reconverge on a single Add/Concat join.
fn parse_branch_module(graph: &Graph, prev: NodeId, consumers: &[NodeId]) -> Result<Vec<NodeId>> {
    let mut all_nodes: Vec<NodeId> = Vec::new();
    let mut join: Option<NodeId> = None;
    for &arm_head in consumers {
        let arm_head_node = graph.node(arm_head)?;
        if arm_head_node.inputs.len() > 1 {
            // `prev` feeds the join directly: identity shortcut.
            record_join(&mut join, arm_head)?;
            continue;
        }
        // Walk the arm until the next node is a join.
        let mut cur = arm_head;
        loop {
            all_nodes.push(cur);
            let cs = graph.consumers(cur);
            let next = match cs.as_slice() {
                [only] => *only,
                _ => {
                    return Err(ModelError::Unmergeable(
                        "nested branches are not supported".into(),
                    ))
                }
            };
            if graph.node(next)?.inputs.len() > 1 {
                record_join(&mut join, next)?;
                break;
            }
            cur = next;
        }
    }
    let join = join.ok_or_else(|| ModelError::Unmergeable("branch module has no join".into()))?;
    let join_node = graph.node(join)?;
    if !matches!(join_node.op, LayerOp::Add | LayerOp::Concat) {
        return Err(ModelError::Unmergeable(format!(
            "branch join {} must be add or concat",
            join_node.name
        )));
    }
    let _ = prev;
    all_nodes.sort();
    all_nodes.dedup();
    all_nodes.push(join);
    let mut tail = join;
    absorb_element_wise(graph, &mut all_nodes, &mut tail)?;
    Ok(all_nodes)
}

fn record_join(join: &mut Option<NodeId>, candidate: NodeId) -> Result<()> {
    match join {
        None => {
            *join = Some(candidate);
            Ok(())
        }
        Some(j) if *j == candidate => Ok(()),
        Some(j) => Err(ModelError::Unmergeable(format!(
            "branch arms reconverge on different joins ({} vs {})",
            j.0, candidate.0
        ))),
    }
}

/// Extends `nodes` with the chain of single-consumer element-wise nodes
/// following `tail`, updating `tail`.
fn absorb_element_wise(graph: &Graph, nodes: &mut Vec<NodeId>, tail: &mut NodeId) -> Result<()> {
    loop {
        let cs = graph.consumers(*tail);
        match cs.as_slice() {
            [only] => {
                let n = graph.node(*only)?;
                if n.op.is_element_wise() && n.inputs.len() == 1 {
                    nodes.push(*only);
                    *tail = *only;
                } else {
                    return Ok(());
                }
            }
            _ => return Ok(()),
        }
    }
}

/// Assembles the [`MergedLayer`] from its constituent node ids.
fn build_merged(graph: &Graph, prev: NodeId, nodes: Vec<NodeId>) -> Result<MergedLayer> {
    let tail = *nodes.last().expect("merged layer is non-empty");
    let in_shape = graph.node(prev)?.output_shape.clone();
    let out_shape = graph.node(tail)?.output_shape.clone();

    let mut flops = 0u64;
    let mut weight_bytes = 0u64;
    let mut conv_count = 0usize;
    let mut has_dense = false;
    let mut has_lstm = false;
    let mut has_gap = false;
    let mut has_pool = false;
    let mut has_depthwise = false;
    let mut is_branch = false;
    for &id in &nodes {
        let n = graph.node(id)?;
        let in_shapes = graph.input_shapes(n);
        flops += n.op.flops(&in_shapes, &n.output_shape);
        weight_bytes += 4 * n.op.param_count(&in_shapes, &n.output_shape);
        match n.op {
            LayerOp::Conv2d { .. } => conv_count += 1,
            LayerOp::Dense { .. } => has_dense = true,
            LayerOp::Lstm { .. } => has_lstm = true,
            LayerOp::GlobalAvgPool => has_gap = true,
            LayerOp::DepthwiseConv2d { .. } => has_depthwise = true,
            LayerOp::MaxPool2d { .. } | LayerOp::AvgPool2d { .. } => has_pool = true,
            LayerOp::Add | LayerOp::Concat => is_branch = true,
            _ => {}
        }
    }

    let head_name = graph.node(nodes[0])?.name.clone();
    let class = if has_lstm {
        LayerClass::Recurrent
    } else if has_dense {
        LayerClass::DenseLike
    } else if has_gap {
        LayerClass::Reduction
    } else {
        let rf = merged_receptive_field(graph, prev, &nodes)?;
        LayerClass::ConvLike {
            rf,
            // Channel partitioning splits the filter bank; that only chains
            // through when there is exactly one conv and no branch join.
            channel_splittable: conv_count == 1 && !is_branch && !has_depthwise,
            // Depthwise convolutions and pools pass channels through
            // untouched: output channel c depends only on input channel c.
            channel_local: conv_count == 0 && !is_branch && (has_pool || has_depthwise),
        }
    };

    validate_spatial_consistency(&class, &in_shape, &out_shape)?;

    Ok(MergedLayer {
        name: head_name,
        class,
        in_shape,
        out_shape,
        flops,
        weight_bytes,
        nodes,
    })
}

/// Composes the receptive field of a merged layer by walking every path from
/// `prev` to the merged tail and taking the widest composed window.
fn merged_receptive_field(graph: &Graph, prev: NodeId, nodes: &[NodeId]) -> Result<ReceptiveField> {
    // Dynamic programming over the merged sub-DAG: rf_to[n] is the composed
    // window from `prev`'s output to n's output.
    use std::collections::HashMap;
    let mut rf_to: HashMap<NodeId, ReceptiveField> = HashMap::new();
    rf_to.insert(prev, ReceptiveField::identity());
    for &id in nodes {
        let n = graph.node(id)?;
        let own = node_rf(n);
        let mut best: Option<ReceptiveField> = None;
        for &inp in &n.inputs {
            if let Some(base) = rf_to.get(&inp) {
                let composed = base.then(&own);
                best = Some(match best {
                    None => composed,
                    Some(b) => {
                        if composed.stride != b.stride {
                            return Err(ModelError::Unmergeable(format!(
                                "branch arms of {} disagree on composed stride",
                                n.name
                            )));
                        }
                        if composed.kernel >= b.kernel {
                            composed
                        } else {
                            b
                        }
                    }
                });
            }
        }
        let rf = best.ok_or_else(|| {
            ModelError::Unmergeable(format!("node {} disconnected from module input", n.name))
        })?;
        rf_to.insert(id, rf);
    }
    let tail = *nodes.last().expect("non-empty");
    Ok(rf_to[&tail])
}

/// The local window of a single node.
fn node_rf(node: &Node) -> ReceptiveField {
    match node.op {
        LayerOp::Conv2d {
            kernel,
            stride,
            padding,
            ..
        }
        | LayerOp::DepthwiseConv2d {
            kernel,
            stride,
            padding,
        }
        | LayerOp::MaxPool2d {
            kernel,
            stride,
            padding,
        }
        | LayerOp::AvgPool2d {
            kernel,
            stride,
            padding,
        } => ReceptiveField {
            kernel,
            stride,
            padding,
        },
        _ => ReceptiveField::identity(),
    }
}

/// Sanity-checks that a ConvLike merged layer's composed receptive field
/// reproduces the inferred output height.
fn validate_spatial_consistency(
    class: &LayerClass,
    in_shape: &Shape,
    out_shape: &Shape,
) -> Result<()> {
    if let LayerClass::ConvLike { rf, .. } = class {
        let in_h = in_shape.dim(1).map_err(ModelError::Tensor)?;
        let out_h = out_shape.dim(1).map_err(ModelError::Tensor)?;
        if rf.output_rows(in_h) != out_h {
            return Err(ModelError::Unmergeable(format!(
                "composed receptive field {rf:?} predicts {} output rows, graph says {out_h}",
                rf.output_rows(in_h)
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conv(out_channels: usize, kernel: usize, stride: usize, padding: usize) -> LayerOp {
        LayerOp::Conv2d {
            out_channels,
            kernel,
            stride,
            padding,
        }
    }

    /// input -> conv -> bn -> relu -> pool -> flatten -> dense -> softmax
    fn small_cnn() -> Graph {
        let mut g = Graph::new();
        let input = g
            .add(
                "input",
                LayerOp::Input {
                    shape: Shape::new(vec![3, 8, 8]),
                },
                &[],
            )
            .unwrap();
        let c = g.add("conv1", conv(4, 3, 1, 1), &[input]).unwrap();
        let b = g.add("bn1", LayerOp::BatchNorm, &[c]).unwrap();
        let r = g.add("relu1", LayerOp::Relu, &[b]).unwrap();
        let p = g
            .add(
                "pool1",
                LayerOp::MaxPool2d {
                    kernel: 2,
                    stride: 2,
                    padding: 0,
                },
                &[r],
            )
            .unwrap();
        let f = g.add("flatten", LayerOp::Flatten, &[p]).unwrap();
        let d = g
            .add("fc", LayerOp::Dense { out_features: 10 }, &[f])
            .unwrap();
        g.add("softmax", LayerOp::Softmax, &[d]).unwrap();
        g
    }

    #[test]
    fn chain_merging_folds_element_wise() {
        let model = merge_graph("small", small_cnn()).unwrap();
        let layers = model.layers();
        assert_eq!(
            layers.len(),
            3,
            "{:?}",
            layers.iter().map(|l| &l.name).collect::<Vec<_>>()
        );
        // conv1 + bn + relu
        assert_eq!(layers[0].name, "conv1");
        assert_eq!(layers[0].nodes.len(), 3);
        assert!(matches!(
            layers[0].class,
            LayerClass::ConvLike {
                channel_splittable: true,
                channel_local: false,
                ..
            }
        ));
        // pool1
        assert_eq!(layers[1].name, "pool1");
        assert!(matches!(
            layers[1].class,
            LayerClass::ConvLike {
                channel_splittable: false,
                channel_local: true,
                ..
            }
        ));
        // flatten + fc + softmax
        assert_eq!(layers[2].name, "flatten");
        assert_eq!(layers[2].class, LayerClass::DenseLike);
        assert_eq!(layers[2].nodes.len(), 3);
    }

    #[test]
    fn merged_shapes_chain() {
        let model = merge_graph("small", small_cnn()).unwrap();
        let layers = model.layers();
        for pair in layers.windows(2) {
            assert_eq!(pair[0].out_shape, pair[1].in_shape);
        }
        assert_eq!(layers[0].in_shape, *model.input_shape());
        assert_eq!(layers.last().unwrap().out_shape.dims(), &[10]);
    }

    /// input -> conv -> [branch: conv3x3 -> conv3x3 | identity] -> add -> relu
    fn residual_graph(downsample: bool) -> Graph {
        let mut g = Graph::new();
        let input = g
            .add(
                "input",
                LayerOp::Input {
                    shape: Shape::new(vec![4, 8, 8]),
                },
                &[],
            )
            .unwrap();
        let stem = g.add("stem", conv(8, 3, 1, 1), &[input]).unwrap();
        let stride = if downsample { 2 } else { 1 };
        let a1 = g.add("block_a1", conv(8, 3, stride, 1), &[stem]).unwrap();
        let a1r = g.add("block_a1_relu", LayerOp::Relu, &[a1]).unwrap();
        let a2 = g.add("block_a2", conv(8, 3, 1, 1), &[a1r]).unwrap();
        let shortcut = if downsample {
            g.add("block_sc", conv(8, 1, 2, 0), &[stem]).unwrap()
        } else {
            stem
        };
        let add = g.add("block_add", LayerOp::Add, &[a2, shortcut]).unwrap();
        g.add("block_relu", LayerOp::Relu, &[add]).unwrap();
        g
    }

    #[test]
    fn residual_block_merges_into_one_layer() {
        let model = merge_graph("res", residual_graph(false)).unwrap();
        let layers = model.layers();
        assert_eq!(layers.len(), 2);
        assert_eq!(layers[0].name, "stem");
        let block = &layers[1];
        // conv a1 + relu + conv a2 + add + relu = 5 nodes.
        assert_eq!(block.nodes.len(), 5);
        match block.class {
            LayerClass::ConvLike {
                rf,
                channel_splittable,
                channel_local,
            } => {
                // Two stacked 3x3 s1 p1 convs: k=5, s=1, p=2.
                assert_eq!(
                    rf,
                    ReceptiveField {
                        kernel: 5,
                        stride: 1,
                        padding: 2
                    }
                );
                assert!(!channel_splittable);
                assert!(!channel_local);
            }
            other => panic!("expected ConvLike, got {other:?}"),
        }
    }

    #[test]
    fn downsample_block_composes_stride() {
        let model = merge_graph("res", residual_graph(true)).unwrap();
        let block = &model.layers()[1];
        let rf = block.class.receptive_field().unwrap();
        assert_eq!(rf.stride, 2);
        assert_eq!(block.out_shape.dims(), &[8, 4, 4]);
        assert_eq!(rf.output_rows(8), 4);
    }

    #[test]
    fn lstm_chain_merges_to_recurrent_layers() {
        let mut g = Graph::new();
        let input = g
            .add(
                "input",
                LayerOp::Input {
                    shape: Shape::new(vec![5, 16]),
                },
                &[],
            )
            .unwrap();
        let l1 = g
            .add("lstm1", LayerOp::Lstm { hidden: 16 }, &[input])
            .unwrap();
        g.add("lstm2", LayerOp::Lstm { hidden: 16 }, &[l1]).unwrap();
        let model = merge_graph("rnn", g).unwrap();
        assert_eq!(model.layers().len(), 2);
        assert!(model
            .layers()
            .iter()
            .all(|l| l.class == LayerClass::Recurrent));
    }

    #[test]
    fn gap_becomes_reduction() {
        let mut g = Graph::new();
        let input = g
            .add(
                "input",
                LayerOp::Input {
                    shape: Shape::new(vec![4, 4, 4]),
                },
                &[],
            )
            .unwrap();
        let c = g.add("conv", conv(8, 3, 1, 1), &[input]).unwrap();
        let gap = g.add("gap", LayerOp::GlobalAvgPool, &[c]).unwrap();
        let f = g.add("flat", LayerOp::Flatten, &[gap]).unwrap();
        g.add("fc", LayerOp::Dense { out_features: 10 }, &[f])
            .unwrap();
        let model = merge_graph("m", g).unwrap();
        let classes: Vec<_> = model.layers().iter().map(|l| l.class).collect();
        assert_eq!(
            classes,
            vec![
                LayerClass::ConvLike {
                    rf: ReceptiveField {
                        kernel: 3,
                        stride: 1,
                        padding: 1
                    },
                    channel_splittable: true,
                    channel_local: false
                },
                LayerClass::Reduction,
                LayerClass::DenseLike
            ]
        );
    }

    #[test]
    fn rejects_graph_without_input_head() {
        let mut g = Graph::new();
        // A lone input is fine but a graph headed by something else is not.
        g.add(
            "input",
            LayerOp::Input {
                shape: Shape::new(vec![1]),
            },
            &[],
        )
        .unwrap();
        let ok = merge_graph("empty-model", g);
        // Input-only graph produces zero layers.
        assert_eq!(ok.unwrap().layers().len(), 0);
        let g2 = Graph::new();
        assert!(merge_graph("e", g2).is_err());
    }

    #[test]
    fn flops_and_weights_are_conserved_by_merging() {
        let g = small_cnn();
        let total_flops = g.total_flops();
        let total_weights = 4 * g.total_params();
        let model = merge_graph("small", g).unwrap();
        assert_eq!(model.total_flops(), total_flops);
        assert_eq!(model.weight_bytes(), total_weights);
    }
}
