//! Error type for graph construction, merging, and execution.

use std::fmt;

use gillis_tensor::TensorError;

/// Error returned by graph construction, shape inference, merging, and the
/// reference executor.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A node referenced an input id that does not exist (or comes later in
    /// the construction order).
    UnknownNode(usize),
    /// An operation received inputs whose count or shapes are invalid.
    BadWiring(String),
    /// The graph violates a structural assumption of the merging pass, e.g.
    /// a branch module whose arms cannot be merged.
    Unmergeable(String),
    /// The executor was asked for a computation the layer does not support
    /// (e.g. a row-range of a dense layer).
    Unsupported(String),
    /// Weights were missing or malformed for a node.
    BadWeights(String),
    /// An underlying tensor kernel failed.
    Tensor(TensorError),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::UnknownNode(id) => write!(f, "unknown node id {id}"),
            ModelError::BadWiring(msg) => write!(f, "bad wiring: {msg}"),
            ModelError::Unmergeable(msg) => write!(f, "unmergeable graph: {msg}"),
            ModelError::Unsupported(msg) => write!(f, "unsupported operation: {msg}"),
            ModelError::BadWeights(msg) => write!(f, "bad weights: {msg}"),
            ModelError::Tensor(e) => write!(f, "tensor error: {e}"),
        }
    }
}

impl std::error::Error for ModelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ModelError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

#[doc(hidden)]
impl From<TensorError> for ModelError {
    fn from(e: TensorError) -> Self {
        ModelError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gillis_tensor::Shape;

    #[test]
    fn display_and_source() {
        let e = ModelError::Tensor(TensorError::DimOutOfRange { dim: 3, rank: 2 });
        assert!(e.to_string().contains("tensor error"));
        assert!(std::error::Error::source(&e).is_some());
        let e2 = ModelError::Unmergeable("x".into());
        assert!(std::error::Error::source(&e2).is_none());
        let _ = ModelError::Tensor(TensorError::ShapeMismatch {
            expected: Shape::new(vec![1]),
            actual: Shape::new(vec![2]),
        })
        .to_string();
    }
}
