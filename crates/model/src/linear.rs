//! The linear model: what the partitioner consumes after merging.

use std::ops::Range;

use serde::{Deserialize, Serialize};

use gillis_tensor::Shape;

use crate::graph::{Graph, NodeId};

/// Composed receptive-field geometry of a (merged) spatial layer: the square
/// kernel/stride/padding an output element's dependency cone projects onto
/// the layer's input.
///
/// Receptive fields compose: applying `a` then `b` behaves like a single
/// window of kernel `a.k + (b.k - 1) * a.s`, stride `a.s * b.s`, padding
/// `a.p + b.p * a.s`. This is how a layer *group* computes the input halo a
/// spatial partition needs (paper §III-C, Fig 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReceptiveField {
    /// Effective square-kernel side length.
    pub kernel: usize,
    /// Effective stride.
    pub stride: usize,
    /// Effective symmetric padding.
    pub padding: usize,
}

impl ReceptiveField {
    /// The identity window (1×1, stride 1, no padding).
    pub fn identity() -> Self {
        ReceptiveField {
            kernel: 1,
            stride: 1,
            padding: 0,
        }
    }

    /// Receptive field of applying `self` first, then `next`.
    pub fn then(&self, next: &ReceptiveField) -> ReceptiveField {
        ReceptiveField {
            kernel: self.kernel + (next.kernel - 1) * self.stride,
            stride: self.stride * next.stride,
            padding: self.padding + next.padding * self.stride,
        }
    }

    /// Input rows required to compute output rows `out`, clamped to an input
    /// of height `in_h`. Returns `(rows, pad_top, pad_bottom)` where the pads
    /// are the zero rows the partition must synthesize because its window
    /// extends past the true tensor border.
    pub fn input_rows(&self, out: Range<usize>, in_h: usize) -> (Range<usize>, usize, usize) {
        if out.is_empty() {
            return (0..0, 0, 0);
        }
        let lo = out.start as isize * self.stride as isize - self.padding as isize;
        let hi = (out.end - 1) as isize * self.stride as isize - self.padding as isize
            + self.kernel as isize;
        let pad_top = (-lo).max(0) as usize;
        let pad_bottom = (hi - in_h as isize).max(0) as usize;
        let start = lo.max(0) as usize;
        let end = (hi.min(in_h as isize)).max(lo.max(0)) as usize;
        (start..end, pad_top, pad_bottom)
    }

    /// Number of output rows produced from an input of height `in_h`
    /// (symmetric padding applied).
    pub fn output_rows(&self, in_h: usize) -> usize {
        let padded = in_h + 2 * self.padding;
        if padded < self.kernel {
            0
        } else {
            (padded - self.kernel) / self.stride + 1
        }
    }
}

/// Partitioning class of a merged layer — what Gillis's tensor-dependency
/// analysis (§III-C) concludes about it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LayerClass {
    /// Convolution-like: output elements have a *local* spatial response, so
    /// the layer can be partitioned along height/width given a halo.
    ConvLike {
        /// Composed receptive field of the merged layer.
        rf: ReceptiveField,
        /// Whether output-channel partitioning is possible by splitting the
        /// filter bank (true only when the merged layer contains exactly one
        /// weighted convolution — Fig 2b).
        channel_splittable: bool,
        /// Whether output channel `c` depends only on input channel `c`
        /// (true for pooling/element-wise-only merged layers), so channel
        /// partitions chain through without weight splitting.
        channel_local: bool,
    },
    /// Fully-connected-like: every output depends on the entire input; only
    /// output-unit (weight-split) partitioning is possible, and the layer is
    /// a barrier for layer grouping (Fig 6's `L3`).
    DenseLike,
    /// Global reduction over space (global average pooling): channel-local
    /// but not spatially partitionable.
    Reduction,
    /// Recurrent (LSTM): no intra-layer parallelization (paper §V-B); the
    /// partitioner may only place whole layers.
    Recurrent,
}

impl LayerClass {
    /// Whether this class supports spatial (height/width) partitioning.
    pub fn supports_spatial(&self) -> bool {
        matches!(self, LayerClass::ConvLike { .. })
    }

    /// The receptive field, if spatial.
    pub fn receptive_field(&self) -> Option<ReceptiveField> {
        match self {
            LayerClass::ConvLike { rf, .. } => Some(*rf),
            _ => None,
        }
    }

    /// Whether output channels can be computed from a filter subset applied
    /// to the full input.
    pub fn channel_splittable(&self) -> bool {
        match self {
            LayerClass::ConvLike {
                channel_splittable, ..
            } => *channel_splittable,
            LayerClass::DenseLike => true,
            LayerClass::Reduction => false,
            LayerClass::Recurrent => false,
        }
    }

    /// Whether output channel `c` depends only on input channel `c`.
    pub fn channel_local(&self) -> bool {
        match self {
            LayerClass::ConvLike { channel_local, .. } => *channel_local,
            LayerClass::Reduction => true,
            _ => false,
        }
    }
}

/// A merged layer: the unit of grouping and parallelization.
///
/// Produced by the merging pass ([`crate::merge::merge_graph`]): element-wise
/// operations are folded into the preceding weight-intensive node, and branch
/// modules (residual blocks, inception modules) become a single merged layer,
/// so the model becomes a linear chain (paper Fig 5).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MergedLayer {
    /// Name (taken from the head node).
    pub name: String,
    /// Partitioning class.
    pub class: LayerClass,
    /// Input shape (output shape of the previous merged layer).
    pub in_shape: Shape,
    /// Output shape.
    pub out_shape: Shape,
    /// Total forward FLOPs of all constituent nodes.
    pub flops: u64,
    /// Total weight bytes (f32) of all constituent nodes.
    pub weight_bytes: u64,
    /// Constituent graph nodes in topological order.
    pub nodes: Vec<NodeId>,
}

impl MergedLayer {
    /// Output activation size in bytes (f32).
    pub fn out_bytes(&self) -> u64 {
        4 * self.out_shape.len() as u64
    }

    /// Input activation size in bytes (f32).
    pub fn in_bytes(&self) -> u64 {
        4 * self.in_shape.len() as u64
    }
}

/// A model after merging: a linear chain of [`MergedLayer`]s plus the
/// original graph (kept for reference execution).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearModel {
    name: String,
    graph: Graph,
    layers: Vec<MergedLayer>,
    input_shape: Shape,
}

impl LinearModel {
    /// Assembles a linear model. Used by the merging pass and by tests that
    /// construct chains directly.
    pub fn new(
        name: impl Into<String>,
        graph: Graph,
        layers: Vec<MergedLayer>,
        input_shape: Shape,
    ) -> Self {
        LinearModel {
            name: name.into(),
            graph,
            layers,
            input_shape,
        }
    }

    /// Model name, e.g. `"vgg16"` or `"wrn-50-4"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The merged layers, in execution order.
    pub fn layers(&self) -> &[MergedLayer] {
        &self.layers
    }

    /// The underlying compute graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The query input shape.
    pub fn input_shape(&self) -> &Shape {
        &self.input_shape
    }

    /// Total weight bytes across all merged layers.
    pub fn weight_bytes(&self) -> u64 {
        self.layers.iter().map(|l| l.weight_bytes).sum()
    }

    /// Total forward FLOPs across all merged layers.
    pub fn total_flops(&self) -> u64 {
        self.layers.iter().map(|l| l.flops).sum()
    }

    /// A per-layer summary table: name, class, output shape, FLOPs, weights.
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        writeln!(
            s,
            "{} — {} merged layers, {:.1} GFLOPs, {:.0} MB weights",
            self.name,
            self.layers.len(),
            self.total_flops() as f64 / 1e9,
            self.weight_bytes() as f64 / 1e6
        )
        .ok();
        writeln!(
            s,
            "{:>3}  {:<14} {:<10} {:<16} {:>10} {:>11}",
            "#", "layer", "class", "output", "MFLOPs", "weights(MB)"
        )
        .ok();
        for (i, l) in self.layers.iter().enumerate() {
            let class = match l.class {
                LayerClass::ConvLike { .. } => "conv-like",
                LayerClass::DenseLike => "dense",
                LayerClass::Reduction => "reduction",
                LayerClass::Recurrent => "recurrent",
            };
            writeln!(
                s,
                "{:>3}  {:<14} {:<10} {:<16} {:>10.0} {:>11.1}",
                i,
                l.name,
                class,
                l.out_shape.to_string(),
                l.flops as f64 / 1e6,
                l.weight_bytes as f64 / 1e6
            )
            .ok();
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_rf_is_neutral_for_then() {
        let id = ReceptiveField::identity();
        let conv = ReceptiveField {
            kernel: 3,
            stride: 2,
            padding: 1,
        };
        assert_eq!(id.then(&conv), conv);
        assert_eq!(conv.then(&id), conv);
    }

    #[test]
    fn rf_composition_matches_known_values() {
        // Two 3x3 stride-1 pad-1 convs compose to 5x5 stride-1 pad-2.
        let c3 = ReceptiveField {
            kernel: 3,
            stride: 1,
            padding: 1,
        };
        let both = c3.then(&c3);
        assert_eq!(
            both,
            ReceptiveField {
                kernel: 5,
                stride: 1,
                padding: 2
            }
        );
        // 7x7/2/3 conv then 3x3/2/1 pool: k = 7 + 2*2 = 11, s = 4, p = 3 + 2 = 5.
        let c7 = ReceptiveField {
            kernel: 7,
            stride: 2,
            padding: 3,
        };
        let p3 = ReceptiveField {
            kernel: 3,
            stride: 2,
            padding: 1,
        };
        assert_eq!(
            c7.then(&p3),
            ReceptiveField {
                kernel: 11,
                stride: 4,
                padding: 5
            }
        );
    }

    #[test]
    fn rf_composition_is_associative_on_output_count() {
        let a = ReceptiveField {
            kernel: 3,
            stride: 1,
            padding: 1,
        };
        let b = ReceptiveField {
            kernel: 3,
            stride: 2,
            padding: 1,
        };
        let c = ReceptiveField {
            kernel: 5,
            stride: 1,
            padding: 2,
        };
        let left = a.then(&b).then(&c);
        let right = a.then(&b.then(&c));
        assert_eq!(left, right);
    }

    #[test]
    fn output_rows_matches_sequential_application() {
        let a = ReceptiveField {
            kernel: 3,
            stride: 2,
            padding: 1,
        };
        let b = ReceptiveField {
            kernel: 2,
            stride: 2,
            padding: 0,
        };
        let composed = a.then(&b);
        for h in [8usize, 16, 23, 224] {
            let seq = b.output_rows(a.output_rows(h));
            assert_eq!(composed.output_rows(h), seq, "h = {h}");
        }
    }

    #[test]
    fn input_rows_cover_and_clamp() {
        let rf = ReceptiveField {
            kernel: 3,
            stride: 1,
            padding: 1,
        };
        // Full output needs full input with pad 1 on both sides.
        let (rows, pt, pb) = rf.input_rows(0..8, 8);
        assert_eq!((rows, pt, pb), (0..8, 1, 1));
        // Interior slice needs a one-row halo on each side, no padding.
        let (rows, pt, pb) = rf.input_rows(3..5, 8);
        assert_eq!((rows, pt, pb), (2..6, 0, 0));
        // Top slice pads only at the top.
        let (rows, pt, pb) = rf.input_rows(0..4, 8);
        assert_eq!((rows, pt, pb), (0..5, 1, 0));
        // Empty range.
        let (rows, pt, pb) = rf.input_rows(2..2, 8);
        assert!(rows.is_empty());
        assert_eq!((pt, pb), (0, 0));
    }

    #[test]
    fn strided_input_rows() {
        let rf = ReceptiveField {
            kernel: 7,
            stride: 2,
            padding: 3,
        };
        // Output rows 0..112 of a 224-input (the classic ResNet stem).
        assert_eq!(rf.output_rows(224), 112);
        let (rows, pt, pb) = rf.input_rows(56..112, 224);
        // start = 56*2 - 3 = 109; end = 111*2 - 3 + 7 = 226 -> clamp 224, pad 2.
        assert_eq!(rows, 109..224);
        assert_eq!((pt, pb), (0, 2));
    }

    #[test]
    fn summary_lists_every_layer() {
        let model = crate::zoo::tiny_vgg();
        let s = model.summary();
        assert!(s.contains("tiny-vgg"));
        for l in model.layers() {
            assert!(s.contains(&l.name), "summary missing {}", l.name);
        }
        assert_eq!(s.lines().count(), model.layers().len() + 2);
    }

    #[test]
    fn class_capabilities() {
        let conv = LayerClass::ConvLike {
            rf: ReceptiveField::identity(),
            channel_splittable: true,
            channel_local: false,
        };
        assert!(conv.supports_spatial());
        assert!(conv.channel_splittable());
        assert!(!conv.channel_local());
        assert!(LayerClass::DenseLike.channel_splittable());
        assert!(!LayerClass::DenseLike.supports_spatial());
        assert!(LayerClass::Reduction.channel_local());
        assert!(!LayerClass::Recurrent.supports_spatial());
        assert!(LayerClass::ConvLike {
            rf: ReceptiveField::identity(),
            channel_splittable: false,
            channel_local: true
        }
        .channel_local());
    }
}
