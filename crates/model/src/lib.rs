//! DNN graph IR, layer merging, and the Gillis benchmark model zoo.
//!
//! The Gillis paper consumes ONNX models and serves them with MXNet. This
//! crate plays both roles for the reproduction:
//!
//! - [`op::LayerOp`] / [`graph::Graph`] — an ONNX-like compute-graph IR with
//!   shape inference and FLOP/parameter accounting.
//! - [`merge`] — the paper's §III-C merging pass: element-wise layers are
//!   folded into the preceding weight-intensive layer and parallel branches
//!   (residual / inception modules) are merged, producing a *linear* chain of
//!   [`linear::MergedLayer`]s that the partitioner consumes.
//! - [`zoo`] — programmatic builders for the paper's benchmark families:
//!   VGG-11/16/19, ResNet-34/50/101, WRN-{34,50}-{3,4,5}, and RNN-k.
//! - [`exec`] — a reference executor (full, row-range, and channel-range
//!   forward passes) standing in for MXNet, used to prove that partitioned
//!   execution is semantics-preserving.
//!
//! # Examples
//!
//! ```
//! use gillis_model::zoo;
//!
//! let model = zoo::vgg11();
//! assert!(model.layers().len() > 5);
//! // VGG-11 has ~133M parameters => ~530 MB of f32 weights.
//! let mb = model.weight_bytes() as f64 / (1024.0 * 1024.0);
//! assert!(mb > 400.0 && mb < 700.0);
//! ```

pub mod compiled;
pub mod error;
pub mod exec;
pub mod graph;
pub mod linear;
pub mod merge;
pub mod op;
pub mod weights;
pub mod zoo;

pub use error::ModelError;
pub use graph::{Graph, NodeId};
pub use linear::{LayerClass, LinearModel, MergedLayer, ReceptiveField};
pub use op::LayerOp;

/// Convenient result alias for fallible model operations.
pub type Result<T> = std::result::Result<T, ModelError>;
