//! Layer operations: the vocabulary of the compute-graph IR.

use serde::{Deserialize, Serialize};

use gillis_tensor::Shape;

use crate::error::ModelError;
use crate::Result;

/// A layer operation in the compute graph.
///
/// Spatial operations use square kernels/strides/padding — every model in
/// the paper's benchmark zoo is square. Shapes are single-query (no batch
/// dimension): `CHW` for spatial tensors, `[features]` for vectors, and
/// `[seq, features]` for recurrent layers.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum LayerOp {
    /// Graph input with a fixed shape.
    Input {
        /// Shape of the query tensor.
        shape: Shape,
    },
    /// 2-D convolution (square kernel), with bias.
    Conv2d {
        /// Number of output channels (filters).
        out_channels: usize,
        /// Kernel side length.
        kernel: usize,
        /// Stride.
        stride: usize,
        /// Symmetric padding.
        padding: usize,
    },
    /// Depthwise 2-D convolution: one filter per channel (MobileNet-style).
    /// Channel-local *and* spatially windowed — it chains through both
    /// partition dimensions.
    DepthwiseConv2d {
        /// Kernel side length.
        kernel: usize,
        /// Stride.
        stride: usize,
        /// Symmetric padding.
        padding: usize,
    },
    /// Inference-time batch normalization (element-wise per channel).
    BatchNorm,
    /// Rectified linear unit (element-wise).
    Relu,
    /// Max pooling (square window).
    MaxPool2d {
        /// Window side length.
        kernel: usize,
        /// Stride.
        stride: usize,
        /// Symmetric padding.
        padding: usize,
    },
    /// Average pooling (square window, padding excluded from divisor).
    AvgPool2d {
        /// Window side length.
        kernel: usize,
        /// Stride.
        stride: usize,
        /// Symmetric padding.
        padding: usize,
    },
    /// Global average pooling: `CHW` → `[C]`.
    GlobalAvgPool,
    /// Flattens any tensor to rank 1.
    Flatten,
    /// Fully connected layer with bias.
    Dense {
        /// Number of output features.
        out_features: usize,
    },
    /// Element-wise addition of two inputs (residual join).
    Add,
    /// Channel-wise concatenation of `n` inputs (inception join).
    Concat,
    /// One LSTM layer unrolled over the sequence: `[seq, in]` → `[seq, hidden]`.
    Lstm {
        /// Hidden size.
        hidden: usize,
    },
    /// Softmax over a rank-1 tensor.
    Softmax,
}

impl LayerOp {
    /// Number of graph inputs this op consumes.
    pub fn arity(&self) -> usize {
        match self {
            LayerOp::Input { .. } => 0,
            LayerOp::Add => 2,
            LayerOp::Concat => 2, // minimum; validated against actual inputs
            _ => 1,
        }
    }

    /// Whether this op is element-wise (freely partitionable along every
    /// dimension) — the class Gillis folds into preceding weight layers.
    pub fn is_element_wise(&self) -> bool {
        matches!(self, LayerOp::BatchNorm | LayerOp::Relu | LayerOp::Softmax)
    }

    /// Whether this op owns trainable weights.
    pub fn has_weights(&self) -> bool {
        matches!(
            self,
            LayerOp::Conv2d { .. }
                | LayerOp::DepthwiseConv2d { .. }
                | LayerOp::Dense { .. }
                | LayerOp::Lstm { .. }
                | LayerOp::BatchNorm
        )
    }

    /// Infers the output shape from the input shapes.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::BadWiring`] if the inputs are inconsistent with
    /// the op.
    pub fn infer_shape(&self, inputs: &[&Shape]) -> Result<Shape> {
        let one = |inputs: &[&Shape]| -> Result<Shape> {
            if inputs.len() != 1 {
                return Err(ModelError::BadWiring(format!(
                    "{self:?} expects 1 input, got {}",
                    inputs.len()
                )));
            }
            Ok(inputs[0].clone())
        };
        match self {
            LayerOp::Input { shape } => {
                if inputs.is_empty() {
                    Ok(shape.clone())
                } else {
                    Err(ModelError::BadWiring("input op takes no inputs".into()))
                }
            }
            LayerOp::Conv2d {
                out_channels,
                kernel,
                stride,
                padding,
            } => {
                let s = one(inputs)?;
                let d = chw(&s)?;
                let (oh, ow) =
                    spatial_out(d.1, d.2, *kernel, *stride, *padding).ok_or_else(|| {
                        ModelError::BadWiring(format!("conv kernel {kernel} larger than input {s}"))
                    })?;
                Ok(Shape::new(vec![*out_channels, oh, ow]))
            }
            LayerOp::DepthwiseConv2d {
                kernel,
                stride,
                padding,
            } => {
                let s = one(inputs)?;
                let d = chw(&s)?;
                let (oh, ow) =
                    spatial_out(d.1, d.2, *kernel, *stride, *padding).ok_or_else(|| {
                        ModelError::BadWiring(format!(
                            "depthwise kernel {kernel} larger than input {s}"
                        ))
                    })?;
                Ok(Shape::new(vec![d.0, oh, ow]))
            }
            LayerOp::BatchNorm | LayerOp::Relu => one(inputs),
            LayerOp::MaxPool2d {
                kernel,
                stride,
                padding,
            }
            | LayerOp::AvgPool2d {
                kernel,
                stride,
                padding,
            } => {
                let s = one(inputs)?;
                let d = chw(&s)?;
                let (oh, ow) =
                    spatial_out(d.1, d.2, *kernel, *stride, *padding).ok_or_else(|| {
                        ModelError::BadWiring(format!("pool window {kernel} larger than input {s}"))
                    })?;
                Ok(Shape::new(vec![d.0, oh, ow]))
            }
            LayerOp::GlobalAvgPool => {
                let s = one(inputs)?;
                let d = chw(&s)?;
                Ok(Shape::new(vec![d.0]))
            }
            LayerOp::Flatten => {
                let s = one(inputs)?;
                Ok(Shape::new(vec![s.len()]))
            }
            LayerOp::Dense { out_features } => {
                let s = one(inputs)?;
                if s.rank() != 1 {
                    return Err(ModelError::BadWiring(format!(
                        "dense expects rank-1 input, got {s}"
                    )));
                }
                Ok(Shape::new(vec![*out_features]))
            }
            LayerOp::Add => {
                if inputs.len() != 2 || inputs[0] != inputs[1] {
                    return Err(ModelError::BadWiring(format!(
                        "add expects two equal shapes, got {inputs:?}"
                    )));
                }
                Ok(inputs[0].clone())
            }
            LayerOp::Concat => {
                if inputs.len() < 2 {
                    return Err(ModelError::BadWiring("concat expects >= 2 inputs".into()));
                }
                let first = chw(inputs[0])?;
                let mut channels = 0;
                for s in inputs {
                    let d = chw(s)?;
                    if (d.1, d.2) != (first.1, first.2) {
                        return Err(ModelError::BadWiring(format!(
                            "concat spatial mismatch: {s} vs {}",
                            inputs[0]
                        )));
                    }
                    channels += d.0;
                }
                Ok(Shape::new(vec![channels, first.1, first.2]))
            }
            LayerOp::Lstm { hidden } => {
                let s = one(inputs)?;
                if s.rank() != 2 {
                    return Err(ModelError::BadWiring(format!(
                        "lstm expects [seq, features] input, got {s}"
                    )));
                }
                Ok(Shape::new(vec![s.dims()[0], *hidden]))
            }
            LayerOp::Softmax => {
                let s = one(inputs)?;
                if s.rank() != 1 {
                    return Err(ModelError::BadWiring(format!(
                        "softmax expects rank-1 input, got {s}"
                    )));
                }
                Ok(s)
            }
        }
    }

    /// Forward-pass floating-point operations for this op, given its input
    /// and output shapes (multiply-accumulate counted as 2 FLOPs).
    pub fn flops(&self, inputs: &[&Shape], output: &Shape) -> u64 {
        match self {
            LayerOp::Input { .. } | LayerOp::Flatten => 0,
            LayerOp::Conv2d { kernel, .. } => {
                let in_c = inputs[0].dims()[0] as u64;
                let out = output.len() as u64;
                2 * out * in_c * (*kernel as u64) * (*kernel as u64)
            }
            LayerOp::DepthwiseConv2d { kernel, .. } => {
                2 * output.len() as u64 * (*kernel as u64) * (*kernel as u64)
            }
            LayerOp::BatchNorm => 4 * output.len() as u64,
            LayerOp::Relu | LayerOp::Softmax => output.len() as u64,
            LayerOp::MaxPool2d { kernel, .. } | LayerOp::AvgPool2d { kernel, .. } => {
                output.len() as u64 * (*kernel as u64) * (*kernel as u64)
            }
            LayerOp::GlobalAvgPool => inputs[0].len() as u64,
            LayerOp::Dense { .. } => 2 * inputs[0].len() as u64 * output.len() as u64,
            LayerOp::Add => output.len() as u64,
            LayerOp::Concat => 0,
            LayerOp::Lstm { hidden } => {
                let seq = inputs[0].dims()[0] as u64;
                let in_f = inputs[0].dims()[1] as u64;
                let h = *hidden as u64;
                // Four gates, each a matvec over [in + hidden], per step.
                seq * (2 * 4 * h * (in_f + h) + 12 * h)
            }
        }
    }

    /// Number of trainable parameters, given input and output shapes.
    pub fn param_count(&self, inputs: &[&Shape], output: &Shape) -> u64 {
        match self {
            LayerOp::Conv2d {
                out_channels,
                kernel,
                ..
            } => {
                let in_c = inputs[0].dims()[0] as u64;
                let k = *kernel as u64;
                (*out_channels as u64) * in_c * k * k + *out_channels as u64
            }
            LayerOp::DepthwiseConv2d { kernel, .. } => {
                let c = inputs[0].dims()[0] as u64;
                let k = *kernel as u64;
                c * k * k + c
            }
            LayerOp::BatchNorm => 4 * inputs[0].dims()[0] as u64,
            LayerOp::Dense { out_features } => {
                (*out_features as u64) * inputs[0].len() as u64 + *out_features as u64
            }
            LayerOp::Lstm { hidden } => {
                let in_f = inputs[0].dims()[1] as u64;
                let h = *hidden as u64;
                4 * h * (in_f + h) + 4 * h
            }
            _ => {
                let _ = output;
                0
            }
        }
    }
}

/// Destructures a `CHW` shape.
fn chw(s: &Shape) -> Result<(usize, usize, usize)> {
    let d = s.dims();
    if d.len() != 3 {
        return Err(ModelError::BadWiring(format!(
            "expected CHW shape, got {s}"
        )));
    }
    Ok((d[0], d[1], d[2]))
}

/// Output spatial size of a square window sweep, or `None` if infeasible.
pub(crate) fn spatial_out(
    h: usize,
    w: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
) -> Option<(usize, usize)> {
    let ph = h + 2 * padding;
    let pw = w + 2 * padding;
    if ph < kernel || pw < kernel || stride == 0 {
        return None;
    }
    Some(((ph - kernel) / stride + 1, (pw - kernel) / stride + 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(dims: Vec<usize>) -> Shape {
        Shape::new(dims)
    }

    #[test]
    fn conv_shape_inference() {
        let op = LayerOp::Conv2d {
            out_channels: 64,
            kernel: 3,
            stride: 1,
            padding: 1,
        };
        let input = s(vec![3, 224, 224]);
        let out = op.infer_shape(&[&input]).unwrap();
        assert_eq!(out.dims(), &[64, 224, 224]);
    }

    #[test]
    fn strided_conv_downsamples() {
        let op = LayerOp::Conv2d {
            out_channels: 64,
            kernel: 7,
            stride: 2,
            padding: 3,
        };
        let out = op.infer_shape(&[&s(vec![3, 224, 224])]).unwrap();
        assert_eq!(out.dims(), &[64, 112, 112]);
    }

    #[test]
    fn pool_and_gap_shapes() {
        let pool = LayerOp::MaxPool2d {
            kernel: 2,
            stride: 2,
            padding: 0,
        };
        assert_eq!(
            pool.infer_shape(&[&s(vec![64, 112, 112])]).unwrap().dims(),
            &[64, 56, 56]
        );
        let gap = LayerOp::GlobalAvgPool;
        assert_eq!(
            gap.infer_shape(&[&s(vec![512, 7, 7])]).unwrap().dims(),
            &[512]
        );
    }

    #[test]
    fn add_requires_equal_shapes() {
        let a = s(vec![8, 4, 4]);
        let b = s(vec![8, 4, 4]);
        let c = s(vec![4, 4, 4]);
        assert!(LayerOp::Add.infer_shape(&[&a, &b]).is_ok());
        assert!(LayerOp::Add.infer_shape(&[&a, &c]).is_err());
        assert!(LayerOp::Add.infer_shape(&[&a]).is_err());
    }

    #[test]
    fn concat_sums_channels() {
        let a = s(vec![8, 4, 4]);
        let b = s(vec![16, 4, 4]);
        let out = LayerOp::Concat.infer_shape(&[&a, &b]).unwrap();
        assert_eq!(out.dims(), &[24, 4, 4]);
        let bad = s(vec![8, 2, 4]);
        assert!(LayerOp::Concat.infer_shape(&[&a, &bad]).is_err());
    }

    #[test]
    fn lstm_shape_and_params() {
        let op = LayerOp::Lstm { hidden: 2048 };
        let input = s(vec![10, 2048]);
        let out = op.infer_shape(&[&input]).unwrap();
        assert_eq!(out.dims(), &[10, 2048]);
        // 4*h*(in+h) + 4h with in = h = 2048 => ~33.6M params.
        let p = op.param_count(&[&input], &out);
        assert_eq!(p, 4 * 2048 * (2048 + 2048) + 4 * 2048);
    }

    #[test]
    fn conv_flops_match_formula() {
        let op = LayerOp::Conv2d {
            out_channels: 64,
            kernel: 3,
            stride: 1,
            padding: 1,
        };
        let input = s(vec![3, 224, 224]);
        let out = op.infer_shape(&[&input]).unwrap();
        let flops = op.flops(&[&input], &out);
        assert_eq!(flops, 2 * 64 * 224 * 224 * 3 * 3 * 3);
    }

    #[test]
    fn vgg_fc6_is_the_biggest_dense_layer() {
        // VGG fc6: 25088 -> 4096 = 102.8M params.
        let op = LayerOp::Dense { out_features: 4096 };
        let input = s(vec![25088]);
        let out = op.infer_shape(&[&input]).unwrap();
        assert_eq!(op.param_count(&[&input], &out), 25088 * 4096 + 4096);
    }

    #[test]
    fn infeasible_spatial_ops_are_rejected() {
        let op = LayerOp::Conv2d {
            out_channels: 1,
            kernel: 5,
            stride: 1,
            padding: 0,
        };
        assert!(op.infer_shape(&[&s(vec![1, 3, 3])]).is_err());
        let dense = LayerOp::Dense { out_features: 10 };
        assert!(dense.infer_shape(&[&s(vec![2, 3])]).is_err());
    }

    #[test]
    fn elementwise_classification() {
        assert!(LayerOp::Relu.is_element_wise());
        assert!(LayerOp::BatchNorm.is_element_wise());
        assert!(!LayerOp::Conv2d {
            out_channels: 1,
            kernel: 1,
            stride: 1,
            padding: 0
        }
        .is_element_wise());
        assert!(LayerOp::BatchNorm.has_weights());
        assert!(!LayerOp::Relu.has_weights());
    }
}
