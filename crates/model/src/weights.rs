//! Random weight materialization for executable (small) models.
//!
//! The zoo describes topology only; tests that check semantic equivalence of
//! partitioned execution materialize weights here. Initialization uses a
//! fan-in scale so activations neither vanish nor explode through deep
//! chains, keeping floating-point comparisons meaningful.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use gillis_tensor::ops::{BatchNormParams, LstmParams};
use gillis_tensor::{Shape, Tensor};

use crate::error::ModelError;
use crate::graph::{Graph, NodeId};
use crate::op::LayerOp;
use crate::Result;

/// Weights of a single node.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeWeights {
    /// Convolution: weight `[out_c, in_c, k, k]` and bias `[out_c]`.
    Conv {
        /// Filter bank.
        weight: Tensor,
        /// Bias.
        bias: Tensor,
    },
    /// Depthwise convolution: weight `[c, k, k]` and bias `[c]`.
    Depthwise {
        /// Per-channel filters.
        weight: Tensor,
        /// Bias.
        bias: Tensor,
    },
    /// Batch normalization parameters.
    Bn(BatchNormParams),
    /// Dense: weight `[out, in]` and bias `[out]`.
    Dense {
        /// Weight matrix.
        weight: Tensor,
        /// Bias.
        bias: Tensor,
    },
    /// LSTM parameters.
    Lstm(LstmParams),
}

/// All weights of a model, keyed by graph node.
#[derive(Debug, Clone, Default)]
pub struct ModelWeights {
    map: HashMap<NodeId, NodeWeights>,
}

impl ModelWeights {
    /// Creates an empty weight store.
    pub fn new() -> Self {
        ModelWeights::default()
    }

    /// Inserts weights for a node, replacing any previous entry.
    pub fn insert(&mut self, id: NodeId, weights: NodeWeights) {
        self.map.insert(id, weights);
    }

    /// Weights for a node.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::BadWeights`] if the node has no weights.
    pub fn get(&self, id: NodeId) -> Result<&NodeWeights> {
        self.map
            .get(&id)
            .ok_or_else(|| ModelError::BadWeights(format!("no weights for node {}", id.0)))
    }

    /// Number of nodes with weights.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

fn sample(rng: &mut StdRng, scale: f32) -> f32 {
    (rng.random::<f32>() * 2.0 - 1.0) * scale
}

fn random_tensor(rng: &mut StdRng, shape: Shape, fan_in: usize) -> Tensor {
    let scale = (1.0 / fan_in.max(1) as f32).sqrt();
    Tensor::from_fn(shape, |_| sample(rng, scale))
}

/// Generates deterministic random weights for every weighted node in `graph`.
///
/// # Errors
///
/// Returns [`ModelError::BadWiring`] if a weighted node has inconsistent
/// input shapes (should not happen for graphs built through [`Graph::add`]).
pub fn init_weights(graph: &Graph, seed: u64) -> Result<ModelWeights> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut weights = ModelWeights::new();
    for node in graph.nodes() {
        let in_shapes = graph.input_shapes(node);
        match &node.op {
            LayerOp::Conv2d {
                out_channels,
                kernel,
                ..
            } => {
                let in_c = in_shapes[0].dims()[0];
                let fan_in = in_c * kernel * kernel;
                let weight = random_tensor(
                    &mut rng,
                    Shape::new(vec![*out_channels, in_c, *kernel, *kernel]),
                    fan_in,
                );
                let bias = random_tensor(&mut rng, Shape::new(vec![*out_channels]), fan_in);
                weights.insert(node.id, NodeWeights::Conv { weight, bias });
            }
            LayerOp::DepthwiseConv2d { kernel, .. } => {
                let c = in_shapes[0].dims()[0];
                let fan_in = kernel * kernel;
                let weight = random_tensor(&mut rng, Shape::new(vec![c, *kernel, *kernel]), fan_in);
                let bias = random_tensor(&mut rng, Shape::new(vec![c]), fan_in);
                weights.insert(node.id, NodeWeights::Depthwise { weight, bias });
            }
            LayerOp::BatchNorm => {
                let c = in_shapes[0].dims()[0];
                let params = BatchNormParams {
                    gamma: Tensor::from_fn(Shape::new(vec![c]), |_| 0.5 + rng.random::<f32>()),
                    beta: random_tensor(&mut rng, Shape::new(vec![c]), 1),
                    mean: random_tensor(&mut rng, Shape::new(vec![c]), 1),
                    var: Tensor::from_fn(Shape::new(vec![c]), |_| 0.5 + rng.random::<f32>()),
                    eps: 1e-5,
                };
                weights.insert(node.id, NodeWeights::Bn(params));
            }
            LayerOp::Dense { out_features } => {
                let in_n = in_shapes[0].len();
                let weight = random_tensor(&mut rng, Shape::new(vec![*out_features, in_n]), in_n);
                let bias = random_tensor(&mut rng, Shape::new(vec![*out_features]), in_n);
                weights.insert(node.id, NodeWeights::Dense { weight, bias });
            }
            LayerOp::Lstm { hidden } => {
                let in_f = in_shapes[0].dims()[1];
                let params = LstmParams {
                    w_ih: random_tensor(&mut rng, Shape::new(vec![4 * hidden, in_f]), in_f),
                    w_hh: random_tensor(&mut rng, Shape::new(vec![4 * hidden, *hidden]), *hidden),
                    bias: random_tensor(&mut rng, Shape::new(vec![4 * hidden]), *hidden),
                };
                weights.insert(node.id, NodeWeights::Lstm(params));
            }
            _ => {}
        }
    }
    Ok(weights)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    #[test]
    fn init_covers_every_weighted_node() {
        let model = zoo::tiny_vgg();
        let weights = init_weights(model.graph(), 7).unwrap();
        let weighted = model
            .graph()
            .nodes()
            .iter()
            .filter(|n| n.op.has_weights())
            .count();
        assert_eq!(weights.len(), weighted);
        assert!(!weights.is_empty());
    }

    #[test]
    fn init_is_deterministic_in_seed() {
        let model = zoo::tiny_resnet();
        let a = init_weights(model.graph(), 42).unwrap();
        let b = init_weights(model.graph(), 42).unwrap();
        let c = init_weights(model.graph(), 43).unwrap();
        for node in model.graph().nodes() {
            if node.op.has_weights() {
                assert_eq!(a.get(node.id).unwrap(), b.get(node.id).unwrap());
            }
        }
        // Different seed produces different weights somewhere.
        let differs = model
            .graph()
            .nodes()
            .iter()
            .any(|n| n.op.has_weights() && a.get(n.id).unwrap() != c.get(n.id).unwrap());
        assert!(differs);
    }

    #[test]
    fn missing_weights_error() {
        let w = ModelWeights::new();
        assert!(matches!(w.get(NodeId(3)), Err(ModelError::BadWeights(_))));
    }

    #[test]
    fn weights_are_bounded_by_fan_in_scale() {
        let model = zoo::tiny_vgg();
        let weights = init_weights(model.graph(), 1).unwrap();
        for node in model.graph().nodes() {
            if let Ok(NodeWeights::Conv { weight, .. }) = weights.get(node.id) {
                let max = weight.data().iter().fold(0.0f32, |m, &x| m.max(x.abs()));
                assert!(max <= 1.0, "conv weight magnitude {max} too large");
            }
        }
    }
}
