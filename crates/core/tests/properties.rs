//! Property-based tests of partition geometry and plan accounting.

use proptest::prelude::*;

use gillis_core::partition::{analyze_group, balanced_ranges, group_options, PartitionWork};
use gillis_core::{ExecutionPlan, PartDim, PartitionOption, Placement, PlannedGroup};
use gillis_model::zoo;

proptest! {
    #[test]
    fn balanced_ranges_partition_exactly(total in 0usize..10_000, parts in 1usize..64) {
        let ranges = balanced_ranges(total, parts);
        prop_assert_eq!(ranges.len(), parts);
        let mut expected = 0;
        for r in &ranges {
            prop_assert_eq!(r.start, expected);
            expected = r.end;
        }
        prop_assert_eq!(expected, total);
        let sizes: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
        let min = sizes.iter().min().unwrap();
        let max = sizes.iter().max().unwrap();
        prop_assert!(max - min <= 1);
    }

    #[test]
    fn spatial_analysis_conserves_io_and_replicates_weights(
        start in 0usize..4,
        len in 1usize..3,
        parts_pick in 0usize..3,
    ) {
        let model = zoo::vgg11();
        let end = start + len;
        let opts = group_options(&model, start, end, &[2, 4, 8]);
        let spatial: Vec<PartitionOption> = opts
            .into_iter()
            .filter(|o| matches!(o, PartitionOption::Split { dim: PartDim::Height | PartDim::Width, .. }))
            .collect();
        prop_assume!(!spatial.is_empty());
        let option = spatial[parts_pick % spatial.len()];
        let split = analyze_group(&model, start, end, option).unwrap();
        let single = analyze_group(&model, start, end, PartitionOption::Single).unwrap();

        // Outputs tile the full output exactly.
        let out_total: u64 = split.partitions.iter().map(|p| p.output_bytes).sum();
        prop_assert_eq!(out_total, single.partitions[0].output_bytes);
        // Inputs cover at least the full input (halos only add).
        let in_total: u64 = split.partitions.iter().map(|p| p.input_bytes).sum();
        prop_assert!(in_total >= single.partitions[0].input_bytes);
        // Weights are replicated per partition.
        for p in &split.partitions {
            prop_assert_eq!(p.weight_bytes, single.partitions[0].weight_bytes);
        }
        // Halo redundancy only ever adds compute.
        prop_assert!(split.total_flops() >= single.total_flops());
    }

    #[test]
    fn channel_analysis_conserves_weights_and_flops(
        layer in 0usize..16,
        parts in 2usize..9,
    ) {
        let model = zoo::vgg11();
        let opts = group_options(&model, layer, layer + 1, &[parts]);
        prop_assume!(opts.contains(&PartitionOption::Split {
            dim: PartDim::Channel,
            parts
        }));
        let option = PartitionOption::Split {
            dim: PartDim::Channel,
            parts,
        };
        let split = analyze_group(&model, layer, layer + 1, option).unwrap();
        let single = analyze_group(&model, layer, layer + 1, PartitionOption::Single).unwrap();
        let w_split: u64 = split.partitions.iter().map(|p| p.weight_bytes).sum();
        let w_single = single.partitions[0].weight_bytes;
        // Weight split conserves total weights (up to per-part rounding).
        prop_assert!(w_split.abs_diff(w_single) <= parts as u64);
        let f_split = split.total_flops();
        let f_single = single.total_flops();
        prop_assert!(f_split.abs_diff(f_single) <= f_single / 100 + parts as u64);
        // Outputs tile exactly.
        let out: u64 = split.partitions.iter().map(PartitionWork::output_bytes_value).sum();
        prop_assert!(out.abs_diff(single.partitions[0].output_bytes) <= 4 * parts as u64);
    }

    #[test]
    fn plan_text_roundtrips_for_random_plans(
        cuts in prop::collection::vec(any::<bool>(), 16),
        picks in prop::collection::vec(any::<u8>(), 16),
    ) {
        let model = zoo::vgg11();
        let n = model.layers().len();
        let mut groups = Vec::new();
        let mut start = 0;
        for end in 1..=n {
            let force = end == n || group_options(&model, start, end + 1, &[2, 4]).is_empty();
            if !(force || cuts[end - 1]) {
                continue;
            }
            let opts = group_options(&model, start, end, &[2, 4]);
            let option = opts[picks[end - 1] as usize % opts.len()];
            groups.push(PlannedGroup {
                start,
                end,
                option,
                placement: if picks[end - 1] % 2 == 0 || option.parts() == 1 {
                    if option.parts() == 1 {
                        Placement::Master
                    } else {
                        Placement::MasterAndWorkers
                    }
                } else {
                    Placement::Workers
                },
            });
            start = end;
        }
        let plan = ExecutionPlan::new(groups);
        let parsed = ExecutionPlan::from_text(&plan.to_text()).unwrap();
        prop_assert_eq!(parsed, plan);
    }
}

/// Helper so the proptest above can sum output bytes through a method
/// pointer (keeps the closure form clippy-clean).
trait OutputBytes {
    fn output_bytes_value(&self) -> u64;
}

impl OutputBytes for PartitionWork {
    fn output_bytes_value(&self) -> u64 {
        self.output_bytes
    }
}
