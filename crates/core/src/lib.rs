//! Gillis model partitioning and fork-join serving (the paper's core
//! contribution).
//!
//! - [`partition`] — tensor-dependency-driven partition geometry (§III-C):
//!   spatial splits with halos, channel/weight splits, grouping rules.
//! - [`plan`] — execution plans: layer groups, options, placements.
//! - [`predict`] — latency/cost prediction of a plan with the performance
//!   model (what the DP and the RL reward both consume).
//! - [`dp`] — the latency-optimal dynamic-programming partitioner (§IV-B,
//!   Algorithm 1).
//! - [`forkjoin`] — the fork-join serving runtime over the platform
//!   simulator (§III-B), including semantics-preserving tensor execution and
//!   closed-loop workload serving.
//! - [`baselines`] — Default (single function) and Pipeline (S3-staged)
//!   baselines (§V-B).
//!
//! The SLO-aware reinforcement-learning partitioner lives in `gillis-rl`;
//! the Bayesian-optimization and brute-force baselines in `gillis-bo`.
//!
//! # Examples
//!
//! ```
//! use gillis_core::{DpPartitioner, PartitionerConfig};
//! use gillis_core::predict::predict_plan;
//! use gillis_faas::PlatformProfile;
//! use gillis_model::zoo;
//! use gillis_perf::PerfModel;
//!
//! # fn main() -> Result<(), gillis_core::CoreError> {
//! let model = zoo::vgg11();
//! let platform = PlatformProfile::aws_lambda();
//! let perf = PerfModel::analytic(&platform);
//! let plan = DpPartitioner::new(PartitionerConfig::default()).partition(&model, &perf)?;
//! let prediction = predict_plan(&model, &plan, &perf)?;
//! assert!(prediction.latency_ms > 0.0);
//! # Ok(())
//! # }
//! ```

pub mod baselines;
pub mod cache;
pub mod compiled_exec;
pub mod dp;
pub mod error;
pub mod forkjoin;
pub mod partition;
pub mod plan;
pub mod predict;
pub mod tail;

pub use cache::{CacheStats, EvalCache};
pub use compiled_exec::CompiledPlanExec;
pub use dp::{DpPartitioner, GroupEval, PartitionerConfig, PlanObjective};
pub use error::CoreError;
pub use forkjoin::{
    execute_plan_tensors, execute_plan_tensors_cancellable, execute_plan_tensors_resilient,
    execute_plan_tensors_with_threads, plan_batch_schedule, replication_seed, BatchSchedule,
    ClassSchedule, ForkJoinRuntime, QueryOutcome, ServingReport, SimulationReport,
};
pub use gillis_faas::batch::{BatchCounters, BatchPolicy, SloClass};
pub use gillis_faas::brownout::{
    ArrivalDecision, BrownoutController, BrownoutCounters, BrownoutLevel, BrownoutPolicy,
};
pub use gillis_faas::budget::{RetryBudget, RetryBudgetPolicy};
pub use gillis_faas::chaos::{
    wire_checksum, ChaosConfig, Fault, FaultDomain, FaultInjector, FaultSite, OutageConfig,
    OutageModel, QueryStatus, ResilienceCounters, ResiliencePolicy,
};
pub use gillis_faas::metrics::StatusLatency;
pub use gillis_faas::overload::{
    BreakerPolicy, BreakerState, CancelToken, CircuitBreaker, OverloadCounters, OverloadPolicy,
};
pub use gillis_faas::pipeline::{PipelineCounters, PipelinePolicy};
pub use gillis_faas::recovery::{
    CheckpointCache, RecoveryCounters, RecoveryPolicy, StageCheckpoint,
};
pub use partition::{
    analyze_group, analyze_group_with, group_options, ModelFlops, PartDim, PartitionOption,
};
pub use plan::{ExecutionPlan, Placement, PlannedGroup};
pub use predict::{
    predict_plan, predict_plan_batched, predict_plan_cached, predict_plan_pipelined,
    predict_recovery, scale_analysis_for_batch, t_pipeline, PipelinePrediction, PlanPrediction,
    RecoveryPrediction, StagePrediction, BATCH_AMORTIZED_FRACTION,
};
pub use tail::predict_latency_quantile;

/// Convenient result alias for fallible partitioning/serving operations.
pub type Result<T> = std::result::Result<T, CoreError>;
