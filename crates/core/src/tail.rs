//! Tail-latency prediction — the paper's §VI extension.
//!
//! The paper notes that its RL optimization applies to tail-latency SLOs
//! "as long as the tail latency can be accurately predicted". This module
//! provides that predictor: a Monte-Carlo estimate of any latency quantile
//! of a plan, drawing every random quantity from the *fitted* performance
//! model (the profiled jitter distribution and the profiled compute-noise
//! estimate) — never from the simulator's ground truth.

use rand::rngs::StdRng;
use rand::SeedableRng;

use gillis_faas::stats::sample_standard_normal;
use gillis_model::LinearModel;
use gillis_perf::PerfModel;

use crate::error::CoreError;
use crate::partition::PartitionWork;
use crate::plan::{ExecutionPlan, Placement};
use crate::predict::partition_compute_ms;
use crate::Result;

/// Monte-Carlo prediction of the `quantile`-th latency percentile of a plan
/// (e.g. `0.99` for p99), using `samples` draws from the performance model.
///
/// # Errors
///
/// Returns [`CoreError::InvalidArgument`] for a quantile outside `(0, 1)` or
/// zero samples, and propagates plan-analysis failures.
pub fn predict_latency_quantile(
    model: &LinearModel,
    plan: &ExecutionPlan,
    perf: &PerfModel,
    quantile: f64,
    samples: usize,
    seed: u64,
) -> Result<f64> {
    if !(quantile > 0.0 && quantile < 1.0) {
        return Err(CoreError::InvalidArgument(format!(
            "quantile must be in (0, 1), got {quantile}"
        )));
    }
    if samples == 0 {
        return Err(CoreError::InvalidArgument("zero samples".into()));
    }
    let analyses = plan.analyses(model)?;
    // Precompute per-partition mean compute times once.
    let mean_compute: Vec<Vec<f64>> = analyses
        .iter()
        .map(|a| {
            a.partitions
                .iter()
                .map(|p| partition_compute_ms(perf, p))
                .collect()
        })
        .collect();
    let noise = perf.layer.noise_rel_std();
    let jitter = perf.comm.jitter();
    let per_byte = perf.comm.per_byte_ms();
    let mut rng = StdRng::seed_from_u64(seed);

    let mut draws = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut latency = 0.0;
        for ((g, a), means) in plan
            .groups()
            .iter()
            .zip(analyses.iter())
            .zip(mean_compute.iter())
        {
            let sample_compute = |mean: f64, rng: &mut StdRng| {
                mean * (1.0 + noise * sample_standard_normal(rng)).max(0.1)
            };
            match g.placement {
                Placement::Master => {
                    latency += sample_compute(means[0], &mut rng);
                }
                Placement::Workers | Placement::MasterAndWorkers => {
                    let offset = if g.placement == Placement::Workers {
                        0
                    } else {
                        1
                    };
                    let worker_parts: &[PartitionWork] = &a.partitions[offset..];
                    let master = if offset == 1 {
                        sample_compute(means[0], &mut rng)
                    } else {
                        0.0
                    };
                    if worker_parts.is_empty() {
                        latency += master;
                        continue;
                    }
                    let n = worker_parts.len();
                    let fork_jitter = (0..n).map(|_| jitter.sample(&mut rng)).fold(0.0, f64::max);
                    let join_jitter = (0..n).map(|_| jitter.sample(&mut rng)).fold(0.0, f64::max);
                    let in_bytes: u64 = worker_parts.iter().map(|p| p.input_bytes).sum();
                    let out_bytes: u64 = worker_parts.iter().map(|p| p.output_bytes).sum();
                    let slowest = worker_parts
                        .iter()
                        .enumerate()
                        .map(|(i, _)| sample_compute(means[i + offset], &mut rng))
                        .fold(master, f64::max);
                    latency += fork_jitter
                        + per_byte * in_bytes as f64
                        + slowest
                        + join_jitter
                        + per_byte * out_bytes as f64;
                }
            }
        }
        draws.push(latency);
    }
    draws.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let rank = ((quantile * samples as f64).ceil() as usize).clamp(1, samples);
    Ok(draws[rank - 1])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp::DpPartitioner;
    use crate::predict::predict_plan;
    use gillis_faas::PlatformProfile;
    use gillis_model::zoo;

    fn setup() -> (LinearModel, ExecutionPlan, PerfModel, PlatformProfile) {
        let platform = PlatformProfile::aws_lambda();
        let perf = PerfModel::analytic(&platform);
        let model = zoo::vgg11();
        let plan = DpPartitioner::default().partition(&model, &perf).unwrap();
        (model, plan, perf, platform)
    }

    #[test]
    fn quantiles_are_monotone_and_bracket_the_mean() {
        let (model, plan, perf, _) = setup();
        let mean = predict_plan(&model, &plan, &perf).unwrap().latency_ms;
        let p50 = predict_latency_quantile(&model, &plan, &perf, 0.50, 2000, 1).unwrap();
        let p90 = predict_latency_quantile(&model, &plan, &perf, 0.90, 2000, 1).unwrap();
        let p99 = predict_latency_quantile(&model, &plan, &perf, 0.99, 2000, 1).unwrap();
        assert!(p50 <= p90 && p90 <= p99);
        assert!(p99 > mean, "p99 {p99} should exceed the mean {mean}");
        // The median sits near the mean prediction for mildly-skewed sums.
        assert!((p50 - mean).abs() / mean < 0.10, "p50 {p50} vs mean {mean}");
    }

    #[test]
    fn predicted_tail_matches_simulated_tail() {
        // The predictor (fitted quantities only) must track the simulator's
        // ground-truth tail within a few percent.
        let (model, plan, perf, platform) = setup();
        let p99_pred = predict_latency_quantile(&model, &plan, &perf, 0.99, 4000, 2).unwrap();
        let rt = crate::forkjoin::ForkJoinRuntime::new(&model, &plan, platform).unwrap();
        let mut rng: StdRng = SeedableRng::seed_from_u64(3);
        let mut sim: Vec<f64> = (0..4000)
            .map(|_| rt.simulate_query(&mut rng).latency_ms)
            .collect();
        sim.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let p99_sim = sim[(0.99 * 4000.0) as usize - 1];
        let rel = (p99_pred - p99_sim).abs() / p99_sim;
        assert!(
            rel < 0.05,
            "p99 predicted {p99_pred:.1} vs simulated {p99_sim:.1}"
        );
    }

    #[test]
    fn rejects_invalid_arguments() {
        let (model, plan, perf, _) = setup();
        assert!(predict_latency_quantile(&model, &plan, &perf, 0.0, 100, 1).is_err());
        assert!(predict_latency_quantile(&model, &plan, &perf, 1.0, 100, 1).is_err());
        assert!(predict_latency_quantile(&model, &plan, &perf, 0.5, 0, 1).is_err());
    }

    #[test]
    fn deterministic_in_seed() {
        let (model, plan, perf, _) = setup();
        let a = predict_latency_quantile(&model, &plan, &perf, 0.95, 500, 7).unwrap();
        let b = predict_latency_quantile(&model, &plan, &perf, 0.95, 500, 7).unwrap();
        assert_eq!(a, b);
    }
}
