//! Error type for partitioning and serving.

use std::fmt;

use gillis_faas::FaasError;
use gillis_model::ModelError;
use gillis_perf::PerfError;

/// Error returned by partitioning algorithms and the serving runtime.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// No feasible plan exists: some layer cannot fit any function under the
    /// memory budget with any partitioning option.
    Infeasible(String),
    /// A plan failed validation (gaps, overlaps, or memory violations).
    InvalidPlan(String),
    /// A single-function deployment exceeds the memory budget — the paper's
    /// motivating OOM condition.
    OutOfMemory {
        /// Required bytes.
        required: u64,
        /// Budget in bytes.
        budget: u64,
    },
    /// An argument was structurally invalid.
    InvalidArgument(String),
    /// A worker partition exhausted its retry budget and graceful
    /// degradation (master-local recompute) was disabled.
    WorkerFailed {
        /// Plan group index.
        group: usize,
        /// Partition index within the group.
        part: usize,
        /// Attempts consumed before giving up.
        attempts: u32,
        /// What the last failure looked like.
        reason: String,
    },
    /// The query's cancellation token fired (deadline expiry or an explicit
    /// cancel) and the master aborted at a checkpoint instead of completing
    /// doomed work.
    Cancelled {
        /// Plan group index the master was about to execute.
        group: usize,
    },
    /// A worker panicked and the panic payload was not an injected fault —
    /// a genuine executor bug surfaced at the join.
    WorkerPanic {
        /// Plan group index.
        group: usize,
        /// Partition index within the group.
        part: usize,
        /// The panic message, if it was a string.
        message: String,
    },
    /// Error from the model layer.
    Model(ModelError),
    /// Error from the platform simulator.
    Faas(FaasError),
    /// Error from the performance model.
    Perf(PerfError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Infeasible(msg) => write!(f, "no feasible plan: {msg}"),
            CoreError::InvalidPlan(msg) => write!(f, "invalid plan: {msg}"),
            CoreError::OutOfMemory { required, budget } => write!(
                f,
                "out of memory: {required} bytes required, {budget} bytes available"
            ),
            CoreError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            CoreError::WorkerFailed {
                group,
                part,
                attempts,
                reason,
            } => write!(
                f,
                "worker for group {group} part {part} failed after {attempts} attempts: {reason}"
            ),
            CoreError::Cancelled { group } => {
                write!(f, "query cancelled at group {group}")
            }
            CoreError::WorkerPanic {
                group,
                part,
                message,
            } => write!(
                f,
                "worker for group {group} part {part} panicked: {message}"
            ),
            CoreError::Model(e) => write!(f, "model error: {e}"),
            CoreError::Faas(e) => write!(f, "platform error: {e}"),
            CoreError::Perf(e) => write!(f, "performance model error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Model(e) => Some(e),
            CoreError::Faas(e) => Some(e),
            CoreError::Perf(e) => Some(e),
            _ => None,
        }
    }
}

#[doc(hidden)]
impl From<ModelError> for CoreError {
    fn from(e: ModelError) -> Self {
        CoreError::Model(e)
    }
}

#[doc(hidden)]
impl From<FaasError> for CoreError {
    fn from(e: FaasError) -> Self {
        CoreError::Faas(e)
    }
}

#[doc(hidden)]
impl From<PerfError> for CoreError {
    fn from(e: PerfError) -> Self {
        CoreError::Perf(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        let e: CoreError = ModelError::UnknownNode(3).into();
        assert!(e.to_string().contains("model error"));
        assert!(std::error::Error::source(&e).is_some());
        let e: CoreError = FaasError::NoSuchFunction("f".into()).into();
        assert!(e.to_string().contains("platform error"));
        let e: CoreError = PerfError::SingularSystem.into();
        assert!(e.to_string().contains("performance model"));
        let e = CoreError::OutOfMemory {
            required: 10,
            budget: 5,
        };
        assert!(e.to_string().contains("out of memory"));
        assert!(std::error::Error::source(&e).is_none());
        let e = CoreError::WorkerFailed {
            group: 2,
            part: 1,
            attempts: 4,
            reason: "injected crash".into(),
        };
        assert!(e.to_string().contains("failed after 4 attempts"));
        let e = CoreError::WorkerPanic {
            group: 0,
            part: 3,
            message: "boom".into(),
        };
        assert!(e.to_string().contains("panicked: boom"));
    }
}
