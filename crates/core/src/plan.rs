//! Execution plans: the output of the partitioning algorithms.

use serde::{Deserialize, Serialize};

use gillis_model::LinearModel;

use crate::error::CoreError;
use crate::partition::{analyze_group, group_options, GroupAnalysis, PartitionOption};
use crate::Result;

/// Where a group's partitions run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Placement {
    /// The group's single partition runs in the master function — no
    /// communication at all.
    Master,
    /// All partitions run on worker functions.
    Workers,
    /// Partition 0 runs in the master (using part of its memory budget);
    /// the rest go to workers. "The master can also help to compute a
    /// partition if having sufficient memory" (§III-B).
    MasterAndWorkers,
}

/// One planned layer group.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlannedGroup {
    /// First merged-layer index (inclusive).
    pub start: usize,
    /// Last merged-layer index (exclusive).
    pub end: usize,
    /// How the group is partitioned.
    pub option: PartitionOption,
    /// Where the partitions run.
    pub placement: Placement,
}

impl PlannedGroup {
    /// Number of worker functions this group invokes.
    pub fn worker_count(&self) -> usize {
        match self.placement {
            Placement::Master => 0,
            Placement::Workers => self.option.parts(),
            Placement::MasterAndWorkers => self.option.parts().saturating_sub(1),
        }
    }
}

/// A complete plan: contiguous groups covering every merged layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutionPlan {
    groups: Vec<PlannedGroup>,
}

impl ExecutionPlan {
    /// Wraps a group list into a plan (validate with
    /// [`ExecutionPlan::validate`]).
    pub fn new(groups: Vec<PlannedGroup>) -> Self {
        ExecutionPlan { groups }
    }

    /// The plan a single-function deployment uses: one group containing the
    /// whole model, computed in the master.
    pub fn single_function(model: &LinearModel) -> Self {
        ExecutionPlan {
            groups: vec![PlannedGroup {
                start: 0,
                end: model.layers().len(),
                option: PartitionOption::Single,
                placement: Placement::Master,
            }],
        }
    }

    /// The planned groups in execution order.
    pub fn groups(&self) -> &[PlannedGroup] {
        &self.groups
    }

    /// Analyses of every group, in order.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidArgument`] if a group/option pair is
    /// invalid for the model.
    pub fn analyses(&self, model: &LinearModel) -> Result<Vec<GroupAnalysis>> {
        self.groups
            .iter()
            .map(|g| analyze_group(model, g.start, g.end, g.option))
            .collect()
    }

    /// Total weight bytes held by the master function: partitions it
    /// computes, across all groups.
    ///
    /// # Errors
    ///
    /// Propagates analysis failures.
    pub fn master_weight_bytes(&self, model: &LinearModel) -> Result<u64> {
        let mut total = 0;
        for g in &self.groups {
            if matches!(g.placement, Placement::Master | Placement::MasterAndWorkers) {
                let a = analyze_group(model, g.start, g.end, g.option)?;
                total += a.partitions[0].weight_bytes;
            }
        }
        Ok(total)
    }

    /// Checks structural and memory validity of the plan against a model and
    /// a per-function memory budget.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidPlan`] for coverage gaps or invalid
    /// options, and [`CoreError::OutOfMemory`] when a worker partition or
    /// the master's accumulated weights exceed `budget_bytes`.
    pub fn validate(&self, model: &LinearModel, budget_bytes: u64) -> Result<()> {
        let n = model.layers().len();
        let mut expected = 0;
        for (gi, g) in self.groups.iter().enumerate() {
            if g.start != expected || g.end <= g.start || g.end > n {
                return Err(CoreError::InvalidPlan(format!(
                    "group {gi} spans {}..{} (expected start {expected}, model has {n} layers)",
                    g.start, g.end
                )));
            }
            expected = g.end;
            let valid_opts = group_options(model, g.start, g.end, &[g.option.parts()]);
            if !valid_opts.contains(&g.option) {
                return Err(CoreError::InvalidPlan(format!(
                    "group {gi} option {} is not feasible for layers {}..{}",
                    g.option, g.start, g.end
                )));
            }
            if g.option.parts() == 1 && g.placement == Placement::MasterAndWorkers {
                return Err(CoreError::InvalidPlan(format!(
                    "group {gi}: master-and-workers needs at least two partitions"
                )));
            }
            let analysis = analyze_group(model, g.start, g.end, g.option)?;
            let worker_parts: &[crate::partition::PartitionWork] = match g.placement {
                Placement::Master => &[],
                Placement::Workers => &analysis.partitions,
                Placement::MasterAndWorkers => &analysis.partitions[1..],
            };
            for p in worker_parts {
                if p.mem_bytes() > budget_bytes {
                    return Err(CoreError::OutOfMemory {
                        required: p.mem_bytes(),
                        budget: budget_bytes,
                    });
                }
            }
        }
        if expected != n {
            return Err(CoreError::InvalidPlan(format!(
                "plan covers {expected} of {n} layers"
            )));
        }
        let master = self.master_weight_bytes(model)?;
        if master > budget_bytes {
            return Err(CoreError::OutOfMemory {
                required: master,
                budget: budget_bytes,
            });
        }
        Ok(())
    }

    /// Coalesces runs of adjacent master-resident single-partition groups
    /// into one group. Master-only groups involve no communication, so the
    /// merge is behaviour- and cost-neutral; it just removes artificial
    /// boundaries a partitioner's search may leave behind (`Single` is valid
    /// for any span).
    pub fn coalesce_master_runs(&self) -> ExecutionPlan {
        let mut groups: Vec<PlannedGroup> = Vec::with_capacity(self.groups.len());
        for g in &self.groups {
            let mergeable = g.placement == Placement::Master
                && g.option == PartitionOption::Single
                && groups
                    .last()
                    .map(|p: &PlannedGroup| {
                        p.placement == Placement::Master && p.option == PartitionOption::Single
                    })
                    .unwrap_or(false);
            if mergeable {
                groups.last_mut().expect("checked non-empty").end = g.end;
            } else {
                groups.push(g.clone());
            }
        }
        ExecutionPlan::new(groups)
    }

    /// Human-readable description of the plan — the Fig 14 visualization.
    ///
    /// # Errors
    ///
    /// Propagates analysis failures.
    pub fn describe(&self, model: &LinearModel) -> Result<String> {
        use std::fmt::Write as _;
        let mut s = String::new();
        writeln!(
            s,
            "plan for {} ({} merged layers):",
            model.name(),
            model.layers().len()
        )
        .ok();
        for (gi, g) in self.groups.iter().enumerate() {
            let a = analyze_group(model, g.start, g.end, g.option)?;
            let names: Vec<&str> = model.layers()[g.start..g.end]
                .iter()
                .map(|l| l.name.as_str())
                .collect();
            let placement = match g.placement {
                Placement::Master => "master",
                Placement::Workers => "workers",
                Placement::MasterAndWorkers => "master+workers",
            };
            writeln!(
                s,
                "  group {:>2}: layers {:>2}..{:<2} [{}] option {:<7} on {:<14} ({} partitions, {:.1} MB weights each max)",
                gi + 1,
                g.start,
                g.end,
                names.join(", "),
                g.option.to_string(),
                placement,
                g.option.parts(),
                a.partitions
                    .iter()
                    .map(|p| p.weight_bytes)
                    .max()
                    .unwrap_or(0) as f64
                    / 1e6,
            )
            .ok();
        }
        Ok(s)
    }
}

impl std::str::FromStr for PartitionOption {
    type Err = CoreError;

    /// Parses the [`std::fmt::Display`] form: `single`, `Hx8`, `Wx4`, `Cx2`.
    fn from_str(s: &str) -> Result<Self> {
        if s == "single" {
            return Ok(PartitionOption::Single);
        }
        let (d, n) = s.split_once('x').ok_or_else(|| {
            CoreError::InvalidArgument(format!("unparseable partition option: {s}"))
        })?;
        let dim = match d {
            "H" => crate::partition::PartDim::Height,
            "W" => crate::partition::PartDim::Width,
            "C" => crate::partition::PartDim::Channel,
            other => {
                return Err(CoreError::InvalidArgument(format!(
                    "unknown partition dimension: {other}"
                )))
            }
        };
        let parts: usize = n
            .parse()
            .map_err(|_| CoreError::InvalidArgument(format!("bad part count: {n}")))?;
        if parts < 2 {
            return Err(CoreError::InvalidArgument(
                "split needs at least two parts".into(),
            ));
        }
        Ok(PartitionOption::Split { dim, parts })
    }
}

impl Placement {
    fn tag(&self) -> &'static str {
        match self {
            Placement::Master => "master",
            Placement::Workers => "workers",
            Placement::MasterAndWorkers => "master+workers",
        }
    }
}

impl std::str::FromStr for Placement {
    type Err = CoreError;

    fn from_str(s: &str) -> Result<Self> {
        match s {
            "master" => Ok(Placement::Master),
            "workers" => Ok(Placement::Workers),
            "master+workers" => Ok(Placement::MasterAndWorkers),
            other => Err(CoreError::InvalidArgument(format!(
                "unknown placement: {other}"
            ))),
        }
    }
}

impl ExecutionPlan {
    /// Serializes the plan to a compact line format, one group per line:
    /// `start end option placement`, preceded by a header. Stable across
    /// versions and human-editable — the deployment artifact a Gillis CLI
    /// stores next to the model.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::from("gillis-plan v1\n");
        for g in &self.groups {
            writeln!(
                s,
                "{} {} {} {}",
                g.start,
                g.end,
                g.option,
                g.placement.tag()
            )
            .ok();
        }
        s
    }

    /// Parses the format produced by [`ExecutionPlan::to_text`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidArgument`] on header or field errors; the
    /// result still needs [`ExecutionPlan::validate`] against a model.
    pub fn from_text(text: &str) -> Result<Self> {
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let header = lines
            .next()
            .ok_or_else(|| CoreError::InvalidArgument("empty plan text".into()))?;
        if header.trim() != "gillis-plan v1" {
            return Err(CoreError::InvalidArgument(format!(
                "unknown plan header: {header}"
            )));
        }
        let mut groups = Vec::new();
        for line in lines {
            let fields: Vec<&str> = line.split_whitespace().collect();
            if fields.len() != 4 {
                return Err(CoreError::InvalidArgument(format!(
                    "expected 4 fields per group line, got: {line}"
                )));
            }
            let parse_idx = |f: &str| -> Result<usize> {
                f.parse()
                    .map_err(|_| CoreError::InvalidArgument(format!("bad layer index: {f}")))
            };
            groups.push(PlannedGroup {
                start: parse_idx(fields[0])?,
                end: parse_idx(fields[1])?,
                option: fields[2].parse()?,
                placement: fields[3].parse()?,
            });
        }
        Ok(ExecutionPlan::new(groups))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::PartDim;
    use gillis_model::zoo;

    fn h_split(parts: usize) -> PartitionOption {
        PartitionOption::Split {
            dim: PartDim::Height,
            parts,
        }
    }

    #[test]
    fn single_function_plan_covers_model() {
        let vgg = zoo::vgg11();
        let plan = ExecutionPlan::single_function(&vgg);
        assert_eq!(plan.groups().len(), 1);
        // VGG-11 (531 MB) fits the Lambda budget.
        plan.validate(&vgg, 1_400_000_000).unwrap();
        // The master holds all weights.
        assert_eq!(plan.master_weight_bytes(&vgg).unwrap(), vgg.weight_bytes());
    }

    #[test]
    fn single_function_oom_for_large_model() {
        let wrn = zoo::wrn50(4);
        let plan = ExecutionPlan::single_function(&wrn);
        assert!(matches!(
            plan.validate(&wrn, 1_400_000_000),
            Err(CoreError::OutOfMemory { .. })
        ));
    }

    #[test]
    fn validate_rejects_gaps_and_overlaps() {
        let vgg = zoo::vgg11();
        let n = vgg.layers().len();
        // Gap: skips layer 0.
        let plan = ExecutionPlan::new(vec![PlannedGroup {
            start: 1,
            end: n,
            option: PartitionOption::Single,
            placement: Placement::Master,
        }]);
        assert!(matches!(
            plan.validate(&vgg, u64::MAX),
            Err(CoreError::InvalidPlan(_))
        ));
        // Short cover.
        let plan = ExecutionPlan::new(vec![PlannedGroup {
            start: 0,
            end: n - 1,
            option: PartitionOption::Single,
            placement: Placement::Master,
        }]);
        assert!(plan.validate(&vgg, u64::MAX).is_err());
    }

    #[test]
    fn validate_rejects_bad_option() {
        let rnn = zoo::rnn(3);
        let plan = ExecutionPlan::new(vec![PlannedGroup {
            start: 0,
            end: 3,
            option: h_split(2),
            placement: Placement::Workers,
        }]);
        assert!(matches!(
            plan.validate(&rnn, u64::MAX),
            Err(CoreError::InvalidPlan(_))
        ));
    }

    #[test]
    fn worker_counts_by_placement() {
        let g = |placement| PlannedGroup {
            start: 0,
            end: 1,
            option: h_split(4),
            placement,
        };
        assert_eq!(g(Placement::Workers).worker_count(), 4);
        assert_eq!(g(Placement::MasterAndWorkers).worker_count(), 3);
        let single = PlannedGroup {
            start: 0,
            end: 1,
            option: PartitionOption::Single,
            placement: Placement::Master,
        };
        assert_eq!(single.worker_count(), 0);
    }

    #[test]
    fn describe_mentions_every_group() {
        let vgg = zoo::vgg11();
        let n = vgg.layers().len();
        let mut groups = vec![PlannedGroup {
            start: 0,
            end: 2,
            option: h_split(4),
            placement: Placement::MasterAndWorkers,
        }];
        groups.push(PlannedGroup {
            start: 2,
            end: n,
            option: PartitionOption::Single,
            placement: Placement::Master,
        });
        let plan = ExecutionPlan::new(groups);
        let desc = plan.describe(&vgg).unwrap();
        assert!(desc.contains("group  1"));
        assert!(desc.contains("Hx4"));
        assert!(desc.contains("master+workers"));
    }

    #[test]
    fn coalescing_merges_only_master_single_runs() {
        let vgg = zoo::vgg11();
        let n = vgg.layers().len();
        let plan = ExecutionPlan::new(vec![
            PlannedGroup {
                start: 0,
                end: 1,
                option: h_split(2),
                placement: Placement::Workers,
            },
            PlannedGroup {
                start: 1,
                end: 3,
                option: PartitionOption::Single,
                placement: Placement::Master,
            },
            PlannedGroup {
                start: 3,
                end: 5,
                option: PartitionOption::Single,
                placement: Placement::Master,
            },
            PlannedGroup {
                start: 5,
                end: 6,
                option: PartitionOption::Single,
                placement: Placement::Workers, // worker single: not merged
            },
            PlannedGroup {
                start: 6,
                end: n,
                option: PartitionOption::Single,
                placement: Placement::Master,
            },
        ]);
        let coalesced = plan.coalesce_master_runs();
        assert_eq!(coalesced.groups().len(), 4);
        assert_eq!(coalesced.groups()[1].start, 1);
        assert_eq!(coalesced.groups()[1].end, 5);
        coalesced.validate(&vgg, u64::MAX).unwrap();
        // Prediction is unchanged by coalescing up to the per-group
        // framework overhead (one regression intercept per class per group,
        // ~0.1 ms): the merged plan can only be marginally faster.
        let perf = gillis_perf::PerfModel::analytic(&gillis_faas::PlatformProfile::aws_lambda());
        let a = crate::predict::predict_plan(&vgg, &plan, &perf).unwrap();
        let b = crate::predict::predict_plan(&vgg, &coalesced, &perf).unwrap();
        assert!(b.latency_ms <= a.latency_ms);
        assert!(
            (a.latency_ms - b.latency_ms) < 1.0,
            "overhead delta too large"
        );
        assert!(a.billed_ms.abs_diff(b.billed_ms) <= 2);
    }

    #[test]
    fn plan_text_roundtrip() {
        let vgg = zoo::vgg11();
        let n = vgg.layers().len();
        let plan = ExecutionPlan::new(vec![
            PlannedGroup {
                start: 0,
                end: 2,
                option: h_split(4),
                placement: Placement::MasterAndWorkers,
            },
            PlannedGroup {
                start: 2,
                end: n - 1,
                option: PartitionOption::Single,
                placement: Placement::Master,
            },
            PlannedGroup {
                start: n - 1,
                end: n,
                option: PartitionOption::Split {
                    dim: PartDim::Channel,
                    parts: 2,
                },
                placement: Placement::Workers,
            },
        ]);
        let text = plan.to_text();
        assert!(text.starts_with("gillis-plan v1"));
        let parsed = ExecutionPlan::from_text(&text).unwrap();
        assert_eq!(parsed, plan);
        parsed.validate(&vgg, u64::MAX).unwrap();
    }

    #[test]
    fn plan_text_rejects_garbage() {
        assert!(ExecutionPlan::from_text("").is_err());
        assert!(ExecutionPlan::from_text("not-a-plan\n0 1 single master").is_err());
        assert!(ExecutionPlan::from_text("gillis-plan v1\n0 1 single").is_err());
        assert!(ExecutionPlan::from_text("gillis-plan v1\n0 1 Qx4 master").is_err());
        assert!(ExecutionPlan::from_text("gillis-plan v1\n0 1 Hx1 master").is_err());
        assert!(ExecutionPlan::from_text("gillis-plan v1\nx 1 single master").is_err());
        assert!(ExecutionPlan::from_text("gillis-plan v1\n0 1 single orbit").is_err());
    }

    #[test]
    fn option_from_str_roundtrips_display() {
        for opt in [
            PartitionOption::Single,
            h_split(8),
            PartitionOption::Split {
                dim: PartDim::Channel,
                parts: 16,
            },
            PartitionOption::Split {
                dim: PartDim::Width,
                parts: 2,
            },
        ] {
            let s = opt.to_string();
            let parsed: PartitionOption = s.parse().unwrap();
            assert_eq!(parsed, opt);
        }
    }

    #[test]
    fn master_weight_accounting_splits_by_placement() {
        let vgg = zoo::vgg11();
        let n = vgg.layers().len();
        let plan = ExecutionPlan::new(vec![
            PlannedGroup {
                start: 0,
                end: 2,
                option: h_split(2),
                placement: Placement::Workers,
            },
            PlannedGroup {
                start: 2,
                end: n,
                option: PartitionOption::Single,
                placement: Placement::Master,
            },
        ]);
        let master = plan.master_weight_bytes(&vgg).unwrap();
        // Master holds everything except the first two layers.
        let first_two: u64 = vgg.layers()[..2].iter().map(|l| l.weight_bytes).sum();
        assert_eq!(master, vgg.weight_bytes() - first_two);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]

        /// The parser is total: arbitrary bytes (lossily decoded) produce
        /// `Ok` or `Err`, never a panic — plan files are a user-editable
        /// deployment artifact.
        #[test]
        fn from_text_never_panics_on_arbitrary_bytes(
            bytes in proptest::collection::vec(proptest::prelude::any::<u8>(), 0..256),
        ) {
            let text = String::from_utf8_lossy(&bytes);
            let _ = ExecutionPlan::from_text(&text);
        }

        /// Same, restricted to the plan-format alphabet (and with a valid
        /// header prepended) so inputs reach the field parsers instead of
        /// dying at the header check.
        #[test]
        fn from_text_never_panics_on_plan_alphabet(
            bytes in proptest::collection::vec(proptest::prelude::any::<u8>(), 0..256),
        ) {
            const ALPHABET: &[u8] = b"gillis-plan v1\n 0123456789HWCxmasterworkers+";
            let body: String = bytes
                .iter()
                .map(|&b| ALPHABET[b as usize % ALPHABET.len()] as char)
                .collect();
            let _ = ExecutionPlan::from_text(&body);
            let _ = ExecutionPlan::from_text(&format!("gillis-plan v1\n{body}"));
        }

        /// `to_text` -> `from_text` round-trips arbitrary structurally-valid
        /// plans exactly (validation against a model is a separate step).
        #[test]
        fn text_round_trip_preserves_plan(
            (seed, n) in (0u64..100_000, 1usize..12),
        ) {
            let mut state = seed;
            let mut next = move |m: usize| {
                state = state
                    .wrapping_mul(6_364_136_223_846_793_005)
                    .wrapping_add(1_442_695_040_888_963_407);
                ((state >> 33) as usize) % m
            };
            let mut groups = Vec::new();
            let mut start = next(3);
            for _ in 0..n {
                let end = start + 1 + next(4);
                let option = match next(4) {
                    0 => PartitionOption::Single,
                    1 => PartitionOption::Split { dim: PartDim::Height, parts: 2 + next(7) },
                    2 => PartitionOption::Split { dim: PartDim::Width, parts: 2 + next(7) },
                    _ => PartitionOption::Split { dim: PartDim::Channel, parts: 2 + next(7) },
                };
                let placement = if option == PartitionOption::Single {
                    Placement::Master
                } else if next(2) == 0 {
                    Placement::Workers
                } else {
                    Placement::MasterAndWorkers
                };
                groups.push(PlannedGroup { start, end, option, placement });
                start = end;
            }
            let plan = ExecutionPlan::new(groups);
            let parsed = ExecutionPlan::from_text(&plan.to_text()).unwrap();
            proptest::prop_assert_eq!(&plan, &parsed);
        }
    }
}
