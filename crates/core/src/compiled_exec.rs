//! Plan-level compiled execution: the steady-state warm path of a deployment.
//!
//! [`CompiledPlanExec`] lowers an [`ExecutionPlan`] over a model into a chain
//! of [`CompiledPartition`]s (one per planned group) plus one preallocated
//! join buffer per group. Compilation — plan validation, range balancing,
//! weight pre-slicing, batch-norm folding, and conv panel packing — happens
//! once per `(plan, model)`; a query then flows through the chain touching
//! only preallocated buffers.
//!
//! Piece dispatch mirrors [`execute_plan_tensors`](crate::forkjoin): the same
//! `PartDim` → axis mapping, the same [`balanced_ranges`] cuts, and a gather
//! in exactly [`Tensor::concat`]'s memory order, so the output is
//! bit-identical to the uncompiled path at any thread count (see the
//! property test at the bottom). With `threads <= 1` every piece runs inline
//! on the caller and the warm path performs zero heap allocations; with more
//! threads, pieces of a group fan out on the shared pool and channel-split
//! groups write their disjoint slices of the join buffer directly.
//!
//! Compilation fails with an error (never wrong results) on models the
//! compiled path does not cover — branching graphs (ResNet's `Add`,
//! inception `Concat`) and recurrent layers. Callers fall back to
//! [`execute_plan_tensors`](crate::forkjoin::execute_plan_tensors).

use gillis_model::compiled::{CompileOptions, CompiledPartition, PanelCache, PieceSpec};
use gillis_model::weights::ModelWeights;
use gillis_model::LinearModel;
use gillis_tensor::{Shape, Tensor};

use crate::partition::{balanced_ranges, PartDim, PartitionOption};
use crate::plan::ExecutionPlan;
use crate::{CoreError, Result};

/// One planned group, compiled, plus its preallocated join buffer.
struct CompiledGroup {
    partition: CompiledPartition,
    /// Join buffer the group's pieces are gathered (or directly written)
    /// into; doubles as the next group's input.
    out: Vec<f32>,
    /// Widened join buffer for batched runs (`n × out.len()`, item-major).
    /// Empty until the first batched run; capacity is monotone, so batches
    /// up to the largest `n` seen (or declared via
    /// [`CompiledPlanExec::reserve_batch`]) run allocation-free.
    batch_out: Vec<f32>,
}

/// A whole execution plan compiled for repeated inference.
///
/// Build once with [`CompiledPlanExec::compile`]; run once per query with
/// [`CompiledPlanExec::run_raw`] (borrowed output, allocation-free when
/// warm) or [`CompiledPlanExec::run`] (owned [`Tensor`]).
pub struct CompiledPlanExec {
    groups: Vec<CompiledGroup>,
    in_len: usize,
    /// Packed conv panels, kept so recompiles against the same weights can
    /// share them and for capacity reporting.
    panels: PanelCache,
}

impl CompiledPlanExec {
    /// Compiles `plan` over `model` and `weights`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidPlan`] if the plan does not validate, and
    /// the underlying [`ModelError`](gillis_model::ModelError) if the model
    /// is outside the compiled subset (branching graphs, recurrent layers) —
    /// in which case callers should fall back to the uncompiled path.
    pub fn compile(
        model: &LinearModel,
        plan: &ExecutionPlan,
        weights: &ModelWeights,
    ) -> Result<Self> {
        Self::compile_with(model, plan, weights, CompileOptions::default())
    }

    /// [`CompiledPlanExec::compile`] with explicit deployment options:
    /// int8-quantized weight panels and/or the int8 wire simulation on
    /// partitioned joins (see `gillis_model::compiled::CompileOptions`).
    ///
    /// # Errors
    ///
    /// Same conditions as [`CompiledPlanExec::compile`].
    pub fn compile_with(
        model: &LinearModel,
        plan: &ExecutionPlan,
        weights: &ModelWeights,
        opts: CompileOptions,
    ) -> Result<Self> {
        plan.validate(model, u64::MAX)?;
        let mut cache = PanelCache::new();
        let mut groups = Vec::with_capacity(plan.groups().len());
        let mut prev_len = model.input_shape().len();
        for g in plan.groups() {
            let layers = &model.layers()[g.start..g.end];
            let (specs, axis) = match g.option {
                PartitionOption::Single => (vec![PieceSpec::Full], 0),
                PartitionOption::Split { dim, parts } => {
                    let last = &layers[layers.len() - 1];
                    let (axis, total) = match dim {
                        PartDim::Height => (1usize, last.out_shape.dims()[1]),
                        PartDim::Width => (2usize, last.out_shape.dims()[2]),
                        PartDim::Channel => (0usize, last.out_shape.dims()[0]),
                    };
                    let specs = balanced_ranges(total, parts)
                        .into_iter()
                        .map(|r| match dim {
                            PartDim::Height => PieceSpec::Rows(r),
                            PartDim::Width => PieceSpec::Cols(r),
                            PartDim::Channel => PieceSpec::Channels(r),
                        })
                        .collect();
                    (specs, axis)
                }
            };
            let partition = CompiledPartition::compile_with(
                model.graph(),
                weights,
                layers,
                &specs,
                axis,
                &mut cache,
                opts,
            )?;
            if partition.in_len() != prev_len {
                return Err(CoreError::InvalidPlan(format!(
                    "compiled group {}..{} expects input length {}, previous group produces {}",
                    g.start,
                    g.end,
                    partition.in_len(),
                    prev_len
                )));
            }
            prev_len = partition.out_shape().len();
            let out = vec![0.0f32; prev_len];
            groups.push(CompiledGroup {
                partition,
                out,
                batch_out: Vec::new(),
            });
        }
        Ok(CompiledPlanExec {
            groups,
            in_len: model.input_shape().len(),
            panels: cache,
        })
    }

    /// Expected input element count.
    pub fn in_len(&self) -> usize {
        self.in_len
    }

    /// Shape of the model output.
    pub fn out_shape(&self) -> &Shape {
        self.groups
            .last()
            .expect("a validated plan has at least one group")
            .partition
            .out_shape()
    }

    /// Total bytes of packed conv panels held by this compilation.
    pub fn panel_bytes(&self) -> usize {
        self.panels.bytes()
    }

    /// Runs one query, returning a borrow of the final join buffer (and its
    /// shape). Uses the ambient [`gillis_pool::gillis_threads`] width.
    ///
    /// # Errors
    ///
    /// Propagates piece-execution errors (stale weights).
    pub fn run_raw(&mut self, weights: &ModelWeights, input: &[f32]) -> Result<(&[f32], &Shape)> {
        self.run_raw_with_threads(weights, input, gillis_pool::gillis_threads())
    }

    /// [`CompiledPlanExec::run_raw`] with an explicit thread count;
    /// `threads <= 1` runs every piece inline on the caller (the
    /// allocation-free path).
    ///
    /// # Errors
    ///
    /// Propagates piece-execution errors (stale weights).
    ///
    /// # Panics
    ///
    /// Panics if `input.len()` differs from [`CompiledPlanExec::in_len`].
    pub fn run_raw_with_threads(
        &mut self,
        weights: &ModelWeights,
        input: &[f32],
        threads: usize,
    ) -> Result<(&[f32], &Shape)> {
        assert_eq!(input.len(), self.in_len, "compiled plan input length");
        let n = self.groups.len();
        for i in 0..n {
            let (done, rest) = self.groups.split_at_mut(i);
            let cur: &[f32] = if i == 0 { input } else { &done[i - 1].out };
            let g = &mut rest[0];
            run_group(g, weights, cur, threads)?;
        }
        let last = &self.groups[n - 1];
        Ok((&last.out, last.partition.out_shape()))
    }

    /// Pre-grows every widened buffer in the chain for batches up to `n`,
    /// so batched runs within the declared range allocate nothing when warm.
    pub fn reserve_batch(&mut self, n: usize) {
        for g in &mut self.groups {
            g.partition.reserve_batch(n);
            let need = n * g.out.len();
            if g.batch_out.capacity() < need {
                g.batch_out.reserve(need - g.batch_out.len());
            }
        }
    }

    /// Runs a batch of `n` item-major queries (`n × in_len` contiguous),
    /// returning a borrow of the widened final join buffer (`n × out_len`,
    /// item-major) and the per-item shape. Uses the ambient thread width.
    ///
    /// # Errors
    ///
    /// Propagates piece-execution errors (stale weights).
    pub fn run_batch_raw(
        &mut self,
        weights: &ModelWeights,
        inputs: &[f32],
        n: usize,
    ) -> Result<(&[f32], &Shape)> {
        self.run_batch_raw_with_threads(weights, inputs, n, gillis_pool::gillis_threads())
    }

    /// [`CompiledPlanExec::run_batch_raw`] with an explicit thread count.
    ///
    /// Per-item outputs are bit-identical to `n` separate
    /// [`CompiledPlanExec::run_raw_with_threads`] calls at any thread count:
    /// every group dispatches its batch through the widened-B kernels whose
    /// bit-identity is proptest-enforced in `gillis-tensor`, and the int8
    /// wire round trip is applied per `(piece, item)` payload. `n == 1`
    /// delegates to [`CompiledPlanExec::run_raw_with_threads`] — the batch-1
    /// fast path runs byte-for-byte the pre-batching code and touches no
    /// widened buffer.
    ///
    /// # Errors
    ///
    /// Propagates piece-execution errors (stale weights).
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != n * in_len` or `n == 0`.
    pub fn run_batch_raw_with_threads(
        &mut self,
        weights: &ModelWeights,
        inputs: &[f32],
        n: usize,
        threads: usize,
    ) -> Result<(&[f32], &Shape)> {
        assert!(n > 0, "batch must be non-empty");
        assert_eq!(inputs.len(), n * self.in_len, "compiled plan batch length");
        if n == 1 {
            return self.run_raw_with_threads(weights, inputs, threads);
        }
        let n_groups = self.groups.len();
        for i in 0..n_groups {
            let (done, rest) = self.groups.split_at_mut(i);
            let cur: &[f32] = if i == 0 {
                inputs
            } else {
                &done[i - 1].batch_out
            };
            let g = &mut rest[0];
            run_group_batched(g, weights, cur, n, threads)?;
        }
        let last = &self.groups[n_groups - 1];
        Ok((&last.batch_out, last.partition.out_shape()))
    }

    /// Runs one query and materializes the output as an owned [`Tensor`].
    ///
    /// # Errors
    ///
    /// Propagates piece-execution errors (stale weights).
    pub fn run(&mut self, weights: &ModelWeights, input: &Tensor) -> Result<Tensor> {
        let (data, shape) = self.run_raw(weights, input.data())?;
        let shape = shape.clone();
        let data = data.to_vec();
        Ok(Tensor::from_vec(shape, data).map_err(gillis_model::ModelError::from)?)
    }
}

/// Runs one compiled group's pieces into its join buffer.
///
/// Sequential when `threads <= 1` or the group has a single piece; otherwise
/// the pieces fan out on the shared pool — contiguous joins (channel splits)
/// write disjoint `&mut` slices of the join buffer directly, strided joins
/// (spatial splits) run into per-piece buffers and gather afterwards in
/// [`Tensor::concat`] order.
fn run_group(
    g: &mut CompiledGroup,
    weights: &ModelWeights,
    input: &[f32],
    threads: usize,
) -> Result<()> {
    let n_pieces = g.partition.pieces_mut().len();
    if threads <= 1 || n_pieces <= 1 {
        g.partition.run_into(weights, input, &mut g.out)?;
        return Ok(());
    }
    let pool = gillis_pool::Pool::global();
    // Int8-wire deployments round-trip each piece's payload through the
    // quantized encoding on the worker that produced it, exactly as
    // `CompiledPartition::run_into` does sequentially — into the existing
    // join-buffer slot or piece output buffer, never a new allocation.
    let wire_int8 = g.partition.wire_int8();
    let mut errs: Vec<Option<gillis_model::ModelError>> = (0..n_pieces).map(|_| None).collect();
    match g.partition.contiguous_ranges() {
        Some(ranges) => {
            // Disjoint output slices: pieces write the join buffer in place.
            let mut tail: &mut [f32] = &mut g.out;
            let mut offset = 0;
            let mut slots = Vec::with_capacity(n_pieces);
            for r in &ranges {
                let (piece_out, rest) = tail.split_at_mut(r.end - offset);
                offset = r.end;
                tail = rest;
                slots.push(piece_out);
            }
            let tasks: Vec<gillis_pool::Task> = g
                .partition
                .pieces_mut()
                .iter_mut()
                .zip(slots)
                .zip(errs.iter_mut())
                .map(|((piece, out), err)| {
                    Box::new(move || match piece.run_into(weights, input, out) {
                        Err(e) => *err = Some(e),
                        Ok(()) if wire_int8 => {
                            gillis_tensor::quant::wire_roundtrip_in_place(out);
                        }
                        Ok(()) => {}
                    }) as gillis_pool::Task
                })
                .collect();
            pool.join_all(tasks);
        }
        None => {
            let tasks: Vec<gillis_pool::Task> = g
                .partition
                .pieces_mut()
                .iter_mut()
                .zip(errs.iter_mut())
                .map(|(piece, err)| {
                    Box::new(move || match piece.run(weights, input).map(|_| ()) {
                        Err(e) => *err = Some(e),
                        Ok(()) if wire_int8 => piece.wire_roundtrip_output(),
                        Ok(()) => {}
                    }) as gillis_pool::Task
                })
                .collect();
            pool.join_all(tasks);
            if errs.iter().all(Option::is_none) {
                g.partition.gather(&mut g.out);
            }
        }
    }
    match errs.into_iter().flatten().next() {
        Some(e) => Err(e.into()),
        None => Ok(()),
    }
}

/// Runs one compiled group over a batch of `n` item-major activations into
/// its widened join buffer.
///
/// Sequential dispatch delegates to [`CompiledPartition::run_batch_into`].
/// With `threads > 1` and multiple pieces, each piece runs its whole batch
/// on one pool worker (piece outputs interleave per item in the join buffer,
/// so pieces cannot write disjoint `&mut` slices of it as the per-query path
/// does); the gather afterwards copies in [`Tensor::concat`] order per item.
/// Both dispatches produce bit-identical buffers — the int8 wire round trip
/// commutes with the gather copy because it depends only on the slice values.
fn run_group_batched(
    g: &mut CompiledGroup,
    weights: &ModelWeights,
    inputs: &[f32],
    n: usize,
    threads: usize,
) -> Result<()> {
    g.batch_out.clear();
    g.batch_out.resize(n * g.out.len(), 0.0);
    let n_pieces = g.partition.pieces_mut().len();
    if threads <= 1 || n_pieces <= 1 {
        g.partition
            .run_batch_into(weights, inputs, n, &mut g.batch_out)?;
        return Ok(());
    }
    let wire_int8 = g.partition.wire_int8();
    let mut errs: Vec<Option<gillis_model::ModelError>> = (0..n_pieces).map(|_| None).collect();
    let tasks: Vec<gillis_pool::Task> = g
        .partition
        .pieces_mut()
        .iter_mut()
        .zip(errs.iter_mut())
        .map(|(piece, err)| {
            Box::new(
                move || match piece.run_batch(weights, inputs, n).map(|_| ()) {
                    Err(e) => *err = Some(e),
                    Ok(()) if wire_int8 => piece.wire_roundtrip_batch_output(),
                    Ok(()) => {}
                },
            ) as gillis_pool::Task
        })
        .collect();
    gillis_pool::Pool::global().join_all(tasks);
    match errs.into_iter().flatten().next() {
        Some(e) => Err(e.into()),
        None => {
            g.partition.gather_batch(n, &mut g.batch_out);
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forkjoin::execute_plan_tensors_with_threads;
    use crate::plan::{Placement, PlannedGroup};
    use gillis_model::weights::init_weights;
    use gillis_model::zoo;
    use proptest::prelude::*;

    fn query(shape: &Shape, seed: u64) -> Tensor {
        let mut x = seed | 1;
        Tensor::from_fn(shape.clone(), |_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            ((x % 1000) as f32 / 500.0) - 1.0
        })
    }

    fn assert_bits_eq(a: &Tensor, b: &Tensor, what: &str) {
        assert_eq!(a.shape(), b.shape(), "{what}: shape");
        for (i, (x, y)) in a.data().iter().zip(b.data().iter()).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{what}: element {i}: {x} vs {y}");
        }
    }

    /// Random valid plans for tiny-vgg: contiguous groups with a random
    /// option drawn from the group's feasible set.
    fn arb_plan(model: &LinearModel) -> impl Strategy<Value = ExecutionPlan> {
        let n = model.layers().len();
        let model = model.clone();
        // Random cut mask over layer boundaries + per-group option picks.
        (
            proptest::collection::vec(any::<bool>(), n - 1),
            proptest::collection::vec(0usize..64, n),
        )
            .prop_map(move |(cuts, picks)| {
                let mut bounds = vec![0usize];
                for (i, &c) in cuts.iter().enumerate() {
                    if c {
                        bounds.push(i + 1);
                    }
                }
                bounds.push(n);
                let mut groups = Vec::new();
                for (gi, w) in bounds.windows(2).enumerate() {
                    let opts = crate::partition::group_options(&model, w[0], w[1], &[2, 3, 4]);
                    let option = opts[picks[gi % picks.len()] % opts.len()];
                    groups.push(PlannedGroup {
                        start: w[0],
                        end: w[1],
                        option,
                        placement: match option {
                            PartitionOption::Single => Placement::Master,
                            _ => Placement::Workers,
                        },
                    });
                }
                ExecutionPlan::new(groups)
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// The ISSUE's acceptance property: compiled execution is
        /// bit-identical to the uncompiled fork-join path for random plans
        /// on tiny-vgg, across thread counts 1, 2, and 8.
        #[test]
        fn compiled_plan_is_bit_identical_across_threads(
            plan_seed in arb_plan(&zoo::tiny_vgg()),
            wseed in 0u64..1000,
            qseed in 0u64..1000,
        ) {
            let model = zoo::tiny_vgg();
            let weights = init_weights(model.graph(), wseed).unwrap();
            let input = query(model.input_shape(), qseed);
            let reference =
                execute_plan_tensors_with_threads(&model, &plan_seed, &weights, &input, 1)
                    .unwrap();
            let mut compiled = CompiledPlanExec::compile(&model, &plan_seed, &weights).unwrap();
            for threads in [1usize, 2, 8] {
                let out = {
                    let (data, shape) = compiled
                        .run_raw_with_threads(&weights, input.data(), threads)
                        .unwrap();
                    Tensor::from_vec(shape.clone(), data.to_vec()).unwrap()
                };
                assert_bits_eq(&out, &reference, "compiled vs reference");
                // The uncompiled path must itself be thread-invariant.
                let unc =
                    execute_plan_tensors_with_threads(&model, &plan_seed, &weights, &input, threads)
                        .unwrap();
                assert_bits_eq(&unc, &reference, "uncompiled thread invariance");
            }
        }
    }

    #[test]
    fn forced_four_way_height_split_matches() {
        let model = zoo::tiny_vgg();
        let weights = init_weights(model.graph(), 7).unwrap();
        let input = query(model.input_shape(), 3);
        let n = model.layers().len();
        let spatial_end = model
            .layers()
            .iter()
            .take_while(|l| l.class.supports_spatial())
            .count();
        let plan = ExecutionPlan::new(vec![
            PlannedGroup {
                start: 0,
                end: spatial_end,
                option: PartitionOption::Split {
                    dim: PartDim::Height,
                    parts: 4,
                },
                placement: Placement::Workers,
            },
            PlannedGroup {
                start: spatial_end,
                end: n,
                option: PartitionOption::Single,
                placement: Placement::Master,
            },
        ]);
        plan.validate(&model, u64::MAX).unwrap();
        let reference =
            execute_plan_tensors_with_threads(&model, &plan, &weights, &input, 1).unwrap();
        let mut compiled = CompiledPlanExec::compile(&model, &plan, &weights).unwrap();
        for threads in [1usize, 2, 8] {
            let (data, shape) = compiled
                .run_raw_with_threads(&weights, input.data(), threads)
                .unwrap();
            let out = Tensor::from_vec(shape.clone(), data.to_vec()).unwrap();
            assert_bits_eq(&out, &reference, "4-way height split");
        }
        assert!(compiled.panel_bytes() > 0);
    }

    #[test]
    fn int8_compiled_plan_is_thread_invariant_and_tracks_f32() {
        // Integer accumulation plus the deterministic wire round trip keep
        // the quantized deployment bit-identical across thread counts, and
        // within quantization error of the f32 reference.
        let model = zoo::tiny_vgg();
        let weights = init_weights(model.graph(), 7).unwrap();
        let input = query(model.input_shape(), 3);
        let n = model.layers().len();
        let spatial_end = model
            .layers()
            .iter()
            .take_while(|l| l.class.supports_spatial())
            .count();
        let plan = ExecutionPlan::new(vec![
            PlannedGroup {
                start: 0,
                end: spatial_end,
                option: PartitionOption::Split {
                    dim: PartDim::Height,
                    parts: 4,
                },
                placement: Placement::Workers,
            },
            PlannedGroup {
                start: spatial_end,
                end: n,
                option: PartitionOption::Single,
                placement: Placement::Master,
            },
        ]);
        plan.validate(&model, u64::MAX).unwrap();
        let reference =
            execute_plan_tensors_with_threads(&model, &plan, &weights, &input, 1).unwrap();
        let mut compiled =
            CompiledPlanExec::compile_with(&model, &plan, &weights, CompileOptions::int8())
                .unwrap();
        let base = {
            let (data, shape) = compiled
                .run_raw_with_threads(&weights, input.data(), 1)
                .unwrap();
            Tensor::from_vec(shape.clone(), data.to_vec()).unwrap()
        };
        for threads in [2usize, 8] {
            let (data, shape) = compiled
                .run_raw_with_threads(&weights, input.data(), threads)
                .unwrap();
            let out = Tensor::from_vec(shape.clone(), data.to_vec()).unwrap();
            assert_bits_eq(&out, &base, "int8 thread invariance");
        }
        let num: f32 = base
            .data()
            .iter()
            .zip(reference.data().iter())
            .map(|(x, y)| (x - y) * (x - y))
            .sum();
        let den: f32 = reference.data().iter().map(|y| y * y).sum();
        let rel = (num / den.max(f32::MIN_POSITIVE)).sqrt();
        assert!(rel < 0.05, "int8 plan drifted: rel l2 {rel}");
        assert_ne!(
            base.data(),
            reference.data(),
            "int8 wire round trip should perturb the payload"
        );
    }

    #[test]
    fn batched_plan_is_bit_identical_to_sequential_across_threads() {
        // The tentpole determinism property one level up from the kernels:
        // a batched pass over a multi-group plan (spatial split + single
        // tail) equals N per-query passes to the bit, for f32 and int8-wire
        // deployments, at every thread count the repo tests.
        let model = zoo::tiny_vgg();
        let weights = init_weights(model.graph(), 7).unwrap();
        let n_layers = model.layers().len();
        let spatial_end = model
            .layers()
            .iter()
            .take_while(|l| l.class.supports_spatial())
            .count();
        let plan = ExecutionPlan::new(vec![
            PlannedGroup {
                start: 0,
                end: spatial_end,
                option: PartitionOption::Split {
                    dim: PartDim::Height,
                    parts: 4,
                },
                placement: Placement::Workers,
            },
            PlannedGroup {
                start: spatial_end,
                end: n_layers,
                option: PartitionOption::Single,
                placement: Placement::Master,
            },
        ]);
        plan.validate(&model, u64::MAX).unwrap();
        let in_len = model.input_shape().len();
        for opts in [CompileOptions::default(), CompileOptions::int8()] {
            let mut compiled =
                CompiledPlanExec::compile_with(&model, &plan, &weights, opts).unwrap();
            compiled.reserve_batch(8);
            for n in [2usize, 3, 8] {
                let queries: Vec<Tensor> = (0..n)
                    .map(|i| query(model.input_shape(), 90 + i as u64))
                    .collect();
                let mut inputs = vec![0.0f32; n * in_len];
                for (q, dst) in queries.iter().zip(inputs.chunks_mut(in_len)) {
                    dst.copy_from_slice(q.data());
                }
                let seq: Vec<Vec<f32>> = queries
                    .iter()
                    .map(|q| {
                        compiled
                            .run_raw_with_threads(&weights, q.data(), 1)
                            .unwrap()
                            .0
                            .to_vec()
                    })
                    .collect();
                for threads in [1usize, 2, 8] {
                    let (got, _) = compiled
                        .run_batch_raw_with_threads(&weights, &inputs, n, threads)
                        .unwrap();
                    let out_len = got.len() / n;
                    for (i, want) in seq.iter().enumerate() {
                        for (j, (x, y)) in want
                            .iter()
                            .zip(got[i * out_len..(i + 1) * out_len].iter())
                            .enumerate()
                        {
                            assert_eq!(
                                x.to_bits(),
                                y.to_bits(),
                                "n={n} threads={threads} item={i} element {j}: {x} vs {y}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn batch_one_delegates_to_per_query_storage() {
        // The batch-1 fast path: a single-item batch must run byte-for-byte
        // the pre-batching code path — same output storage, no widened
        // buffers touched.
        let model = zoo::tiny_vgg();
        let weights = init_weights(model.graph(), 5).unwrap();
        let plan = ExecutionPlan::single_function(&model);
        let mut compiled = CompiledPlanExec::compile(&model, &plan, &weights).unwrap();
        let a = query(model.input_shape(), 1);
        let ptr_seq = compiled
            .run_raw_with_threads(&weights, a.data(), 1)
            .unwrap()
            .0
            .as_ptr();
        let ptr_batch1 = compiled
            .run_batch_raw_with_threads(&weights, a.data(), 1, 1)
            .unwrap()
            .0
            .as_ptr();
        assert_eq!(ptr_seq, ptr_batch1, "batch-1 writes the per-query buffer");
        for g in &compiled.groups {
            assert!(
                g.batch_out.is_empty(),
                "batch-1 must not touch widened join buffers"
            );
        }
    }

    #[test]
    fn recurrent_and_branching_models_fail_to_compile() {
        for model in [zoo::tiny_resnet(), zoo::tiny_inception()] {
            let weights = init_weights(model.graph(), 1).unwrap();
            let plan = ExecutionPlan::single_function(&model);
            assert!(
                CompiledPlanExec::compile(&model, &plan, &weights).is_err(),
                "{} must fall back to the uncompiled path",
                model.name()
            );
        }
    }

    #[test]
    fn warm_queries_share_output_storage() {
        let model = zoo::tiny_vgg();
        let weights = init_weights(model.graph(), 5).unwrap();
        let plan = ExecutionPlan::single_function(&model);
        let mut compiled = CompiledPlanExec::compile(&model, &plan, &weights).unwrap();
        let a = query(model.input_shape(), 1);
        let b = query(model.input_shape(), 2);
        let ptr_a = compiled
            .run_raw_with_threads(&weights, a.data(), 1)
            .unwrap()
            .0
            .as_ptr();
        let ptr_b = compiled
            .run_raw_with_threads(&weights, b.data(), 1)
            .unwrap()
            .0
            .as_ptr();
        assert_eq!(ptr_a, ptr_b);
    }
}
