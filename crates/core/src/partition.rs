//! Partition geometry: how a layer group is split into independent pieces.
//!
//! Implements the tensor-dependency analysis of paper §III-C / Fig 2:
//!
//! - **Spatial** partitions slice the output height (or width) of a group of
//!   convolution-like layers; each piece needs a halo of input rows given by
//!   the group's composed receptive field, which also quantifies the
//!   redundant computation grouping introduces.
//! - **Channel** partitions split a filter bank (single conv head) or weight
//!   matrix (dense layer) so each worker holds a weight subset but needs the
//!   whole input; channel-local layers (pools, global pooling) chain through.
//! - **Single** keeps the group whole (the only option for LSTM layers).

use serde::{Deserialize, Serialize};

use gillis_faas::compute::EffClass;
use gillis_model::{LinearModel, MergedLayer};
use gillis_perf::flops_by_class;

use crate::error::CoreError;
use crate::Result;

/// The dimension a group is split along.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PartDim {
    /// Output height.
    Height,
    /// Output width.
    Width,
    /// Output channels (or dense output units).
    Channel,
}

/// How a layer group is parallelized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PartitionOption {
    /// The whole group runs as one partition (in the master or one worker).
    Single,
    /// The group output is split into `parts` pieces along `dim`.
    Split {
        /// Split dimension.
        dim: PartDim,
        /// Number of partitions (>= 2).
        parts: usize,
    },
}

impl PartitionOption {
    /// Number of partitions this option produces.
    pub fn parts(&self) -> usize {
        match self {
            PartitionOption::Single => 1,
            PartitionOption::Split { parts, .. } => *parts,
        }
    }
}

impl std::fmt::Display for PartitionOption {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PartitionOption::Single => write!(f, "single"),
            PartitionOption::Split { dim, parts } => {
                let d = match dim {
                    PartDim::Height => "H",
                    PartDim::Width => "W",
                    PartDim::Channel => "C",
                };
                write!(f, "{d}x{parts}")
            }
        }
    }
}

/// The work and data footprint of one partition of a group.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartitionWork {
    /// FLOPs by profiling class (halo redundancy included for spatial
    /// partitions).
    pub flops: Vec<(EffClass, u64)>,
    /// Weight bytes this partition's function must hold.
    pub weight_bytes: u64,
    /// Bytes the master ships to this partition (its input slice).
    pub input_bytes: u64,
    /// Bytes this partition returns (its output slice).
    pub output_bytes: u64,
}

impl PartitionWork {
    /// Total FLOPs across classes.
    pub fn total_flops(&self) -> u64 {
        self.flops.iter().map(|(_, f)| f).sum()
    }

    /// Memory footprint of running this partition in a function: weights
    /// plus input and output activations.
    pub fn mem_bytes(&self) -> u64 {
        self.weight_bytes + self.input_bytes + self.output_bytes
    }
}

/// Full analysis of a (group, option) pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupAnalysis {
    /// The analyzed option.
    pub option: PartitionOption,
    /// One entry per partition.
    pub partitions: Vec<PartitionWork>,
}

impl GroupAnalysis {
    /// Largest per-partition memory footprint.
    pub fn max_partition_mem(&self) -> u64 {
        self.partitions
            .iter()
            .map(PartitionWork::mem_bytes)
            .max()
            .unwrap_or(0)
    }

    /// Total FLOPs across partitions (>= the unpartitioned group FLOPs for
    /// spatial splits — the difference is halo redundancy, §III-C).
    pub fn total_flops(&self) -> u64 {
        self.partitions.iter().map(PartitionWork::total_flops).sum()
    }
}

/// Per-layer FLOPs-by-class tables for a whole model, computed once and
/// shared across every group analysis.
///
/// `flops_by_class` walks a merged layer's constituent graph nodes, which is
/// far too slow to repeat for every `(group, option)` pair the planner
/// visits — the DP alone analyzes `O(n²)` groups with ~a dozen options each.
/// Build this table once per model (or let
/// [`EvalCache`](crate::cache::EvalCache) do it) and analyze groups through
/// [`analyze_group_with`].
#[derive(Debug, Clone, PartialEq)]
pub struct ModelFlops {
    per_layer: Vec<Vec<(EffClass, u64)>>,
}

impl ModelFlops {
    /// Computes the per-layer tables for `model`.
    pub fn new(model: &LinearModel) -> Self {
        ModelFlops {
            per_layer: model
                .layers()
                .iter()
                .map(|l| flops_by_class(model, l))
                .collect(),
        }
    }

    /// The tables of layers `start..end`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds for the model this table was
    /// built from.
    pub fn layers(&self, start: usize, end: usize) -> &[Vec<(EffClass, u64)>] {
        &self.per_layer[start..end]
    }

    /// Number of layers covered.
    pub fn len(&self) -> usize {
        self.per_layer.len()
    }

    /// Whether the model had no layers.
    pub fn is_empty(&self) -> bool {
        self.per_layer.is_empty()
    }
}

/// Splits `total` into `parts` balanced contiguous ranges.
pub fn balanced_ranges(total: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    assert!(parts > 0, "parts must be positive");
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let end = total * (p + 1) / parts;
        out.push(start..end);
        start = end;
    }
    out
}

/// Whether all layers in the group can be group-parallelized spatially.
fn group_is_spatial(layers: &[MergedLayer]) -> bool {
    layers.iter().all(|l| l.class.supports_spatial())
}

/// Whether the group can be channel-partitioned: either every layer is
/// channel-local (slice input channels through), or the head splits its
/// weights and the remaining layers are channel-local.
fn group_channel_mode(layers: &[MergedLayer]) -> Option<ChannelMode> {
    if layers.iter().all(|l| l.class.channel_local()) {
        return Some(ChannelMode::AllLocal);
    }
    let (head, rest) = layers.split_first()?;
    if head.class.channel_splittable() && rest.iter().all(|l| l.class.channel_local()) {
        return Some(ChannelMode::SplitHead);
    }
    None
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ChannelMode {
    /// Head layer's weights are split; full input shipped to every worker.
    SplitHead,
    /// Every layer passes channels through; input channels are sliced.
    AllLocal,
}

/// Enumerates the feasible partitioning options of the group
/// `model.layers()[start..end]`, given the parallelism degrees to consider.
///
/// Returns an empty vector for structurally invalid groups (e.g. a dense
/// layer grouped with convolutions — Fig 6's `L3` barrier). Singleton groups
/// always admit at least [`PartitionOption::Single`].
pub fn group_options(
    model: &LinearModel,
    start: usize,
    end: usize,
    degrees: &[usize],
) -> Vec<PartitionOption> {
    let layers = &model.layers()[start..end];
    if layers.is_empty() {
        return Vec::new();
    }
    // Any group can at least run whole (sequentially, in one function);
    // split options additionally require joint parallelizability.
    let mut options = vec![PartitionOption::Single];
    let spatial = group_is_spatial(layers);
    let channel = group_channel_mode(layers);

    if spatial {
        let out = &layers[layers.len() - 1].out_shape;
        for (dim, extent) in [
            (PartDim::Height, out.dims()[1]),
            (PartDim::Width, out.dims()[2]),
        ] {
            for &parts in degrees {
                if parts >= 2 && extent >= parts {
                    options.push(PartitionOption::Split { dim, parts });
                }
            }
        }
    }
    if channel.is_some() {
        let out = &layers[layers.len() - 1].out_shape;
        let extent = out.dims()[0];
        for &parts in degrees {
            if parts >= 2 && extent >= parts {
                options.push(PartitionOption::Split {
                    dim: PartDim::Channel,
                    parts,
                });
            }
        }
    }
    options
}

/// Analyzes one (group, option) pair: per-partition FLOPs (with halo
/// redundancy), weight bytes, and transfer sizes.
///
/// # Errors
///
/// Returns [`CoreError::InvalidArgument`] if the option is not applicable to
/// the group (use [`group_options`] to enumerate valid options).
pub fn analyze_group(
    model: &LinearModel,
    start: usize,
    end: usize,
    option: PartitionOption,
) -> Result<GroupAnalysis> {
    let layers = model
        .layers()
        .get(start..end)
        .ok_or_else(|| CoreError::InvalidArgument(format!("group {start}..{end} out of range")))?;
    let tables: Vec<Vec<(EffClass, u64)>> =
        layers.iter().map(|l| flops_by_class(model, l)).collect();
    analyze_group_inner(layers, &tables, start, end, option)
}

/// [`analyze_group`] against a precomputed [`ModelFlops`] table, skipping the
/// per-layer graph walks. Results are identical to `analyze_group`.
///
/// # Errors
///
/// Returns [`CoreError::InvalidArgument`] if the option is not applicable to
/// the group.
pub fn analyze_group_with(
    model: &LinearModel,
    flops: &ModelFlops,
    start: usize,
    end: usize,
    option: PartitionOption,
) -> Result<GroupAnalysis> {
    let layers = model
        .layers()
        .get(start..end)
        .ok_or_else(|| CoreError::InvalidArgument(format!("group {start}..{end} out of range")))?;
    analyze_group_inner(layers, flops.layers(start, end), start, end, option)
}

fn analyze_group_inner(
    layers: &[MergedLayer],
    per_layer_flops: &[Vec<(EffClass, u64)>],
    start: usize,
    end: usize,
    option: PartitionOption,
) -> Result<GroupAnalysis> {
    if layers.is_empty() {
        return Err(CoreError::InvalidArgument("empty group".into()));
    }
    let partitions = match option {
        PartitionOption::Single => vec![whole_group_work(layers, per_layer_flops)],
        PartitionOption::Split { dim, parts } => {
            if parts < 2 {
                return Err(CoreError::InvalidArgument(
                    "split needs at least two parts".into(),
                ));
            }
            match dim {
                PartDim::Height | PartDim::Width => {
                    if !group_is_spatial(layers) {
                        return Err(CoreError::InvalidArgument(format!(
                            "group {start}..{end} is not spatially partitionable"
                        )));
                    }
                    spatial_partition_work(layers, per_layer_flops, dim, parts)?
                }
                PartDim::Channel => {
                    let mode = group_channel_mode(layers).ok_or_else(|| {
                        CoreError::InvalidArgument(format!(
                            "group {start}..{end} is not channel-partitionable"
                        ))
                    })?;
                    channel_partition_work(layers, per_layer_flops, parts, mode)?
                }
            }
        }
    };
    Ok(GroupAnalysis { option, partitions })
}

/// The whole group as a single partition.
fn whole_group_work(
    layers: &[MergedLayer],
    per_layer_flops: &[Vec<(EffClass, u64)>],
) -> PartitionWork {
    let mut flops: Vec<(EffClass, u64)> = Vec::new();
    for table in per_layer_flops {
        for &(class, f) in table {
            merge_flops(&mut flops, class, f);
        }
    }
    PartitionWork {
        flops,
        weight_bytes: layers.iter().map(|l| l.weight_bytes).sum(),
        input_bytes: layers[0].in_bytes(),
        output_bytes: layers[layers.len() - 1].out_bytes(),
    }
}

fn merge_flops(acc: &mut Vec<(EffClass, u64)>, class: EffClass, f: u64) {
    if f == 0 {
        return;
    }
    match acc.iter_mut().find(|(c, _)| *c == class) {
        Some((_, total)) => *total += f,
        None => acc.push((class, f)),
    }
}

/// Spatial split: walk output ranges backward through the group's receptive
/// fields, accumulating per-layer fractional FLOPs (halo redundancy falls
/// out naturally) and the input slice each partition needs.
fn spatial_partition_work(
    layers: &[MergedLayer],
    per_layer_flops: &[Vec<(EffClass, u64)>],
    dim: PartDim,
    parts: usize,
) -> Result<Vec<PartitionWork>> {
    let dim_idx = match dim {
        PartDim::Height => 1,
        PartDim::Width => 2,
        PartDim::Channel => unreachable!("channel handled separately"),
    };
    let last = &layers[layers.len() - 1];
    let out_extent = last.out_shape.dims()[dim_idx];
    let group_weights: u64 = layers.iter().map(|l| l.weight_bytes).sum();

    let mut out = Vec::with_capacity(parts);
    for range in balanced_ranges(out_extent, parts) {
        let out_len = range.len();
        let mut flops: Vec<(EffClass, u64)> = Vec::new();
        // Current range, in the *output* coordinates of the layer being
        // visited (walking backward).
        let mut cur = range.clone();
        for (li, layer) in layers.iter().enumerate().rev() {
            let extent = layer.out_shape.dims()[dim_idx];
            let frac = cur.len() as f64 / extent as f64;
            for &(class, f) in &per_layer_flops[li] {
                merge_flops(&mut flops, class, (f as f64 * frac).round() as u64);
            }
            let rf = layer.class.receptive_field().ok_or_else(|| {
                CoreError::InvalidArgument("non-spatial layer in spatial group".into())
            })?;
            let in_extent = layer.in_shape.dims()[dim_idx];
            let (in_range, _, _) = rf.input_rows(cur.clone(), in_extent);
            cur = in_range;
        }
        // `cur` is now the required slice of the group input.
        let in_shape = layers[0].in_shape.dims();
        let other_in: usize = in_shape
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != dim_idx)
            .map(|(_, &d)| d)
            .product();
        let out_shape = last.out_shape.dims();
        let other_out: usize = out_shape
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != dim_idx)
            .map(|(_, &d)| d)
            .product();
        out.push(PartitionWork {
            flops,
            // Spatial partitions replicate the full group weights.
            weight_bytes: group_weights,
            input_bytes: 4 * (cur.len() * other_in) as u64,
            output_bytes: 4 * (out_len * other_out) as u64,
        });
    }
    Ok(out)
}

/// Channel split: the head's weights are divided across partitions (or, for
/// all-local groups, the input channels are sliced); downstream layers scale
/// proportionally.
fn channel_partition_work(
    layers: &[MergedLayer],
    per_layer_flops: &[Vec<(EffClass, u64)>],
    parts: usize,
    mode: ChannelMode,
) -> Result<Vec<PartitionWork>> {
    let last = &layers[layers.len() - 1];
    let out_extent = last.out_shape.dims()[0];
    let in_bytes_full = layers[0].in_bytes();
    let out_bytes_full = last.out_bytes();

    let mut out = Vec::with_capacity(parts);
    for range in balanced_ranges(out_extent, parts) {
        let frac = range.len() as f64 / out_extent as f64;
        let mut flops: Vec<(EffClass, u64)> = Vec::new();
        let mut weight_bytes = 0u64;
        for (li, layer) in layers.iter().enumerate() {
            for &(class, f) in &per_layer_flops[li] {
                merge_flops(&mut flops, class, (f as f64 * frac).round() as u64);
            }
            weight_bytes += (layer.weight_bytes as f64 * frac).round() as u64;
        }
        let input_bytes = match mode {
            // Weight-split heads consume the entire input (Fig 2b).
            ChannelMode::SplitHead => in_bytes_full,
            ChannelMode::AllLocal => (in_bytes_full as f64 * frac).round() as u64,
        };
        out.push(PartitionWork {
            flops,
            weight_bytes,
            input_bytes,
            output_bytes: (out_bytes_full as f64 * frac).round() as u64,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gillis_model::zoo;

    #[test]
    fn balanced_ranges_cover_exactly() {
        for (total, parts) in [(10usize, 3usize), (16, 4), (7, 7), (5, 2), (100, 16)] {
            let ranges = balanced_ranges(total, parts);
            assert_eq!(ranges.len(), parts);
            assert_eq!(ranges[0].start, 0);
            assert_eq!(ranges[parts - 1].end, total);
            for w in ranges.windows(2) {
                assert_eq!(w[0].end, w[1].start);
            }
            let sizes: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
            let min = sizes.iter().min().unwrap();
            let max = sizes.iter().max().unwrap();
            assert!(max - min <= 1, "unbalanced: {sizes:?}");
        }
    }

    #[test]
    fn vgg_first_conv_group_options() {
        let vgg = zoo::vgg11();
        let degrees = [2, 4, 8, 16];
        // First merged layer: conv1 (+relu) — spatial + channel splittable.
        let opts = group_options(&vgg, 0, 1, &degrees);
        assert!(opts.contains(&PartitionOption::Single));
        assert!(opts.contains(&PartitionOption::Split {
            dim: PartDim::Height,
            parts: 16
        }));
        assert!(opts.contains(&PartitionOption::Split {
            dim: PartDim::Channel,
            parts: 4
        }));
    }

    #[test]
    fn dense_barrier_blocks_grouping() {
        let vgg = zoo::vgg11();
        let n = vgg.layers().len();
        // A group spanning the last spatial layer and the first dense layer
        // cannot be *split* (Fig 6's L3) — it may only run whole.
        let opts = group_options(&vgg, n - 4, n - 2, &[2, 4]);
        assert_eq!(opts, vec![PartitionOption::Single], "got {opts:?}");
        // The dense layer alone supports Single and Channel.
        let opts = group_options(&vgg, n - 3, n - 2, &[2, 4]);
        assert!(opts.contains(&PartitionOption::Single));
        assert!(opts.contains(&PartitionOption::Split {
            dim: PartDim::Channel,
            parts: 4
        }));
    }

    #[test]
    fn recurrent_layers_admit_only_single() {
        let rnn = zoo::rnn(4);
        let opts = group_options(&rnn, 0, 2, &[2, 4, 8]);
        assert_eq!(opts, vec![PartitionOption::Single]);
    }

    #[test]
    fn spatial_split_adds_halo_redundancy() {
        // Two *stacked* 3x3 convolutions (VGG-16 conv1+conv2): the second
        // conv's halo forces partitions to recompute rows of the first.
        let vgg = zoo::vgg16();
        let single = analyze_group(&vgg, 0, 2, PartitionOption::Single).unwrap();
        let split = analyze_group(
            &vgg,
            0,
            2,
            PartitionOption::Split {
                dim: PartDim::Height,
                parts: 4,
            },
        )
        .unwrap();
        assert_eq!(split.partitions.len(), 4);
        // Redundant halo work makes the split total exceed the single total.
        assert!(split.total_flops() > single.total_flops());
        // ...but not by much for a 2-layer group.
        assert!((split.total_flops() as f64) < single.total_flops() as f64 * 1.1);
        // Every partition replicates the full group weights.
        for p in &split.partitions {
            assert_eq!(p.weight_bytes, single.partitions[0].weight_bytes);
        }
        // Interior partitions ship more input (halos) than out_len/total of
        // the input.
        let total_in: u64 = split.partitions.iter().map(|p| p.input_bytes).sum();
        assert!(total_in > single.partitions[0].input_bytes);
    }

    #[test]
    fn channel_split_divides_weights_not_input() {
        let vgg = zoo::vgg11();
        let single = analyze_group(&vgg, 0, 1, PartitionOption::Single).unwrap();
        let split = analyze_group(
            &vgg,
            0,
            1,
            PartitionOption::Split {
                dim: PartDim::Channel,
                parts: 4,
            },
        )
        .unwrap();
        let w_total: u64 = split.partitions.iter().map(|p| p.weight_bytes).sum();
        let w_single = single.partitions[0].weight_bytes;
        assert!((w_total as i64 - w_single as i64).unsigned_abs() <= 8);
        for p in &split.partitions {
            // Full input to each worker.
            assert_eq!(p.input_bytes, single.partitions[0].input_bytes);
            assert!(p.weight_bytes < w_single);
        }
        // No redundant compute for channel splits.
        let f_split = split.total_flops();
        let f_single = single.total_flops();
        assert!((f_split as f64 - f_single as f64).abs() / (f_single as f64) < 0.01);
    }

    #[test]
    fn dense_channel_split_shares_output_units() {
        let vgg = zoo::vgg11();
        let n = vgg.layers().len();
        let dense_idx = n - 3; // fc6
        let split = analyze_group(
            &vgg,
            dense_idx,
            dense_idx + 1,
            PartitionOption::Split {
                dim: PartDim::Channel,
                parts: 8,
            },
        )
        .unwrap();
        assert_eq!(split.partitions.len(), 8);
        let single =
            analyze_group(&vgg, dense_idx, dense_idx + 1, PartitionOption::Single).unwrap();
        // fc6 is 4096 units: each of 8 partitions holds 1/8 of ~411 MB.
        let w = split.partitions[0].weight_bytes;
        assert!((w as f64 - single.partitions[0].weight_bytes as f64 / 8.0).abs() < 1e5);
    }

    #[test]
    fn residual_stage_group_is_spatial_only() {
        let resnet = zoo::resnet34();
        // Layers 2..5: residual blocks (merged). Multi-conv blocks are not
        // channel-splittable.
        let opts = group_options(&resnet, 2, 5, &[2, 4]);
        assert!(opts.iter().all(|o| !matches!(
            o,
            PartitionOption::Split {
                dim: PartDim::Channel,
                ..
            }
        )));
        assert!(opts.len() > 1, "expected spatial options, got {opts:?}");
    }

    #[test]
    fn mobilenet_separable_chains_are_channel_partitionable() {
        // [pointwise conv, depthwise conv] groups: the pointwise head splits
        // its filter bank, the depthwise layer chains channel-locally — a
        // channel-partitionable multi-layer group the paper's models lack.
        let model = zoo::mobilenet();
        let pw_idx = model
            .layers()
            .iter()
            .position(|l| l.name.ends_with("_pw"))
            .expect("pointwise layer");
        // The next layer is the following block's depthwise conv.
        assert!(model.layers()[pw_idx + 1].name.ends_with("_dw"));
        let opts = group_options(&model, pw_idx, pw_idx + 2, &[2, 4]);
        assert!(
            opts.contains(&PartitionOption::Split {
                dim: PartDim::Channel,
                parts: 4
            }),
            "got {opts:?}"
        );
        // Channel split divides the weights of BOTH layers and ships the
        // full group input to every worker.
        let split = analyze_group(
            &model,
            pw_idx,
            pw_idx + 2,
            PartitionOption::Split {
                dim: PartDim::Channel,
                parts: 4,
            },
        )
        .unwrap();
        let single = analyze_group(&model, pw_idx, pw_idx + 2, PartitionOption::Single).unwrap();
        let w_total: u64 = split.partitions.iter().map(|p| p.weight_bytes).sum();
        assert!(w_total.abs_diff(single.partitions[0].weight_bytes) <= 8);
        for p in &split.partitions {
            assert_eq!(p.input_bytes, single.partitions[0].input_bytes);
        }
    }

    #[test]
    fn analyze_rejects_invalid_combinations() {
        let rnn = zoo::rnn(2);
        assert!(analyze_group(
            &rnn,
            0,
            1,
            PartitionOption::Split {
                dim: PartDim::Height,
                parts: 2
            }
        )
        .is_err());
        let vgg = zoo::vgg11();
        assert!(analyze_group(&vgg, 0, 0, PartitionOption::Single).is_err());
        assert!(analyze_group(
            &vgg,
            0,
            1,
            PartitionOption::Split {
                dim: PartDim::Height,
                parts: 1
            }
        )
        .is_err());
    }

    #[test]
    fn hoisted_flops_table_matches_direct_analysis() {
        for model in [zoo::vgg11(), zoo::resnet34(), zoo::mobilenet(), zoo::rnn(3)] {
            let flops = ModelFlops::new(&model);
            assert_eq!(flops.len(), model.layers().len());
            let n = model.layers().len();
            for start in 0..n {
                for end in start + 1..=(start + 3).min(n) {
                    for option in group_options(&model, start, end, &[2, 4, 8]) {
                        let direct = analyze_group(&model, start, end, option).unwrap();
                        let hoisted =
                            analyze_group_with(&model, &flops, start, end, option).unwrap();
                        assert_eq!(direct, hoisted, "{} {start}..{end} {option}", model.name());
                    }
                }
            }
        }
    }

    #[test]
    fn option_display() {
        assert_eq!(PartitionOption::Single.to_string(), "single");
        assert_eq!(
            PartitionOption::Split {
                dim: PartDim::Height,
                parts: 8
            }
            .to_string(),
            "Hx8"
        );
        assert_eq!(
            PartitionOption::Split {
                dim: PartDim::Channel,
                parts: 4
            }
            .to_string(),
            "Cx4"
        );
    }
}
