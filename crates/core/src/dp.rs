//! Latency-optimal partitioning by dynamic programming (paper §IV-B).
//!
//! The recursion is the paper's `L(i, j, m)` specialized to prefixes:
//! `L(j, m)` is the optimal latency of serving merged layers `0..j` with
//! master memory budget `m`; the last group `i..j` is parallelized with the
//! best option Algorithm 1 finds, either worker-only (consuming no master
//! budget) or with master participation (consuming the master partition's
//! weight bytes from the budget).
//!
//! The master budget is discretized on a configurable grid (the paper leaves
//! this implementation detail open); optimality holds up to one grid step of
//! memory-allocation granularity.

use std::sync::Arc;

use gillis_model::LinearModel;
use gillis_perf::PerfModel;

use crate::cache::EvalCache;
use crate::error::CoreError;
use crate::partition::{
    analyze_group_with, group_options, GroupAnalysis, ModelFlops, PartitionOption,
};
use crate::plan::{ExecutionPlan, Placement, PlannedGroup};
use crate::predict::predict_group;
use crate::Result;

/// What a plan search optimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlanObjective {
    /// Minimize single-query end-to-end latency: the sum of group latencies
    /// (the paper's objective).
    #[default]
    Latency,
    /// Minimize the pipeline bottleneck — the maximum *stage time* (inbound
    /// activation hand-off plus group latency) over the plan's groups,
    /// FuncPipe's non-uniform stage balancing. Steady-state pipeline
    /// throughput is `1000 / bottleneck_ms`, so this mode maximizes it;
    /// ties break toward the smaller pipeline-fill latency (the sum of
    /// stage times).
    PipelineBottleneck,
}

/// Configuration of the latency-optimal partitioner.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionerConfig {
    /// Parallelism degrees to consider for split options.
    pub degrees: Vec<usize>,
    /// Master-memory discretization step in bytes.
    pub mem_grid_bytes: u64,
    /// Per-function memory budget; `None` uses the platform's model budget
    /// (the paper's `M`).
    pub budget_bytes: Option<u64>,
    /// Optional cap on group length (layers per group), to bound search.
    /// `Some(1)` disables grouping entirely — the layer-wise ablation.
    pub max_group_len: Option<usize>,
    /// Whether the master may compute partitions (§III-B). Disabling this
    /// forces worker-only placements — the master-participation ablation.
    pub allow_master_participation: bool,
    /// What the search minimizes: single-query latency (default) or the
    /// pipeline-stage bottleneck.
    pub objective: PlanObjective,
}

impl Default for PartitionerConfig {
    fn default() -> Self {
        PartitionerConfig {
            degrees: vec![2, 3, 4, 6, 8, 12, 16],
            mem_grid_bytes: 16 * 1024 * 1024,
            budget_bytes: None,
            max_group_len: None,
            allow_master_participation: true,
            objective: PlanObjective::default(),
        }
    }
}

/// The latency-optimal dynamic-programming partitioner.
#[derive(Debug, Clone, Default)]
pub struct DpPartitioner {
    config: PartitionerConfig,
    /// Shared memoization layer for group analyses and Algorithm 1 results.
    cache: Option<Arc<EvalCache>>,
    /// Thread-count override for per-group option evaluation; `None` follows
    /// `GILLIS_THREADS` / the machine parallelism.
    eval_threads: Option<usize>,
}

/// Result of Algorithm 1 for one (group, budget-threshold) pair: the best
/// evaluated latency with the option and placement achieving it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupEval {
    /// Predicted end-to-end latency of the group under this choice.
    pub latency_ms: f64,
    /// The winning parallelization option.
    pub option: PartitionOption,
    /// Where the partitions run.
    pub placement: Placement,
    /// Grid steps of master budget this choice consumes.
    pub budget_steps: usize,
}

/// Per-option outcome of Algorithm 1's inner evaluation: `None` when some
/// partition exceeds the per-function budget, otherwise the worker-only
/// evaluation plus (when master participation is allowed) the
/// master-participating one.
type OptionOutcome = Option<(GroupEval, Option<GroupEval>)>;

impl DpPartitioner {
    /// Creates a partitioner with the given configuration.
    pub fn new(config: PartitionerConfig) -> Self {
        DpPartitioner {
            config,
            cache: None,
            eval_threads: None,
        }
    }

    /// Attaches a shared [`EvalCache`]: group analyses and Algorithm 1
    /// results are looked up before computing and stored after, so repeated
    /// `partition` calls (and other planners sharing the cache) skip
    /// re-evaluating identical cells. Plans are identical with or without a
    /// cache.
    #[must_use]
    pub fn with_cache(mut self, cache: Arc<EvalCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Overrides the number of threads used to evaluate a group's option set
    /// (default: `GILLIS_THREADS` or the machine parallelism). Results are
    /// bit-identical for any thread count; this exists for tests and for
    /// callers embedding the partitioner in an already-parallel context.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.eval_threads = Some(threads.max(1));
        self
    }

    /// Overrides the planning objective (see [`PlanObjective`]).
    #[must_use]
    pub fn with_objective(mut self, objective: PlanObjective) -> Self {
        self.config.objective = objective;
        self
    }

    /// Fingerprint of the configuration knobs that shape Algorithm 1's
    /// per-cell result (the memory grid changes `budget_steps`, the degree
    /// set and master flag change the candidate space, and the objective
    /// changes what a cell's `latency_ms` *means*: group latency under
    /// [`PlanObjective::Latency`], stage time — hand-off included — under
    /// [`PlanObjective::PipelineBottleneck`]). Omitting the objective here
    /// would let one mode serve poisoned cells to the other through a
    /// shared [`EvalCache`].
    fn config_tag(&self) -> Vec<u64> {
        let mut tag: Vec<u64> = self.config.degrees.iter().map(|&d| d as u64).collect();
        tag.push(u64::from(self.config.allow_master_participation));
        tag.push(self.config.mem_grid_bytes.max(1));
        tag.push(self.config.objective as u64);
        tag
    }

    /// Finds the latency-optimal plan for `model` on the platform behind
    /// `perf`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Infeasible`] when no plan fits the memory
    /// budget (a layer too large for any partitioning option), and
    /// propagates analysis errors.
    pub fn partition(&self, model: &LinearModel, perf: &PerfModel) -> Result<ExecutionPlan> {
        let n = model.layers().len();
        if n == 0 {
            return Ok(ExecutionPlan::new(Vec::new()));
        }
        let budget = self
            .config
            .budget_bytes
            .unwrap_or(perf.platform.model_memory_budget);
        let grid = self.config.mem_grid_bytes.max(1);
        let steps = (budget / grid) as usize;

        // Hoist the per-layer FLOPs tables: every group analysis below reads
        // them, and recomputing per (group, option) pair dominates the run.
        let flops = match &self.cache {
            Some(cache) => cache.flops(model),
            None => Arc::new(ModelFlops::new(model)),
        };
        let eval_key = self
            .cache
            .as_ref()
            .map(|_| EvalCache::eval_key(model, perf, &self.config_tag()));

        // candidates[i][j - i - 1]: best worker-only and master-participating
        // choices (Algorithm 1) for group i..j.
        let mut candidates: Vec<Vec<(Option<GroupEval>, Option<GroupEval>)>> = vec![Vec::new(); n];
        for (i, row) in candidates.iter_mut().enumerate() {
            let max_j = self
                .config
                .max_group_len
                .map(|l| (i + l).min(n))
                .unwrap_or(n);
            for j in i + 1..=max_j {
                row.push(self.find_opt_latency(model, perf, &flops, eval_key, i, j, budget, grid)?);
            }
        }

        // L[j][m]: best score for layers 0..j with m grid steps of master
        // budget; back[j][m] records the chosen group. A score is the
        // lexicographic pair (Σ group latency, 0) under the latency
        // objective and (max stage time, Σ stage time) under the pipeline
        // objective — the second component breaks bottleneck ties toward
        // the smaller pipeline-fill latency.
        const INF: f64 = f64::INFINITY;
        let objective = self.config.objective;
        let combine = |prev: (f64, f64), cell_ms: f64| -> (f64, f64) {
            match objective {
                PlanObjective::Latency => (prev.0 + cell_ms, 0.0),
                PlanObjective::PipelineBottleneck => (prev.0.max(cell_ms), prev.1 + cell_ms),
            }
        };
        let mut best = vec![vec![(INF, INF); steps + 1]; n + 1];
        let mut back: Vec<Vec<Option<(usize, GroupEval)>>> = vec![vec![None; steps + 1]; n + 1];
        best[0].fill((0.0, 0.0));
        for j in 1..=n {
            for m in 0..=steps {
                for i in 0..j {
                    let Some(&(worker_only, with_master)) = candidates[i].get(j - i - 1) else {
                        continue;
                    };
                    if let Some(c) = worker_only {
                        let prev = best[i][m];
                        if prev.0.is_finite() {
                            let cand = combine(prev, c.latency_ms);
                            if cand < best[j][m] {
                                best[j][m] = cand;
                                back[j][m] = Some((i, c));
                            }
                        }
                    }
                    if let Some(c) = with_master {
                        if m >= c.budget_steps {
                            let prev = best[i][m - c.budget_steps];
                            if prev.0.is_finite() {
                                let cand = combine(prev, c.latency_ms);
                                if cand < best[j][m] {
                                    best[j][m] = cand;
                                    back[j][m] = Some((i, c));
                                }
                            }
                        }
                    }
                }
            }
        }

        if !best[n][steps].0.is_finite() {
            return Err(CoreError::Infeasible(format!(
                "no partitioning of {} fits the {budget}-byte budget",
                model.name()
            )));
        }

        // Reconstruct.
        let mut groups = Vec::new();
        let (mut j, mut m) = (n, steps);
        while j > 0 {
            let (i, choice) =
                back[j][m].ok_or_else(|| CoreError::Infeasible("broken backpointer".into()))?;
            groups.push(PlannedGroup {
                start: i,
                end: j,
                option: choice.option,
                placement: choice.placement,
            });
            m -= choice.budget_steps;
            j = i;
        }
        groups.reverse();
        // Under the latency objective, adjacent master-resident groups are
        // an artifact of the recursion boundaries, not a serving decision:
        // coalesce them. Under the pipeline objective they are deliberate
        // stage boundaries (merging would grow the bottleneck), so keep
        // them.
        let plan = match objective {
            PlanObjective::Latency => ExecutionPlan::new(groups).coalesce_master_runs(),
            PlanObjective::PipelineBottleneck => ExecutionPlan::new(groups),
        };
        plan.validate(model, budget)?;
        Ok(plan)
    }

    /// Algorithm 1: search the group's parallelization options and return
    /// the best worker-only choice and the best master-participating choice
    /// (whose budget requirement is the master partition's weight bytes).
    ///
    /// Options are evaluated in parallel; the winner is reduced sequentially
    /// in option order afterwards, so the result — including first-wins
    /// tie-breaking — is bit-identical for every thread count.
    #[allow(clippy::too_many_arguments)]
    fn find_opt_latency(
        &self,
        model: &LinearModel,
        perf: &PerfModel,
        flops: &ModelFlops,
        eval_key: Option<u64>,
        i: usize,
        j: usize,
        budget: u64,
        grid: u64,
    ) -> Result<(Option<GroupEval>, Option<GroupEval>)> {
        if let (Some(cache), Some(key)) = (&self.cache, eval_key) {
            if let Some(pair) = cache.choice(key, i, j, budget) {
                return Ok(pair);
            }
        }

        let options = group_options(model, i, j, &self.config.degrees);
        let outcomes = self.evaluate_options(model, perf, flops, i, j, budget, grid, &options);

        // Sequential reduction in option order: first strictly-better latency
        // wins the worker-only slot; the master slot additionally prefers
        // fewer budget steps at equal latency.
        let mut best_worker_only: Option<GroupEval> = None;
        let mut best_with_master: Option<GroupEval> = None;
        for outcome in outcomes {
            let Some((wo, mp)) = outcome? else {
                continue;
            };
            if best_worker_only
                .map(|b| wo.latency_ms < b.latency_ms)
                .unwrap_or(true)
            {
                best_worker_only = Some(wo);
            }
            if let Some(mp) = mp {
                if best_with_master
                    .map(|b| {
                        mp.latency_ms < b.latency_ms
                            || (mp.latency_ms == b.latency_ms && mp.budget_steps < b.budget_steps)
                    })
                    .unwrap_or(true)
                {
                    best_with_master = Some(mp);
                }
            }
        }

        let pair = (best_worker_only, best_with_master);
        if let (Some(cache), Some(key)) = (&self.cache, eval_key) {
            cache.store_choice(key, i, j, budget, pair);
        }
        Ok(pair)
    }

    /// Evaluates every option of one group, returning outcomes index-aligned
    /// with `options`. Options are evaluated as independent tasks on the
    /// shared persistent pool; each slot is written by exactly one task, so
    /// the returned order (and hence the caller's reduction) is independent
    /// of the thread count.
    #[allow(clippy::too_many_arguments)]
    fn evaluate_options(
        &self,
        model: &LinearModel,
        perf: &PerfModel,
        flops: &ModelFlops,
        i: usize,
        j: usize,
        budget: u64,
        grid: u64,
        options: &[PartitionOption],
    ) -> Vec<Result<OptionOutcome>> {
        // Under the pipeline objective a cell's value is the *stage time*:
        // group latency plus the inbound activation hand-off the stage pays
        // to receive its input from the upstream stage (zero for the first
        // stage, which is fed by the client).
        let handoff_ms = match self.config.objective {
            PlanObjective::Latency => 0.0,
            PlanObjective::PipelineBottleneck if i == 0 => 0.0,
            PlanObjective::PipelineBottleneck => perf.handoff_ms(model.layers()[i].in_bytes()),
        };
        let evaluate = |option: PartitionOption| -> Result<OptionOutcome> {
            let cached;
            let owned;
            let analysis: &GroupAnalysis = match &self.cache {
                Some(cache) => {
                    cached = cache.analysis(model, i, j, option)?;
                    &cached
                }
                None => {
                    owned = analyze_group_with(model, flops, i, j, option)?;
                    &owned
                }
            };
            // Partition too large to fit into any function: skip option.
            if analysis.partitions.iter().any(|p| p.mem_bytes() > budget) {
                return Ok(None);
            }

            // Worker-only placement: every partition on a worker.
            let wo = predict_group(perf, analysis, Placement::Workers);
            let worker_only = GroupEval {
                latency_ms: handoff_ms + wo.latency_ms(),
                option,
                placement: Placement::Workers,
                budget_steps: 0,
            };

            let with_master = self.config.allow_master_participation.then(|| {
                // Master-participating placement: partition 0 in the master.
                let placement = if option.parts() == 1 {
                    Placement::Master
                } else {
                    Placement::MasterAndWorkers
                };
                let mp = predict_group(perf, analysis, placement);
                let w0 = analysis.partitions[0].weight_bytes;
                GroupEval {
                    latency_ms: handoff_ms + mp.latency_ms(),
                    option,
                    placement,
                    budget_steps: w0.div_ceil(grid) as usize,
                }
            });
            Ok(Some((worker_only, with_master)))
        };

        let threads = self
            .eval_threads
            .unwrap_or_else(gillis_pool::gillis_threads)
            .clamp(1, options.len().max(1));
        if threads <= 1 {
            return options.iter().map(|&o| evaluate(o)).collect();
        }

        // Index-ordered slots on the shared pool: slot `i` is written only by
        // task `i`, so the returned order is independent of scheduling.
        gillis_pool::Pool::global().run(options.len(), |i| evaluate(options[i]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predict::predict_plan;
    use gillis_faas::PlatformProfile;
    use gillis_model::zoo;
    use proptest::prelude::*;

    fn perf(platform: &PlatformProfile) -> PerfModel {
        PerfModel::analytic(platform)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]
        #[test]
        fn dp_plans_invariant_to_threads_and_cache(
            (model_idx, grid_shift, degree_mask) in (0usize..4, 0u32..3, 1usize..8),
        ) {
            let model = match model_idx {
                0 => zoo::tiny_vgg(),
                1 => zoo::vgg11(),
                2 => zoo::rnn(6),
                _ => zoo::mobilenet(),
            };
            let platform = PlatformProfile::aws_lambda();
            let perf = PerfModel::analytic(&platform);
            let base = [2usize, 4, 8];
            let degrees: Vec<usize> = base
                .iter()
                .enumerate()
                .filter(|(i, _)| degree_mask & (1 << i) != 0)
                .map(|(_, &d)| d)
                .collect();
            let config = PartitionerConfig {
                degrees,
                mem_grid_bytes: (16u64 * 1024 * 1024) << grid_shift,
                ..PartitionerConfig::default()
            };
            let serial = DpPartitioner::new(config.clone())
                .with_threads(1)
                .partition(&model, &perf)
                .unwrap();
            let threaded = DpPartitioner::new(config.clone())
                .with_threads(8)
                .partition(&model, &perf)
                .unwrap();
            prop_assert_eq!(&serial, &threaded);

            let cache = Arc::new(EvalCache::new());
            let cold = DpPartitioner::new(config.clone())
                .with_cache(Arc::clone(&cache))
                .partition(&model, &perf)
                .unwrap();
            prop_assert_eq!(&serial, &cold);
            // Warm cache (and a different thread count): identical plan, and
            // every DP cell answers from the cache.
            let warm = DpPartitioner::new(config)
                .with_cache(Arc::clone(&cache))
                .with_threads(8)
                .partition(&model, &perf)
                .unwrap();
            prop_assert_eq!(&serial, &warm);
            prop_assert!(cache.stats().hits > 0);
        }
    }

    #[test]
    fn dp_beats_single_function_on_vgg() {
        let platform = PlatformProfile::aws_lambda();
        let perf = perf(&platform);
        let vgg = zoo::vgg16();
        let plan = DpPartitioner::default().partition(&vgg, &perf).unwrap();
        let dp_pred = predict_plan(&vgg, &plan, &perf).unwrap();
        let single = predict_plan(&vgg, &ExecutionPlan::single_function(&vgg), &perf).unwrap();
        let speedup = single.latency_ms / dp_pred.latency_ms;
        // Paper Fig 9: 1.9x speedup for VGG-16 on Lambda.
        assert!(speedup > 1.3, "speedup only {speedup:.2}");
        assert!(speedup < 4.0, "speedup implausibly high: {speedup:.2}");
    }

    #[test]
    fn dp_handles_models_too_large_for_one_function() {
        // WRN-50-4 exceeds the 1.4 GB budget: Default OOMs, the DP must
        // still find a plan (paper Fig 11).
        let platform = PlatformProfile::aws_lambda();
        let perf = perf(&platform);
        let wrn = zoo::wrn50(4);
        assert!(wrn.weight_bytes() > platform.model_memory_budget);
        let plan = DpPartitioner::default().partition(&wrn, &perf).unwrap();
        plan.validate(&wrn, platform.model_memory_budget).unwrap();
        // Some group must be split or offloaded to workers.
        assert!(plan.groups().iter().any(|g| g.worker_count() > 0));
    }

    #[test]
    fn dp_respects_master_budget() {
        let platform = PlatformProfile::aws_lambda();
        let perf = perf(&platform);
        let wrn = zoo::wrn34(5);
        let plan = DpPartitioner::default().partition(&wrn, &perf).unwrap();
        let master = plan.master_weight_bytes(&wrn).unwrap();
        assert!(master <= platform.model_memory_budget);
    }

    #[test]
    fn rnn_plan_places_layers_without_parallelism() {
        // RNN layers cannot be parallelized (paper §V-B): the DP must
        // produce Single groups only, offloading layers to workers once the
        // master is full.
        let platform = PlatformProfile::aws_lambda();
        let perf = perf(&platform);
        let rnn = zoo::rnn(12); // too big for one function
        let plan = DpPartitioner::default().partition(&rnn, &perf).unwrap();
        assert!(plan
            .groups()
            .iter()
            .all(|g| g.option == PartitionOption::Single));
        plan.validate(&rnn, platform.model_memory_budget).unwrap();
        assert!(plan.groups().iter().any(|g| g.worker_count() > 0));
    }

    #[test]
    fn small_rnn_stays_in_master() {
        // RNN-3 fits in one function; parallelization cannot help (§V-B), so
        // the optimal plan is master-only with no communication.
        let platform = PlatformProfile::aws_lambda();
        let perf = perf(&platform);
        let rnn = zoo::rnn(3);
        let plan = DpPartitioner::default().partition(&rnn, &perf).unwrap();
        assert!(plan.groups().iter().all(|g| g.worker_count() == 0));
        let pred = predict_plan(&rnn, &plan, &perf).unwrap();
        let single = predict_plan(&rnn, &ExecutionPlan::single_function(&rnn), &perf).unwrap();
        assert!((pred.latency_ms - single.latency_ms).abs() / single.latency_ms < 0.05);
    }

    #[test]
    fn dp_matches_exhaustive_search_on_tiny_model() {
        // Brute-force all (grouping, option, placement) plans of a tiny model
        // and check the DP is no worse.
        let platform = PlatformProfile::aws_lambda();
        let perf = perf(&platform);
        let tiny = zoo::tiny_vgg();
        let config = PartitionerConfig {
            degrees: vec![2, 4],
            ..PartitionerConfig::default()
        };
        let plan = DpPartitioner::new(config.clone())
            .partition(&tiny, &perf)
            .unwrap();
        let dp_latency = predict_plan(&tiny, &plan, &perf).unwrap().latency_ms;

        let budget = platform.model_memory_budget;
        let n = tiny.layers().len();
        let mut best = f64::INFINITY;
        // Enumerate all segmentations (n is small).
        fn enumerate(
            model: &LinearModel,
            perf: &PerfModel,
            config: &PartitionerConfig,
            budget: u64,
            start: usize,
            n: usize,
            acc: &mut Vec<PlannedGroup>,
            master_used: u64,
            latency: f64,
            best: &mut f64,
        ) {
            if start == n {
                if latency < *best {
                    *best = latency;
                }
                return;
            }
            for end in start + 1..=n {
                for option in group_options(model, start, end, &config.degrees) {
                    let analysis =
                        crate::partition::analyze_group(model, start, end, option).unwrap();
                    if analysis.partitions.iter().any(|p| p.mem_bytes() > budget) {
                        continue;
                    }
                    for placement in [
                        Placement::Workers,
                        if option.parts() == 1 {
                            Placement::Master
                        } else {
                            Placement::MasterAndWorkers
                        },
                    ] {
                        let used = if placement == Placement::Workers {
                            0
                        } else {
                            analysis.partitions[0].weight_bytes
                        };
                        if master_used + used > budget {
                            continue;
                        }
                        let g = predict_group(perf, &analysis, placement);
                        acc.push(PlannedGroup {
                            start,
                            end,
                            option,
                            placement,
                        });
                        enumerate(
                            model,
                            perf,
                            config,
                            budget,
                            end,
                            n,
                            acc,
                            master_used + used,
                            latency + g.latency_ms(),
                            best,
                        );
                        acc.pop();
                    }
                }
            }
        }
        enumerate(
            &tiny,
            &perf,
            &config,
            budget,
            0,
            n,
            &mut Vec::new(),
            0,
            0.0,
            &mut best,
        );
        assert!(best.is_finite());
        assert!(
            dp_latency <= best * 1.0001,
            "dp {dp_latency} vs brute force {best}"
        );
    }

    #[test]
    fn objectives_share_a_cache_without_poisoning_each_other() {
        // Regression: the eval-cache choice key must include the planning
        // objective. Pipeline-mode cells store *stage times* (inbound
        // hand-off included), so a mode-blind key would let one objective
        // answer the other's DP cells with the wrong quantity.
        let platform = PlatformProfile::aws_lambda();
        let perf = perf(&platform);
        let vgg = zoo::vgg11();
        let latency_cfg = PartitionerConfig::default();
        let pipeline_cfg = PartitionerConfig {
            objective: PlanObjective::PipelineBottleneck,
            ..PartitionerConfig::default()
        };
        let lat_plain = DpPartitioner::new(latency_cfg.clone())
            .partition(&vgg, &perf)
            .unwrap();
        let pipe_plain = DpPartitioner::new(pipeline_cfg.clone())
            .partition(&vgg, &perf)
            .unwrap();
        assert_ne!(lat_plain, pipe_plain, "objectives must differ on VGG-11");
        // Both run orders through one shared cache must reproduce the
        // uncached plans exactly.
        for latency_first in [true, false] {
            let cache = Arc::new(EvalCache::new());
            let run = |cfg: &PartitionerConfig| {
                DpPartitioner::new(cfg.clone())
                    .with_cache(Arc::clone(&cache))
                    .partition(&vgg, &perf)
                    .unwrap()
            };
            let (lat, pipe) = if latency_first {
                let l = run(&latency_cfg);
                (l, run(&pipeline_cfg))
            } else {
                let p = run(&pipeline_cfg);
                (run(&latency_cfg), p)
            };
            assert_eq!(lat, lat_plain, "latency_first={latency_first}");
            assert_eq!(pipe, pipe_plain, "latency_first={latency_first}");
        }
    }

    #[test]
    fn pipeline_objective_cuts_the_bottleneck() {
        let platform = PlatformProfile::aws_lambda();
        let perf = perf(&platform);
        let vgg = zoo::vgg11();
        let latency_plan = DpPartitioner::default().partition(&vgg, &perf).unwrap();
        let pipe_plan = DpPartitioner::default()
            .with_objective(PlanObjective::PipelineBottleneck)
            .partition(&vgg, &perf)
            .unwrap();
        let t_lat = crate::predict::t_pipeline(&vgg, &latency_plan, &perf).unwrap();
        let t_pipe = crate::predict::t_pipeline(&vgg, &pipe_plan, &perf).unwrap();
        assert!(
            t_pipe < t_lat,
            "stage balancing should beat the latency plan: {t_pipe} vs {t_lat}"
        );
        // Balancing needs more, smaller stages than the latency plan.
        assert!(pipe_plan.groups().len() >= latency_plan.groups().len());
        pipe_plan
            .validate(&vgg, platform.model_memory_budget)
            .unwrap();
    }

    #[test]
    fn infeasible_when_budget_is_absurdly_small() {
        let platform = PlatformProfile::aws_lambda();
        let perf = perf(&platform);
        let config = PartitionerConfig {
            budget_bytes: Some(1024), // 1 KB: nothing fits
            ..PartitionerConfig::default()
        };
        let err = DpPartitioner::new(config).partition(&zoo::tiny_vgg(), &perf);
        assert!(matches!(err, Err(CoreError::Infeasible(_))));
    }

    #[test]
    fn empty_model_produces_empty_plan() {
        use gillis_model::{Graph, LayerOp};
        use gillis_tensor::Shape;
        let mut g = Graph::new();
        g.add(
            "input",
            LayerOp::Input {
                shape: Shape::new(vec![1]),
            },
            &[],
        )
        .unwrap();
        let model = gillis_model::merge::merge_graph("empty", g).unwrap();
        let platform = PlatformProfile::aws_lambda();
        let plan = DpPartitioner::default()
            .partition(&model, &perf(&platform))
            .unwrap();
        assert!(plan.groups().is_empty());
    }
}
