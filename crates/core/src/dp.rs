//! Latency-optimal partitioning by dynamic programming (paper §IV-B).
//!
//! The recursion is the paper's `L(i, j, m)` specialized to prefixes:
//! `L(j, m)` is the optimal latency of serving merged layers `0..j` with
//! master memory budget `m`; the last group `i..j` is parallelized with the
//! best option Algorithm 1 finds, either worker-only (consuming no master
//! budget) or with master participation (consuming the master partition's
//! weight bytes from the budget).
//!
//! The master budget is discretized on a configurable grid (the paper leaves
//! this implementation detail open); optimality holds up to one grid step of
//! memory-allocation granularity.

use gillis_model::LinearModel;
use gillis_perf::PerfModel;

use crate::error::CoreError;
use crate::partition::{analyze_group, group_options, PartitionOption};
use crate::plan::{ExecutionPlan, Placement, PlannedGroup};
use crate::predict::predict_group;
use crate::Result;

/// Configuration of the latency-optimal partitioner.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionerConfig {
    /// Parallelism degrees to consider for split options.
    pub degrees: Vec<usize>,
    /// Master-memory discretization step in bytes.
    pub mem_grid_bytes: u64,
    /// Per-function memory budget; `None` uses the platform's model budget
    /// (the paper's `M`).
    pub budget_bytes: Option<u64>,
    /// Optional cap on group length (layers per group), to bound search.
    /// `Some(1)` disables grouping entirely — the layer-wise ablation.
    pub max_group_len: Option<usize>,
    /// Whether the master may compute partitions (§III-B). Disabling this
    /// forces worker-only placements — the master-participation ablation.
    pub allow_master_participation: bool,
}

impl Default for PartitionerConfig {
    fn default() -> Self {
        PartitionerConfig {
            degrees: vec![2, 3, 4, 6, 8, 12, 16],
            mem_grid_bytes: 16 * 1024 * 1024,
            budget_bytes: None,
            max_group_len: None,
            allow_master_participation: true,
        }
    }
}

/// The latency-optimal dynamic-programming partitioner.
#[derive(Debug, Clone, Default)]
pub struct DpPartitioner {
    config: PartitionerConfig,
}

/// Result of Algorithm 1 for one (group, budget-threshold) pair.
#[derive(Debug, Clone, Copy)]
struct GroupChoice {
    latency_ms: f64,
    option: PartitionOption,
    placement: Placement,
    /// Grid steps of master budget this choice consumes.
    budget_steps: usize,
}

impl DpPartitioner {
    /// Creates a partitioner with the given configuration.
    pub fn new(config: PartitionerConfig) -> Self {
        DpPartitioner { config }
    }

    /// Finds the latency-optimal plan for `model` on the platform behind
    /// `perf`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Infeasible`] when no plan fits the memory
    /// budget (a layer too large for any partitioning option), and
    /// propagates analysis errors.
    pub fn partition(&self, model: &LinearModel, perf: &PerfModel) -> Result<ExecutionPlan> {
        let n = model.layers().len();
        if n == 0 {
            return Ok(ExecutionPlan::new(Vec::new()));
        }
        let budget = self
            .config
            .budget_bytes
            .unwrap_or(perf.platform.model_memory_budget);
        let grid = self.config.mem_grid_bytes.max(1);
        let steps = (budget / grid) as usize;

        // candidates[i][j - i - 1]: best worker-only and master-participating
        // choices (Algorithm 1) for group i..j.
        let mut candidates: Vec<Vec<(Option<GroupChoice>, Option<GroupChoice>)>> =
            vec![Vec::new(); n];
        for i in 0..n {
            let max_j = self
                .config
                .max_group_len
                .map(|l| (i + l).min(n))
                .unwrap_or(n);
            for j in i + 1..=max_j {
                candidates[i].push(self.find_opt_latency(model, perf, i, j, budget, grid)?);
            }
        }

        // L[j][m]: best latency for layers 0..j with m grid steps of master
        // budget; back[j][m] records the chosen group.
        const INF: f64 = f64::INFINITY;
        let mut best = vec![vec![INF; steps + 1]; n + 1];
        let mut back: Vec<Vec<Option<(usize, GroupChoice)>>> = vec![vec![None; steps + 1]; n + 1];
        for m in 0..=steps {
            best[0][m] = 0.0;
        }
        for j in 1..=n {
            for m in 0..=steps {
                for i in 0..j {
                    let Some(&(worker_only, with_master)) =
                        candidates[i].get(j - i - 1)
                    else {
                        continue;
                    };
                    if let Some(c) = worker_only {
                        let prev = best[i][m];
                        if prev + c.latency_ms < best[j][m] {
                            best[j][m] = prev + c.latency_ms;
                            back[j][m] = Some((i, c));
                        }
                    }
                    if let Some(c) = with_master {
                        if m >= c.budget_steps {
                            let prev = best[i][m - c.budget_steps];
                            if prev + c.latency_ms < best[j][m] {
                                best[j][m] = prev + c.latency_ms;
                                back[j][m] = Some((i, c));
                            }
                        }
                    }
                }
            }
        }

        if !best[n][steps].is_finite() {
            return Err(CoreError::Infeasible(format!(
                "no partitioning of {} fits the {budget}-byte budget",
                model.name()
            )));
        }

        // Reconstruct.
        let mut groups = Vec::new();
        let (mut j, mut m) = (n, steps);
        while j > 0 {
            let (i, choice) =
                back[j][m].ok_or_else(|| CoreError::Infeasible("broken backpointer".into()))?;
            groups.push(PlannedGroup {
                start: i,
                end: j,
                option: choice.option,
                placement: choice.placement,
            });
            m -= choice.budget_steps;
            j = i;
        }
        groups.reverse();
        // Adjacent master-resident groups are an artifact of the recursion
        // boundaries, not a serving decision: coalesce them.
        let plan = ExecutionPlan::new(groups).coalesce_master_runs();
        plan.validate(model, budget)?;
        Ok(plan)
    }

    /// Algorithm 1: search the group's parallelization options and return
    /// the best worker-only choice and the best master-participating choice
    /// (whose budget requirement is the master partition's weight bytes).
    fn find_opt_latency(
        &self,
        model: &LinearModel,
        perf: &PerfModel,
        i: usize,
        j: usize,
        budget: u64,
        grid: u64,
    ) -> Result<(Option<GroupChoice>, Option<GroupChoice>)> {
        let mut best_worker_only: Option<GroupChoice> = None;
        let mut best_with_master: Option<GroupChoice> = None;
        for option in group_options(model, i, j, &self.config.degrees) {
            let analysis = analyze_group(model, i, j, option)?;
            // Partition too large to fit into any function: skip option.
            if analysis
                .partitions
                .iter()
                .any(|p| p.mem_bytes() > budget)
            {
                continue;
            }

            // Worker-only placement: every partition on a worker.
            let wo = predict_group(perf, &analysis, Placement::Workers);
            let latency = wo.latency_ms();
            if best_worker_only.map(|b| latency < b.latency_ms).unwrap_or(true) {
                best_worker_only = Some(GroupChoice {
                    latency_ms: latency,
                    option,
                    placement: Placement::Workers,
                    budget_steps: 0,
                });
            }

            if !self.config.allow_master_participation {
                continue;
            }
            // Master-participating placement: partition 0 in the master.
            let placement = if option.parts() == 1 {
                Placement::Master
            } else {
                Placement::MasterAndWorkers
            };
            let mp = predict_group(perf, &analysis, placement);
            let latency = mp.latency_ms();
            let w0 = analysis.partitions[0].weight_bytes;
            let budget_steps = w0.div_ceil(grid) as usize;
            if best_with_master
                .map(|b| {
                    latency < b.latency_ms
                        || (latency == b.latency_ms && budget_steps < b.budget_steps)
                })
                .unwrap_or(true)
            {
                best_with_master = Some(GroupChoice {
                    latency_ms: latency,
                    option,
                    placement,
                    budget_steps,
                });
            }
        }
        Ok((best_worker_only, best_with_master))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predict::predict_plan;
    use gillis_faas::PlatformProfile;
    use gillis_model::zoo;

    fn perf(platform: &PlatformProfile) -> PerfModel {
        PerfModel::analytic(platform)
    }

    #[test]
    fn dp_beats_single_function_on_vgg() {
        let platform = PlatformProfile::aws_lambda();
        let perf = perf(&platform);
        let vgg = zoo::vgg16();
        let plan = DpPartitioner::default().partition(&vgg, &perf).unwrap();
        let dp_pred = predict_plan(&vgg, &plan, &perf).unwrap();
        let single = predict_plan(&vgg, &ExecutionPlan::single_function(&vgg), &perf).unwrap();
        let speedup = single.latency_ms / dp_pred.latency_ms;
        // Paper Fig 9: 1.9x speedup for VGG-16 on Lambda.
        assert!(speedup > 1.3, "speedup only {speedup:.2}");
        assert!(speedup < 4.0, "speedup implausibly high: {speedup:.2}");
    }

    #[test]
    fn dp_handles_models_too_large_for_one_function() {
        // WRN-50-4 exceeds the 1.4 GB budget: Default OOMs, the DP must
        // still find a plan (paper Fig 11).
        let platform = PlatformProfile::aws_lambda();
        let perf = perf(&platform);
        let wrn = zoo::wrn50(4);
        assert!(wrn.weight_bytes() > platform.model_memory_budget);
        let plan = DpPartitioner::default().partition(&wrn, &perf).unwrap();
        plan.validate(&wrn, platform.model_memory_budget).unwrap();
        // Some group must be split or offloaded to workers.
        assert!(plan
            .groups()
            .iter()
            .any(|g| g.worker_count() > 0));
    }

    #[test]
    fn dp_respects_master_budget() {
        let platform = PlatformProfile::aws_lambda();
        let perf = perf(&platform);
        let wrn = zoo::wrn34(5);
        let plan = DpPartitioner::default().partition(&wrn, &perf).unwrap();
        let master = plan.master_weight_bytes(&wrn).unwrap();
        assert!(master <= platform.model_memory_budget);
    }

    #[test]
    fn rnn_plan_places_layers_without_parallelism() {
        // RNN layers cannot be parallelized (paper §V-B): the DP must
        // produce Single groups only, offloading layers to workers once the
        // master is full.
        let platform = PlatformProfile::aws_lambda();
        let perf = perf(&platform);
        let rnn = zoo::rnn(12); // too big for one function
        let plan = DpPartitioner::default().partition(&rnn, &perf).unwrap();
        assert!(plan
            .groups()
            .iter()
            .all(|g| g.option == PartitionOption::Single));
        plan.validate(&rnn, platform.model_memory_budget).unwrap();
        assert!(plan.groups().iter().any(|g| g.worker_count() > 0));
    }

    #[test]
    fn small_rnn_stays_in_master() {
        // RNN-3 fits in one function; parallelization cannot help (§V-B), so
        // the optimal plan is master-only with no communication.
        let platform = PlatformProfile::aws_lambda();
        let perf = perf(&platform);
        let rnn = zoo::rnn(3);
        let plan = DpPartitioner::default().partition(&rnn, &perf).unwrap();
        assert!(plan.groups().iter().all(|g| g.worker_count() == 0));
        let pred = predict_plan(&rnn, &plan, &perf).unwrap();
        let single =
            predict_plan(&rnn, &ExecutionPlan::single_function(&rnn), &perf).unwrap();
        assert!((pred.latency_ms - single.latency_ms).abs() / single.latency_ms < 0.05);
    }

    #[test]
    fn dp_matches_exhaustive_search_on_tiny_model() {
        // Brute-force all (grouping, option, placement) plans of a tiny model
        // and check the DP is no worse.
        let platform = PlatformProfile::aws_lambda();
        let perf = perf(&platform);
        let tiny = zoo::tiny_vgg();
        let config = PartitionerConfig {
            degrees: vec![2, 4],
            ..PartitionerConfig::default()
        };
        let plan = DpPartitioner::new(config.clone()).partition(&tiny, &perf).unwrap();
        let dp_latency = predict_plan(&tiny, &plan, &perf).unwrap().latency_ms;

        let budget = platform.model_memory_budget;
        let n = tiny.layers().len();
        let mut best = f64::INFINITY;
        // Enumerate all segmentations (n is small).
        fn enumerate(
            model: &LinearModel,
            perf: &PerfModel,
            config: &PartitionerConfig,
            budget: u64,
            start: usize,
            n: usize,
            acc: &mut Vec<PlannedGroup>,
            master_used: u64,
            latency: f64,
            best: &mut f64,
        ) {
            if start == n {
                if latency < *best {
                    *best = latency;
                }
                return;
            }
            for end in start + 1..=n {
                for option in group_options(model, start, end, &config.degrees) {
                    let analysis = analyze_group(model, start, end, option).unwrap();
                    if analysis.partitions.iter().any(|p| p.mem_bytes() > budget) {
                        continue;
                    }
                    for placement in [
                        Placement::Workers,
                        if option.parts() == 1 {
                            Placement::Master
                        } else {
                            Placement::MasterAndWorkers
                        },
                    ] {
                        let used = if placement == Placement::Workers {
                            0
                        } else {
                            analysis.partitions[0].weight_bytes
                        };
                        if master_used + used > budget {
                            continue;
                        }
                        let g = predict_group(perf, &analysis, placement);
                        acc.push(PlannedGroup {
                            start,
                            end,
                            option,
                            placement,
                        });
                        enumerate(
                            model,
                            perf,
                            config,
                            budget,
                            end,
                            n,
                            acc,
                            master_used + used,
                            latency + g.latency_ms(),
                            best,
                        );
                        acc.pop();
                    }
                }
            }
        }
        enumerate(
            &tiny, &perf, &config, budget, 0, n, &mut Vec::new(), 0, 0.0, &mut best,
        );
        assert!(best.is_finite());
        assert!(
            dp_latency <= best * 1.0001,
            "dp {dp_latency} vs brute force {best}"
        );
    }

    #[test]
    fn infeasible_when_budget_is_absurdly_small() {
        let platform = PlatformProfile::aws_lambda();
        let perf = perf(&platform);
        let config = PartitionerConfig {
            budget_bytes: Some(1024), // 1 KB: nothing fits
            ..PartitionerConfig::default()
        };
        let err = DpPartitioner::new(config).partition(&zoo::tiny_vgg(), &perf);
        assert!(matches!(err, Err(CoreError::Infeasible(_))));
    }

    #[test]
    fn empty_model_produces_empty_plan() {
        use gillis_model::{Graph, LayerOp};
        use gillis_tensor::Shape;
        let mut g = Graph::new();
        g.add(
            "input",
            LayerOp::Input {
                shape: Shape::new(vec![1]),
            },
            &[],
        )
        .unwrap();
        let model = gillis_model::merge::merge_graph("empty", g).unwrap();
        let platform = PlatformProfile::aws_lambda();
        let plan = DpPartitioner::default()
            .partition(&model, &perf(&platform))
            .unwrap();
        assert!(plan.groups().is_empty());
    }
}
